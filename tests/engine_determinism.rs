//! Worker-count invariance of every campaign driver.
//!
//! The evaluation engine's contract is that the worker pool is pure
//! mechanism: every per-task RNG is derived from
//! `seed_stream(campaign_seed, task_id)` and results are delivered to the
//! sink in task order, so a report computed on one worker is bit-identical
//! to the same report computed on any number of workers. These tests pin
//! that contract across the drivers (campaign, sweep, layerwise, boundary,
//! random FI, exhaustive FI, per-layer FI) on both an MLP and a reduced
//! ResNet fixture.

use bdlfi_suite::baseline::{run_exhaustive_with, run_layer_fi, RandomFi, RandomFiConfig};
use bdlfi_suite::bayes::ChainConfig;
use bdlfi_suite::core::{
    boundary_map, run_campaign, run_layerwise, run_sweep, BoundaryConfig, CampaignConfig,
    CampaignReport, FaultyModel, KernelChoice, LayerBudget,
};
use bdlfi_suite::data::{gaussian_blobs, synth_cifar, Dataset, SynthCifarConfig};
use bdlfi_suite::faults::{BernoulliBitFlip, SiteSpec};
use bdlfi_suite::nn::{mlp, optim::Sgd, resnet18, ResNetConfig, Sequential, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Worker counts every driver must agree across: serial, two workers, and
/// whatever the host actually has.
fn worker_counts() -> Vec<usize> {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1, 2, host];
    counts.dedup();
    counts
}

fn trained_mlp() -> (Sequential, Arc<Dataset>) {
    let mut rng = StdRng::seed_from_u64(900);
    let data = gaussian_blobs(200, 3, 0.6, &mut rng);
    let (train, test) = data.split(0.7, &mut rng);
    let mut model = mlp(2, &[16, 16], 3, &mut rng);
    let mut trainer = Trainer::new(
        Sgd::new(0.1).with_momentum(0.9),
        TrainConfig {
            epochs: 12,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
    (model, Arc::new(test))
}

fn tiny_resnet() -> (Sequential, Arc<Dataset>) {
    let mut rng = StdRng::seed_from_u64(901);
    let cfg = SynthCifarConfig {
        classes: 4,
        image_size: 16,
        noise: 0.3,
        phase_jitter: 0.5,
        label_noise: 0.0,
    };
    let data = synth_cifar(48, cfg, &mut rng);
    let net = resnet18(
        ResNetConfig {
            in_channels: 3,
            base_width: 2,
            classes: 4,
        },
        &mut rng,
    );
    (net, Arc::new(data))
}

fn campaign_cfg(seed: u64, samples: usize, workers: usize) -> CampaignConfig {
    CampaignConfig {
        chains: 2,
        chain: ChainConfig {
            burn_in: 0,
            samples,
            thin: 1,
        },
        kernel: KernelChoice::Prior,
        seed,
        workers,
        ..CampaignConfig::default()
    }
}

/// Every statistic of a campaign report that the RNG touches must match
/// bit for bit; only `run_meta` (timing, worker count) may differ.
fn assert_reports_identical(a: &CampaignReport, b: &CampaignReport, what: &str) {
    assert_eq!(a.traces, b.traces, "{what}: traces differ");
    assert_eq!(
        a.acceptance_rates, b.acceptance_rates,
        "{what}: acceptance rates differ"
    );
    assert_eq!(a.mean_error, b.mean_error, "{what}: mean error differs");
    assert_eq!(a.mean_flips, b.mean_flips, "{what}: mean flips differ");
    assert_eq!(a.summary, b.summary, "{what}: summaries differ");
    assert_eq!(
        a.golden_error, b.golden_error,
        "{what}: golden error differs"
    );
}

#[test]
fn campaign_is_worker_count_invariant_on_mlp() {
    let (model, eval) = trained_mlp();
    let fm = FaultyModel::new(
        model,
        eval,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(1e-3)),
    );
    let reference = run_campaign(&fm, &campaign_cfg(31, 40, 1));
    for workers in worker_counts() {
        let report = run_campaign(&fm, &campaign_cfg(31, 40, workers));
        assert_reports_identical(&reference, &report, &format!("mlp campaign @{workers}"));
    }
}

#[test]
fn campaign_is_worker_count_invariant_on_resnet() {
    let (net, eval) = tiny_resnet();
    let fm = FaultyModel::new(
        net,
        eval,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(1e-4)),
    );
    let reference = run_campaign(&fm, &campaign_cfg(32, 6, 1));
    for workers in worker_counts() {
        let report = run_campaign(&fm, &campaign_cfg(32, 6, workers));
        assert_reports_identical(&reference, &report, &format!("resnet campaign @{workers}"));
    }
}

#[test]
fn sweep_is_worker_count_invariant() {
    let (model, eval) = trained_mlp();
    let ps = [1e-4, 1e-3, 1e-2];
    let reference = run_sweep(
        &model,
        &eval,
        &SiteSpec::AllParams,
        &ps,
        &campaign_cfg(33, 25, 1),
    );
    for workers in worker_counts() {
        let sweep = run_sweep(
            &model,
            &eval,
            &SiteSpec::AllParams,
            &ps,
            &campaign_cfg(33, 25, workers),
        );
        assert_eq!(sweep.golden_error, reference.golden_error);
        assert_eq!(sweep.points.len(), reference.points.len());
        for (a, b) in reference.points.iter().zip(&sweep.points) {
            assert_eq!(a.p, b.p);
            assert_reports_identical(&a.report, &b.report, &format!("sweep p={} @{workers}", a.p));
        }
    }
}

#[test]
fn layerwise_is_worker_count_invariant() {
    let (model, eval) = trained_mlp();
    let layers = ["fc1", "fc2", "fc3"];
    let reference = run_layerwise(
        &model,
        &eval,
        &layers,
        LayerBudget::ExpectedFlips(2.0),
        &campaign_cfg(34, 20, 1),
    );
    for workers in worker_counts() {
        let res = run_layerwise(
            &model,
            &eval,
            &layers,
            LayerBudget::ExpectedFlips(2.0),
            &campaign_cfg(34, 20, workers),
        );
        // Bit equality: a correlation of NaN (degenerate ranks) must still
        // reproduce exactly.
        assert_eq!(
            res.depth_correlation.to_bits(),
            reference.depth_correlation.to_bits()
        );
        for (a, b) in reference.layers.iter().zip(&res.layers) {
            assert_eq!(a.p, b.p);
            assert_reports_identical(
                &a.report,
                &b.report,
                &format!("layerwise {} @{workers}", a.layer),
            );
        }
    }
}

#[test]
fn boundary_map_is_worker_count_invariant() {
    let (model, _eval) = trained_mlp();
    let cfg = |workers| BoundaryConfig {
        resolution: 12,
        fault_samples: 60,
        seed: 35,
        workers,
        ..BoundaryConfig::default()
    };
    let fault_model = Arc::new(BernoulliBitFlip::new(1e-3));
    let reference = boundary_map(&model, &SiteSpec::AllParams, fault_model.clone(), &cfg(1));
    for workers in worker_counts() {
        let map = boundary_map(
            &model,
            &SiteSpec::AllParams,
            fault_model.clone(),
            &cfg(workers),
        );
        assert_eq!(map.error_prob, reference.error_prob, "@{workers}");
        assert_eq!(map.golden_pred, reference.golden_pred, "@{workers}");
        assert_eq!(
            map.margin_correlation, reference.margin_correlation,
            "@{workers}"
        );
    }
}

#[test]
fn random_fi_is_worker_count_invariant() {
    let (model, eval) = trained_mlp();
    let fi = RandomFi::new(model, eval, &SiteSpec::AllParams);
    let cfg = |workers| RandomFiConfig {
        injections: 60,
        seed: 36,
        level: 0.95,
        workers,
    };
    let reference = fi.run(&cfg(1));
    for workers in worker_counts() {
        let res = fi.run(&cfg(workers));
        assert_eq!(res.errors, reference.errors, "@{workers}");
        assert_eq!(res.sdc.successes, reference.sdc.successes, "@{workers}");
        assert_eq!(res.mean_error, reference.mean_error, "@{workers}");
    }
}

#[test]
fn exhaustive_fi_is_worker_count_invariant() {
    let mut rng = StdRng::seed_from_u64(902);
    let data = gaussian_blobs(80, 2, 0.7, &mut rng);
    let model = mlp(2, &[4], 2, &mut rng);
    let eval = Arc::new(data);
    let spec = SiteSpec::LayerParams {
        prefix: "fc2".into(),
    };
    let reference = run_exhaustive_with(&model, &eval, &spec, 1);
    for workers in worker_counts() {
        let res = run_exhaustive_with(&model, &eval, &spec, workers);
        assert_eq!(res.injections, reference.injections, "@{workers}");
        assert_eq!(res.sdc.successes, reference.sdc.successes, "@{workers}");
        assert_eq!(res.mean_error, reference.mean_error, "@{workers}");
        for (a, b) in reference.by_bit.iter().zip(&res.by_bit) {
            assert_eq!(a.sdc, b.sdc, "bit {} @{workers}", a.bit);
        }
    }
}

#[test]
fn layer_fi_study_is_worker_count_invariant() {
    let (model, eval) = trained_mlp();
    let layers = ["fc1", "fc2", "fc3"];
    let cfg = |workers| RandomFiConfig {
        injections: 15,
        seed: 37,
        level: 0.95,
        workers,
    };
    let reference = run_layer_fi(&model, &eval, &layers, &cfg(1));
    for workers in worker_counts() {
        let study = run_layer_fi(&model, &eval, &layers, &cfg(workers));
        assert_eq!(
            study.depth_correlation.to_bits(),
            reference.depth_correlation.to_bits(),
            "@{workers}"
        );
        for (a, b) in reference.layers.iter().zip(&study.layers) {
            assert_eq!(a.result.errors, b.result.errors, "{} @{workers}", a.layer);
        }
    }
}
