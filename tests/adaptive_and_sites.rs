//! Integration tests for the adaptive (run-until-certified) campaign mode
//! and the transient fault sites (inputs, activations) across the stack.

use bdlfi_suite::bayes::ChainConfig;
use bdlfi_suite::core::{
    run_campaign, run_campaign_adaptive, CampaignConfig, CompletenessCriteria, FaultyModel,
};
use bdlfi_suite::data::{gaussian_blobs, Dataset};
use bdlfi_suite::faults::{BernoulliBitFlip, SiteSpec};
use bdlfi_suite::nn::{mlp, optim::Sgd, Sequential, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn trained() -> (Sequential, Arc<Dataset>) {
    let mut rng = StdRng::seed_from_u64(400);
    let data = gaussian_blobs(400, 3, 1.0, &mut rng);
    let (train, test) = data.split(0.75, &mut rng);
    let mut model = mlp(2, &[24], 3, &mut rng);
    let mut trainer = Trainer::new(
        Sgd::new(0.1).with_momentum(0.9),
        TrainConfig {
            epochs: 25,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
    (model, Arc::new(test))
}

#[test]
fn adaptive_certifies_with_fewer_samples_on_easy_targets() {
    let (model, test) = trained();
    // Tiny p: the error statistic is almost constant -> certifies quickly.
    let easy = FaultyModel::new(
        model.clone(),
        Arc::clone(&test),
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(1e-6)),
    );
    // Large p: wildly varying errors -> needs more samples for the MCSE.
    let hard = FaultyModel::new(
        model,
        test,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(1e-2)),
    );
    let cfg = CampaignConfig {
        chains: 2,
        chain: ChainConfig {
            burn_in: 0,
            samples: 40, // segment
            thin: 1,
        },
        criteria: CompletenessCriteria {
            max_rhat: 1.1,
            min_ess: 50.0,
            max_mcse: 0.015,
        },
        ..CampaignConfig::default()
    };

    let easy_rep = run_campaign_adaptive(&easy, &cfg, 2000);
    let hard_rep = run_campaign_adaptive(&hard, &cfg, 2000);
    assert!(easy_rep.completeness.certified);
    assert!(
        easy_rep.total_samples() <= hard_rep.total_samples(),
        "easy {} vs hard {}",
        easy_rep.total_samples(),
        hard_rep.total_samples()
    );
}

#[test]
fn input_faults_behave_like_a_transient_site() {
    let (model, test) = trained();
    let fm_input = FaultyModel::new(
        model.clone(),
        Arc::clone(&test),
        &SiteSpec::Input,
        Arc::new(BernoulliBitFlip::new(1e-3)),
    );
    assert!(fm_input.sites().input);
    assert!(fm_input.sites().params.is_empty());

    let cfg = CampaignConfig {
        chains: 2,
        chain: ChainConfig {
            burn_in: 0,
            samples: 40,
            thin: 1,
        },
        ..CampaignConfig::default()
    };
    let rep = run_campaign(&fm_input, &cfg);
    // Input faults at this rate measurably perturb some samples but the
    // distribution stays valid.
    assert!((0.0..=1.0).contains(&rep.mean_error));
    assert!(rep.mean_error >= rep.golden_error - 0.05);
    // Parameter-space flips are zero: the MCMC state stays clean, all
    // variation comes from transient input masks.
    assert_eq!(rep.mean_flips, 0.0);
}

#[test]
fn input_faults_at_extreme_rate_destroy_accuracy() {
    let (model, test) = trained();
    let mut fm = FaultyModel::new(
        model,
        test,
        &SiteSpec::Input,
        Arc::new(BernoulliBitFlip::new(0.2)),
    );
    let mut rng = StdRng::seed_from_u64(1);
    let golden = fm.golden_error();
    let mut total = 0.0;
    for _ in 0..10 {
        total += fm.eval_error(&bdlfi_suite::faults::FaultConfig::clean(), &mut rng);
    }
    let mean = total / 10.0;
    assert!(mean > golden + 0.2, "mean {mean} vs golden {golden}");
}

#[test]
fn activation_and_param_sites_compose_through_specs() {
    // Run the same model under three specs; all must produce coherent,
    // seed-reproducible campaigns.
    let (model, test) = trained();
    let specs = [
        SiteSpec::AllParams,
        SiteSpec::Activations(vec!["relu1".into()]),
        SiteSpec::Input,
    ];
    let cfg = CampaignConfig {
        chains: 2,
        chain: ChainConfig {
            burn_in: 0,
            samples: 20,
            thin: 1,
        },
        ..CampaignConfig::default()
    };
    for spec in specs {
        let fm = FaultyModel::new(
            model.clone(),
            Arc::clone(&test),
            &spec,
            Arc::new(BernoulliBitFlip::new(1e-3)),
        );
        let a = run_campaign(&fm, &cfg);
        let b = run_campaign(&fm, &cfg);
        assert_eq!(
            a.traces[0].samples(),
            b.traces[0].samples(),
            "spec {spec:?}"
        );
    }
}
