//! The quantized-deployment workload under every campaign driver.
//!
//! The contract under test: an int8 campaign driven through the same
//! `EvalEngine` as the f32 workload inherits the full determinism and
//! resume discipline — byte-for-byte identical reports at any worker
//! count, and across an interrupt/resume cycle — and the exhaustive
//! driver enumerates exactly the 8-bit space of int8 storage (not the
//! 32-bit space of f32), reporting per-bit SDC for all eight positions.

use bdlfi_suite::baseline::{
    run_exhaustive_quant_controlled, run_exhaustive_quant_with, ExhaustiveResult,
};
use bdlfi_suite::bayes::ChainConfig;
use bdlfi_suite::core::{
    run_campaign, run_campaign_controlled, run_layerwise_quant, run_layerwise_quant_controlled,
    run_sweep_quant, run_sweep_quant_controlled, CampaignConfig, CampaignReport, CheckpointSpec,
    EngineError, KernelChoice, LayerBudget, QuantFaultyModel, RunControl, RunMeta,
};
use bdlfi_suite::data::{gaussian_blobs, Dataset};
use bdlfi_suite::faults::{BernoulliBitFlip, BitRange, Repr, SiteSpec};
use bdlfi_suite::nn::{mlp, optim::Sgd, Sequential, TrainConfig, Trainer};
use bdlfi_suite::quant::{quantize_model, CalibConfig, QuantModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

/// Worker counts the determinism contract must hold across: serial and
/// the host's actual parallelism.
fn worker_counts() -> Vec<usize> {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1, host];
    counts.dedup();
    counts
}

/// A per-test, per-process scratch directory.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("bdlfi_quant_{}_{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Train a small MLP and quantize it against its own training inputs.
fn quantized_mlp(hidden: &[usize]) -> (QuantModel, Arc<Dataset>) {
    let mut rng = StdRng::seed_from_u64(2024);
    let data = gaussian_blobs(160, 3, 0.6, &mut rng);
    let (train, test) = data.split(0.7, &mut rng);
    let mut model: Sequential = mlp(2, hidden, 3, &mut rng);
    let mut trainer = Trainer::new(
        Sgd::new(0.1).with_momentum(0.9),
        TrainConfig {
            epochs: 12,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
    let qm = quantize_model(&model, train.inputs(), &CalibConfig::default());
    (qm, Arc::new(test))
}

fn quant_fm(p: f64) -> QuantFaultyModel {
    let (qm, eval) = quantized_mlp(&[16, 16]);
    QuantFaultyModel::new(
        qm,
        eval,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::with_bits(p, BitRange::all_for(Repr::I8))),
    )
}

fn campaign_cfg(seed: u64, chains: usize, samples: usize, workers: usize) -> CampaignConfig {
    CampaignConfig {
        chains,
        chain: ChainConfig {
            burn_in: 0,
            samples,
            thin: 1,
        },
        kernel: KernelChoice::Prior,
        seed,
        workers,
        ..CampaignConfig::default()
    }
}

/// Serialize a report with its execution metadata normalized away —
/// wall-clock and worker count legitimately differ between runs; every
/// other byte must not.
fn report_bytes(report: &CampaignReport) -> String {
    let mut normalized = report.clone();
    normalized.run_meta = RunMeta::default();
    normalized.config.workers = 0;
    serde_json::to_string(&normalized).expect("serialize report")
}

fn assert_interrupted(err: EngineError, watermark: usize, what: &str) {
    match err {
        EngineError::Interrupted { completed, .. } => {
            assert_eq!(completed, watermark, "{what}: wrong watermark");
        }
        other => panic!("{what}: expected Interrupted, got {other}"),
    }
}

// ---------------------------------------------------------------------------
// Campaign determinism and resume.
// ---------------------------------------------------------------------------

#[test]
fn quant_campaign_is_bit_identical_across_worker_counts() {
    let fm = quant_fm(2e-3);
    let reference = report_bytes(&run_campaign(&fm, &campaign_cfg(71, 4, 30, 1)));
    for workers in worker_counts() {
        let report = run_campaign(&fm, &campaign_cfg(71, 4, 30, workers));
        assert_eq!(
            report_bytes(&report),
            reference,
            "quant campaign @{workers}: report bytes differ from serial run"
        );
    }
}

#[test]
fn quant_campaign_resumes_byte_for_byte() {
    let fm = quant_fm(2e-3);
    let reference = report_bytes(&run_campaign(&fm, &campaign_cfg(72, 4, 30, 1)));
    let scratch = Scratch::new("campaign");
    for workers in worker_counts() {
        let what = format!("quant campaign @{workers}");
        let cfg = campaign_cfg(72, 4, 30, workers);
        let spec = CheckpointSpec::new(scratch.path(&format!("w{workers}.ckpt")), String::new());
        let err = run_campaign_controlled(&fm, &cfg, &RunControl::stop_after(2), Some(&spec))
            .unwrap_err();
        assert_interrupted(err, 2, &what);
        let resumed =
            run_campaign_controlled(&fm, &cfg, &RunControl::new(), Some(&spec.resuming()))
                .unwrap_or_else(|e| panic!("{what}: resume failed: {e}"));
        assert_eq!(resumed.run_meta.resumed_from, Some(2), "{what}");
        assert_eq!(
            report_bytes(&resumed),
            reference,
            "{what}: resumed report differs from uninterrupted run"
        );
    }
}

#[test]
fn quant_campaign_reports_int8_scale_flip_counts() {
    // With BitRange::all_for(I8) over int8/i32 sites, mean flips per
    // config should track p * total injectable bits, not p * 32 * elements.
    let fm = quant_fm(1e-3);
    let total_bits: u64 = fm.sites().params.iter().map(|s| s.injectable_bits()).sum();
    let report = run_campaign(&fm, &campaign_cfg(73, 4, 40, 0));
    let expected = 1e-3 * total_bits as f64;
    assert!(
        (report.mean_flips - expected).abs() < expected.max(1.0),
        "mean flips {} should be near p*bits = {expected}",
        report.mean_flips
    );
}

// ---------------------------------------------------------------------------
// Sweep and layerwise drivers.
// ---------------------------------------------------------------------------

#[test]
fn quant_sweep_resumes_bit_identically() {
    let (qm, eval) = quantized_mlp(&[16, 16]);
    let ps = [1e-4, 1e-3, 1e-2];
    let reference = run_sweep_quant(
        &qm,
        &eval,
        &SiteSpec::AllParams,
        &ps,
        &campaign_cfg(74, 2, 20, 1),
    );
    let scratch = Scratch::new("sweep");
    for workers in worker_counts() {
        let what = format!("quant sweep @{workers}");
        let cfg = campaign_cfg(74, 2, 20, workers);
        let spec = CheckpointSpec::new(scratch.path(&format!("w{workers}.ckpt")), String::new());
        let err = run_sweep_quant_controlled(
            &qm,
            &eval,
            &SiteSpec::AllParams,
            &ps,
            &cfg,
            &RunControl::stop_after(1),
            Some(&spec),
        )
        .unwrap_err();
        assert_interrupted(err, 1, &what);
        let resumed = run_sweep_quant_controlled(
            &qm,
            &eval,
            &SiteSpec::AllParams,
            &ps,
            &cfg,
            &RunControl::new(),
            Some(&spec.resuming()),
        )
        .unwrap_or_else(|e| panic!("{what}: resume failed: {e}"));
        assert_eq!(resumed.golden_error, reference.golden_error, "{what}");
        assert_eq!(resumed.points.len(), reference.points.len(), "{what}");
        for (a, b) in reference.points.iter().zip(&resumed.points) {
            assert_eq!(a.p, b.p, "{what}");
            assert_eq!(
                report_bytes(&a.report),
                report_bytes(&b.report),
                "{what} p={}: report bytes differ",
                a.p
            );
        }
    }
}

#[test]
fn quant_layerwise_resumes_bit_identically() {
    let (qm, eval) = quantized_mlp(&[16, 16]);
    let layers = ["fc1", "fc2", "fc3"];
    let budget = LayerBudget::ExpectedFlips(2.0);
    let reference = run_layerwise_quant(&qm, &eval, &layers, budget, &campaign_cfg(75, 2, 20, 1));
    let scratch = Scratch::new("layerwise");
    for workers in worker_counts() {
        let what = format!("quant layerwise @{workers}");
        let cfg = campaign_cfg(75, 2, 20, workers);
        let spec = CheckpointSpec::new(scratch.path(&format!("w{workers}.ckpt")), String::new());
        let err = run_layerwise_quant_controlled(
            &qm,
            &eval,
            &layers,
            budget,
            &cfg,
            &RunControl::stop_after(2),
            Some(&spec),
        )
        .unwrap_err();
        assert_interrupted(err, 2, &what);
        let resumed = run_layerwise_quant_controlled(
            &qm,
            &eval,
            &layers,
            budget,
            &cfg,
            &RunControl::new(),
            Some(&spec.resuming()),
        )
        .unwrap_or_else(|e| panic!("{what}: resume failed: {e}"));
        for (a, b) in reference.layers.iter().zip(&resumed.layers) {
            assert_eq!(a.p, b.p, "{what} {}", a.layer);
            assert_eq!(
                report_bytes(&a.report),
                report_bytes(&b.report),
                "{what} {}: report bytes differ",
                a.layer
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Exhaustive int8 bit ablation.
// ---------------------------------------------------------------------------

fn assert_eight_bit_coverage(res: &ExhaustiveResult, elements: u64, what: &str) {
    assert_eq!(res.injections, elements * 8, "{what}: total injections");
    for stats in &res.by_bit {
        if stats.bit < 8 {
            assert_eq!(
                stats.injections, elements,
                "{what}: bit {} must be injected once per element",
                stats.bit
            );
            assert!(
                stats.sdc <= stats.injections,
                "{what}: bit {} SDC exceeds injections",
                stats.bit
            );
        } else {
            assert_eq!(
                stats.injections, 0,
                "{what}: int8 storage has no bit {}",
                stats.bit
            );
        }
    }
}

#[test]
fn quant_exhaustive_sweeps_the_complete_eight_bit_space() {
    let (qm, eval) = quantized_mlp(&[4]);
    // fc1.weight of a 2-[4]-3 MLP: 8 int8 elements, 8 bits each.
    let spec = SiteSpec::Params(vec!["fc1.weight".into()]);
    let res = run_exhaustive_quant_with(&qm, &eval, &spec, 0);
    assert_eight_bit_coverage(&res, 8, "fc1.weight");
    // Per-bit SDC rates are reportable for every one of the 8 positions.
    let rates: Vec<f64> = res.by_bit[..8]
        .iter()
        .map(|b| b.sdc as f64 / b.injections as f64)
        .collect();
    assert!(rates
        .iter()
        .all(|r| r.is_finite() && (0.0..=1.0).contains(r)));
    // The int8 MSB is the sign bit of a value scaled to fill [-127, 127];
    // flipping it moves the weight by 256 quant steps — it must corrupt
    // at least as often as the LSB's single-step nudge.
    assert!(
        rates[7] >= rates[0],
        "int8 sign-bit SDC {} below LSB SDC {}",
        rates[7],
        rates[0]
    );
}

#[test]
fn quant_exhaustive_resumes_bit_identically() {
    let (qm, eval) = quantized_mlp(&[4]);
    let site_spec = SiteSpec::LayerParams {
        prefix: "fc1".into(),
    };
    let reference = run_exhaustive_quant_with(&qm, &eval, &site_spec, 1);
    let scratch = Scratch::new("exhaustive");
    for workers in worker_counts() {
        let what = format!("quant exhaustive @{workers}");
        let spec = CheckpointSpec::new(scratch.path(&format!("w{workers}.ckpt")), String::new());
        let err = run_exhaustive_quant_controlled(
            &qm,
            &eval,
            &site_spec,
            workers,
            &RunControl::stop_after(31),
            Some(&spec),
        )
        .unwrap_err();
        assert_interrupted(err, 31, &what);
        let resumed = run_exhaustive_quant_controlled(
            &qm,
            &eval,
            &site_spec,
            workers,
            &RunControl::new(),
            Some(&spec.resuming()),
        )
        .unwrap_or_else(|e| panic!("{what}: resume failed: {e}"));
        assert_eq!(resumed.injections, reference.injections, "{what}");
        assert_eq!(resumed.sdc.successes, reference.sdc.successes, "{what}");
        assert_eq!(
            resumed.mean_error.to_bits(),
            reference.mean_error.to_bits(),
            "{what}"
        );
        for (a, b) in reference.by_bit.iter().zip(&resumed.by_bit) {
            assert_eq!(a.sdc, b.sdc, "{what} bit {}", a.bit);
            assert_eq!(a.injections, b.injections, "{what} bit {}", a.bit);
        }
        assert_eq!(resumed.run_meta.resumed_from, Some(31), "{what}");
    }
}
