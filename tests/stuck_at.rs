//! Integration tests for the stuck-at fault extension through the full
//! model stack — the paper's "BDLFI can also be extended to other fault
//! models", exercised end to end.

use bdlfi_suite::faults::{StuckAtFault, StuckBit};
use bdlfi_suite::nn::{mlp, Sequential};
use bdlfi_suite::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model() -> (Sequential, Tensor) {
    let mut rng = StdRng::seed_from_u64(500);
    let m = mlp(2, &[8], 3, &mut rng);
    let x = Tensor::rand_normal([6, 2], 0.0, 1.0, &mut rng);
    (m, x)
}

#[test]
fn stuck_weights_change_predictions_and_restore_exactly() {
    let (mut m, x) = model();
    let clean: Vec<u32> = m.predict(&x).data().iter().map(|v| v.to_bits()).collect();

    // Force the top exponent bit of several weights to 1 — a catastrophic
    // permanent defect.
    let fault = StuckAtFault::new(
        (0..5)
            .map(|e| StuckBit {
                element: e,
                bit: 30,
                value: true,
            })
            .collect(),
    );
    let mut corrupted = Vec::new();
    m.with_param_mut("fc1.weight", &mut |p| {
        fault.with_applied(&mut p.value, |_| {});
        // Apply again and capture the faulty state for the assertion.
        let undo = fault.apply(&mut p.value);
        corrupted = p.value.data().to_vec();
        undo.restore(&mut p.value);
    });
    // Forcing the exponent MSB yields a huge magnitude or (exponent
    // all-ones with nonzero mantissa) a NaN — either way, catastrophic.
    assert!(corrupted
        .iter()
        .take(5)
        .all(|&w| w.abs() > 1e18 || !w.is_finite()));

    // The model is bit-identical to the clean state afterwards.
    let again: Vec<u32> = m.predict(&x).data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(clean, again);
}

#[test]
fn stuck_at_differs_from_transient_xor_semantics() {
    // A stuck-at-1 on an already-set bit is masked; an XOR flip always
    // inverts. Demonstrate on a weight whose sign bit is set.
    let mut t = Tensor::from_vec(vec![-3.0, 3.0], [2]);

    // stuck-at-1 on the sign bit of both elements.
    let stuck = StuckAtFault::new(vec![
        StuckBit {
            element: 0,
            bit: 31,
            value: true,
        },
        StuckBit {
            element: 1,
            bit: 31,
            value: true,
        },
    ]);
    assert_eq!(stuck.effective_changes(&t), 1); // only the +3.0 changes
    let undo = stuck.apply(&mut t);
    assert_eq!(t.data(), &[-3.0, -3.0]);
    undo.restore(&mut t);

    // XOR flip on the same bits inverts both.
    let mut mask = bdlfi_suite::faults::FaultMask::empty();
    mask.push_bit(0, 31);
    mask.push_bit(1, 31);
    mask.apply(&mut t);
    assert_eq!(t.data(), &[3.0, -3.0]);
}

#[test]
fn monte_carlo_over_stuck_faults_is_runnable() {
    // A minimal permanent-defect campaign: sample stuck-at sets, measure
    // the prediction-change rate, restore between runs.
    let (mut m, x) = model();
    let clean_preds = m.predict(&x).argmax_rows();
    let mut rng = StdRng::seed_from_u64(501);
    let mut changed = 0usize;
    let runs = 60;
    for _ in 0..runs {
        let fault = StuckAtFault::sample(8 * 3, 3, &mut rng);
        let mut preds = Vec::new();
        m.with_param_mut("fc2.weight", &mut |p| {
            let undo = fault.apply(&mut p.value);
            // Note: prediction happens outside the closure; save and defer.
            undo.restore(&mut p.value);
        });
        // Apply for real around a prediction.
        let mut undo_holder = None;
        m.with_param_mut("fc2.weight", &mut |p| {
            undo_holder = Some(fault.apply(&mut p.value));
        });
        preds.extend(m.predict(&x).argmax_rows());
        m.with_param_mut("fc2.weight", &mut |p| {
            undo_holder.take().unwrap().restore(&mut p.value);
        });
        if preds != clean_preds {
            changed += 1;
        }
    }
    // Some stuck-at sets corrupt, not all; and the model always restores.
    assert!(changed > 0 && changed < runs, "changed {changed}/{runs}");
    assert_eq!(m.predict(&x).argmax_rows(), clean_preds);
}
