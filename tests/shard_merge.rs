//! Distributed sharded campaigns end-to-end: every driver's shard
//! runner, across f32 and int8 workloads, must produce shard journals
//! that merge back into a journal *byte-for-byte identical* to the one a
//! single-process run writes — and the merged journal must finalize into
//! the same report. Also covered: worker-count invariance of shard
//! journals, interrupt-one-shard → resume → merge equivalence, the
//! strict merge verifier's typed refusals on real driver journals, and
//! permutation-invariant pooling of per-shard `RunMeta`.

use bdlfi_suite::bayes::ChainConfig;
use bdlfi_suite::core::{
    merge_shards, read_journal, run_campaign_controlled, run_campaign_shard,
    run_layerwise_controlled, run_layerwise_quant_controlled, run_layerwise_quant_shard,
    run_layerwise_shard, run_sweep_controlled, run_sweep_quant_controlled, run_sweep_quant_shard,
    run_sweep_shard, CampaignConfig, CheckpointSpec, EngineError, FaultyModel, KernelChoice,
    LayerBudget, QuantFaultyModel, RunControl, RunMeta, ShardError, ShardPlan,
};
use bdlfi_suite::data::{gaussian_blobs, Dataset};
use bdlfi_suite::faults::{BernoulliBitFlip, SiteSpec};
use bdlfi_suite::nn::{mlp, optim::Sgd, Sequential, TrainConfig, Trainer};
use bdlfi_suite::quant::{quantize_model, CalibConfig, QuantModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Per-test scratch directory (concurrent tests + processes kept apart).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("bdlfi_shard_{}_{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn host_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn trained_mlp() -> (Sequential, Arc<Dataset>) {
    let mut rng = StdRng::seed_from_u64(910);
    let data = gaussian_blobs(200, 3, 0.6, &mut rng);
    let (train, test) = data.split(0.7, &mut rng);
    let mut model = mlp(2, &[16, 16], 3, &mut rng);
    let mut trainer = Trainer::new(
        Sgd::new(0.1).with_momentum(0.9),
        TrainConfig {
            epochs: 12,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
    (model, Arc::new(test))
}

fn quantized_mlp() -> (QuantModel, Arc<Dataset>) {
    let mut rng = StdRng::seed_from_u64(910);
    let data = gaussian_blobs(200, 3, 0.6, &mut rng);
    let (train, test) = data.split(0.7, &mut rng);
    let mut model = mlp(2, &[16, 16], 3, &mut rng);
    let mut trainer = Trainer::new(
        Sgd::new(0.1).with_momentum(0.9),
        TrainConfig {
            epochs: 12,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
    let qm = quantize_model(&model, train.inputs(), &CalibConfig::default());
    (qm, Arc::new(test))
}

fn campaign_cfg(seed: u64, chains: usize, samples: usize, workers: usize) -> CampaignConfig {
    CampaignConfig {
        chains,
        chain: ChainConfig {
            burn_in: 0,
            samples,
            thin: 1,
        },
        kernel: KernelChoice::Prior,
        seed,
        workers,
        ..CampaignConfig::default()
    }
}

fn mlp_fm(p: f64) -> FaultyModel {
    let (model, eval) = trained_mlp();
    FaultyModel::new(
        model,
        eval,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(p)),
    )
}

fn quant_fm(p: f64) -> QuantFaultyModel {
    let (qm, eval) = quantized_mlp();
    QuantFaultyModel::new(
        qm,
        eval,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(p)),
    )
}

fn bytes(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Builds the merge plan matching a single-process journal by reading
/// its header back (the header carries base fingerprint, seed, tasks).
fn plan_from_journal(path: &Path, count: usize) -> ShardPlan {
    let whole = read_journal(path).expect("single-process journal reads");
    ShardPlan::new(
        whole.header.fingerprint.clone(),
        whole.header.seed,
        whole.header.tasks,
        count,
    )
    .expect("plan is valid")
}

// ---- campaign: f32 and int8, merge ≡ single process --------------------

#[test]
fn campaign_shards_merge_byte_identically_f32() {
    let fm = mlp_fm(1e-3);
    let cfg = campaign_cfg(51, 6, 20, 1);
    let scratch = Scratch::new("campaign_f32");

    let whole_path = scratch.path("whole.ckpt");
    let report = run_campaign_controlled(
        &fm,
        &cfg,
        &RunControl::new(),
        Some(&CheckpointSpec::new(whole_path.clone(), String::new())),
    )
    .expect("single-process run");

    let count = 3;
    let mut shard_paths = Vec::new();
    for index in 0..count {
        let path = scratch.path(&format!("shard{index}.ckpt"));
        run_campaign_shard(
            &fm,
            &cfg,
            count,
            index,
            &RunControl::new(),
            &CheckpointSpec::new(path.clone(), String::new()),
        )
        .unwrap_or_else(|e| panic!("shard {index} failed: {e}"));
        shard_paths.push(path);
    }

    let plan = plan_from_journal(&whole_path, count);
    let merged_path = scratch.path("merged.ckpt");
    let summary = merge_shards(&plan, &shard_paths, &merged_path).expect("merge succeeds");
    assert_eq!(summary.tasks, cfg.chains);
    assert_eq!(summary.shards, count);
    assert_eq!(
        bytes(&merged_path),
        bytes(&whole_path),
        "merged journal must be byte-identical to the single-process journal"
    );

    // Finalizing the merged journal replays it through the normal driver
    // path (zero live tasks) and must reproduce the direct report.
    let finalized = run_campaign_controlled(
        &fm,
        &cfg,
        &RunControl::new(),
        Some(&CheckpointSpec::new(merged_path, String::new()).finalizing()),
    )
    .expect("finalize succeeds");
    assert_eq!(finalized.traces, report.traces);
    assert_eq!(finalized.summary, report.summary);
    assert_eq!(finalized.mean_error, report.mean_error);
    assert_eq!(finalized.run_meta.tasks, cfg.chains);
    assert_eq!(
        finalized.run_meta.resumed_from,
        Some(cfg.chains),
        "finalize must recompute nothing"
    );
}

#[test]
fn campaign_shards_merge_byte_identically_int8() {
    let fm = quant_fm(1e-3);
    let cfg = campaign_cfg(52, 4, 15, 1);
    let scratch = Scratch::new("campaign_int8");

    let whole_path = scratch.path("whole.ckpt");
    let report = run_campaign_controlled(
        &fm,
        &cfg,
        &RunControl::new(),
        Some(&CheckpointSpec::new(whole_path.clone(), String::new())),
    )
    .expect("single-process run");

    let count = 2;
    let mut shard_paths = Vec::new();
    for index in 0..count {
        let path = scratch.path(&format!("shard{index}.ckpt"));
        run_campaign_shard(
            &fm,
            &cfg,
            count,
            index,
            &RunControl::new(),
            &CheckpointSpec::new(path.clone(), String::new()),
        )
        .unwrap_or_else(|e| panic!("shard {index} failed: {e}"));
        shard_paths.push(path);
    }

    let plan = plan_from_journal(&whole_path, count);
    let merged_path = scratch.path("merged.ckpt");
    merge_shards(&plan, &shard_paths, &merged_path).expect("merge succeeds");
    assert_eq!(bytes(&merged_path), bytes(&whole_path));

    let finalized = run_campaign_controlled(
        &fm,
        &cfg,
        &RunControl::new(),
        Some(&CheckpointSpec::new(merged_path, String::new()).finalizing()),
    )
    .expect("finalize succeeds");
    assert_eq!(finalized.traces, report.traces);
    assert_eq!(finalized.summary, report.summary);
}

// ---- worker invariance: shard journals don't depend on parallelism ----

#[test]
fn shard_journals_are_worker_count_invariant() {
    let fm = mlp_fm(1e-3);
    let scratch = Scratch::new("workers");
    // At least 4 engine threads even on a single-core host: the invariant
    // under test is that neither the scheduling nor the journal
    // fingerprint (which pins `workers` via `fingerprint_form`) depends on
    // the configured worker count.
    let host = host_workers().max(4);
    let index = 1;
    let count = 3;

    let serial = scratch.path("serial.ckpt");
    run_campaign_shard(
        &fm,
        &campaign_cfg(53, 6, 20, 1),
        count,
        index,
        &RunControl::new(),
        &CheckpointSpec::new(serial.clone(), String::new()),
    )
    .expect("serial shard");

    let parallel = scratch.path("parallel.ckpt");
    run_campaign_shard(
        &fm,
        &campaign_cfg(53, 6, 20, host),
        count,
        index,
        &RunControl::new(),
        &CheckpointSpec::new(parallel.clone(), String::new()),
    )
    .expect("parallel shard");

    assert_eq!(
        bytes(&serial),
        bytes(&parallel),
        "shard journal must not depend on the worker count (1 vs {host})"
    );
}

// ---- sweep and layerwise: f32 + int8 ----------------------------------

#[test]
fn sweep_shards_merge_byte_identically() {
    let (model, eval) = trained_mlp();
    let ps = [1e-4, 1e-3, 1e-2, 5e-2];
    let cfg = campaign_cfg(54, 2, 15, 1);
    let scratch = Scratch::new("sweep");

    let whole_path = scratch.path("whole.ckpt");
    run_sweep_controlled(
        &model,
        &eval,
        &SiteSpec::AllParams,
        &ps,
        &cfg,
        &RunControl::new(),
        Some(&CheckpointSpec::new(whole_path.clone(), String::new())),
    )
    .expect("single-process sweep");

    let count = 2;
    let mut shard_paths = Vec::new();
    for index in 0..count {
        let path = scratch.path(&format!("shard{index}.ckpt"));
        run_sweep_shard(
            &model,
            &eval,
            &SiteSpec::AllParams,
            &ps,
            &cfg,
            count,
            index,
            &RunControl::new(),
            &CheckpointSpec::new(path.clone(), String::new()),
        )
        .unwrap_or_else(|e| panic!("sweep shard {index} failed: {e}"));
        shard_paths.push(path);
    }

    let plan = plan_from_journal(&whole_path, count);
    let merged_path = scratch.path("merged.ckpt");
    merge_shards(&plan, &shard_paths, &merged_path).expect("merge succeeds");
    assert_eq!(bytes(&merged_path), bytes(&whole_path));
}

#[test]
fn sweep_quant_shards_merge_byte_identically() {
    let (qm, eval) = quantized_mlp();
    let ps = [1e-4, 1e-3, 1e-2];
    let cfg = campaign_cfg(55, 2, 12, 1);
    let scratch = Scratch::new("sweep_quant");

    let whole_path = scratch.path("whole.ckpt");
    run_sweep_quant_controlled(
        &qm,
        &eval,
        &SiteSpec::AllParams,
        &ps,
        &cfg,
        &RunControl::new(),
        Some(&CheckpointSpec::new(whole_path.clone(), String::new())),
    )
    .expect("single-process quant sweep");

    let count = 3;
    let mut shard_paths = Vec::new();
    for index in 0..count {
        let path = scratch.path(&format!("shard{index}.ckpt"));
        run_sweep_quant_shard(
            &qm,
            &eval,
            &SiteSpec::AllParams,
            &ps,
            &cfg,
            count,
            index,
            &RunControl::new(),
            &CheckpointSpec::new(path.clone(), String::new()),
        )
        .unwrap_or_else(|e| panic!("quant sweep shard {index} failed: {e}"));
        shard_paths.push(path);
    }

    let plan = plan_from_journal(&whole_path, count);
    let merged_path = scratch.path("merged.ckpt");
    merge_shards(&plan, &shard_paths, &merged_path).expect("merge succeeds");
    assert_eq!(bytes(&merged_path), bytes(&whole_path));
}

#[test]
fn layerwise_shards_merge_byte_identically() {
    let (model, eval) = trained_mlp();
    let layers = ["fc1", "fc2", "fc3"];
    let budget = LayerBudget::ExpectedFlips(2.0);
    let cfg = campaign_cfg(56, 2, 15, 1);
    let scratch = Scratch::new("layerwise");

    let whole_path = scratch.path("whole.ckpt");
    run_layerwise_controlled(
        &model,
        &eval,
        &layers,
        budget,
        &cfg,
        &RunControl::new(),
        Some(&CheckpointSpec::new(whole_path.clone(), String::new())),
    )
    .expect("single-process layerwise");

    let count = 3;
    let mut shard_paths = Vec::new();
    for index in 0..count {
        let path = scratch.path(&format!("shard{index}.ckpt"));
        run_layerwise_shard(
            &model,
            &eval,
            &layers,
            budget,
            &cfg,
            count,
            index,
            &RunControl::new(),
            &CheckpointSpec::new(path.clone(), String::new()),
        )
        .unwrap_or_else(|e| panic!("layerwise shard {index} failed: {e}"));
        shard_paths.push(path);
    }

    let plan = plan_from_journal(&whole_path, count);
    let merged_path = scratch.path("merged.ckpt");
    merge_shards(&plan, &shard_paths, &merged_path).expect("merge succeeds");
    assert_eq!(bytes(&merged_path), bytes(&whole_path));
}

#[test]
fn layerwise_quant_shards_merge_byte_identically() {
    let (qm, eval) = quantized_mlp();
    let layers = ["fc1", "fc2"];
    let budget = LayerBudget::ExpectedFlips(2.0);
    let cfg = campaign_cfg(57, 2, 12, 1);
    let scratch = Scratch::new("layerwise_quant");

    let whole_path = scratch.path("whole.ckpt");
    run_layerwise_quant_controlled(
        &qm,
        &eval,
        &layers,
        budget,
        &cfg,
        &RunControl::new(),
        Some(&CheckpointSpec::new(whole_path.clone(), String::new())),
    )
    .expect("single-process quant layerwise");

    let count = 2;
    let mut shard_paths = Vec::new();
    for index in 0..count {
        let path = scratch.path(&format!("shard{index}.ckpt"));
        run_layerwise_quant_shard(
            &qm,
            &eval,
            &layers,
            budget,
            &cfg,
            count,
            index,
            &RunControl::new(),
            &CheckpointSpec::new(path.clone(), String::new()),
        )
        .unwrap_or_else(|e| panic!("quant layerwise shard {index} failed: {e}"));
        shard_paths.push(path);
    }

    let plan = plan_from_journal(&whole_path, count);
    let merged_path = scratch.path("merged.ckpt");
    merge_shards(&plan, &shard_paths, &merged_path).expect("merge succeeds");
    assert_eq!(bytes(&merged_path), bytes(&whole_path));
}

// ---- interrupt one shard, resume it, merge ≡ uninterrupted ------------

#[test]
fn interrupted_shard_resumes_and_merges_identically() {
    let fm = mlp_fm(1e-3);
    let cfg = campaign_cfg(58, 6, 20, 1);
    let scratch = Scratch::new("interrupt");

    let whole_path = scratch.path("whole.ckpt");
    run_campaign_controlled(
        &fm,
        &cfg,
        &RunControl::new(),
        Some(&CheckpointSpec::new(whole_path.clone(), String::new())),
    )
    .expect("single-process run");

    let count = 3;
    let mut shard_paths = Vec::new();
    for index in 0..count {
        let path = scratch.path(&format!("shard{index}.ckpt"));
        let spec = CheckpointSpec::new(path.clone(), String::new());
        if index == 1 {
            // Interrupt this shard after one of its two chains, then
            // resume it from its journal.
            let err =
                run_campaign_shard(&fm, &cfg, count, index, &RunControl::stop_after(1), &spec)
                    .expect_err("stop_after must interrupt");
            match err {
                ShardError::Engine(EngineError::Interrupted { completed, .. }) => {
                    assert_eq!(completed, 1, "wrong watermark");
                }
                other => panic!("expected Interrupted, got {other}"),
            }
            let meta = run_campaign_shard(
                &fm,
                &cfg,
                count,
                index,
                &RunControl::new(),
                &spec.resuming(),
            )
            .expect("resume succeeds");
            assert_eq!(meta.resumed_from, Some(1));
        } else {
            run_campaign_shard(&fm, &cfg, count, index, &RunControl::new(), &spec)
                .unwrap_or_else(|e| panic!("shard {index} failed: {e}"));
        }
        shard_paths.push(path);
    }

    let plan = plan_from_journal(&whole_path, count);
    let merged_path = scratch.path("merged.ckpt");
    merge_shards(&plan, &shard_paths, &merged_path).expect("merge succeeds");
    assert_eq!(
        bytes(&merged_path),
        bytes(&whole_path),
        "an interrupted-then-resumed shard must merge identically"
    );
}

// ---- typed refusals on real driver journals ---------------------------

#[test]
fn merge_verifier_refuses_bad_shard_sets_with_typed_errors() {
    let fm = mlp_fm(1e-3);
    let cfg = campaign_cfg(59, 4, 15, 1);
    let scratch = Scratch::new("refusals");

    let whole_path = scratch.path("whole.ckpt");
    run_campaign_controlled(
        &fm,
        &cfg,
        &RunControl::new(),
        Some(&CheckpointSpec::new(whole_path.clone(), String::new())),
    )
    .expect("single-process run");

    let count = 2;
    let mut shard_paths = Vec::new();
    for index in 0..count {
        let path = scratch.path(&format!("shard{index}.ckpt"));
        run_campaign_shard(
            &fm,
            &cfg,
            count,
            index,
            &RunControl::new(),
            &CheckpointSpec::new(path.clone(), String::new()),
        )
        .unwrap_or_else(|e| panic!("shard {index} failed: {e}"));
        shard_paths.push(path);
    }
    let plan = plan_from_journal(&whole_path, count);
    let out = scratch.path("merged.ckpt");

    // Same shard twice → DuplicateShard.
    let dup = vec![shard_paths[0].clone(), shard_paths[0].clone()];
    match merge_shards(&plan, &dup, &out) {
        Err(ShardError::DuplicateShard { index: 0 }) => {}
        other => panic!("expected DuplicateShard, got {other:?}"),
    }

    // One shard omitted → MissingShard.
    let missing = vec![shard_paths[0].clone()];
    match merge_shards(&plan, &missing, &out) {
        Err(ShardError::MissingShard { index: 1 }) => {}
        other => panic!("expected MissingShard, got {other:?}"),
    }

    // A shard from a campaign with the same seed but a different config
    // (other base fingerprint) → FingerprintMismatch.
    let foreign_cfg = campaign_cfg(59, 4, 18, 1);
    let foreign = scratch.path("foreign.ckpt");
    run_campaign_shard(
        &fm,
        &foreign_cfg,
        count,
        1,
        &RunControl::new(),
        &CheckpointSpec::new(foreign.clone(), String::new()),
    )
    .expect("foreign shard");
    let mixed = vec![shard_paths[0].clone(), foreign];
    match merge_shards(&plan, &mixed, &out) {
        Err(ShardError::FingerprintMismatch { index: 1, .. }) => {}
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }

    // A shard from a campaign over a different seed → SeedMismatch.
    let reseeded_cfg = campaign_cfg(60, 4, 15, 1);
    let reseeded = scratch.path("reseeded.ckpt");
    run_campaign_shard(
        &fm,
        &reseeded_cfg,
        count,
        1,
        &RunControl::new(),
        &CheckpointSpec::new(reseeded.clone(), String::new()),
    )
    .expect("reseeded shard");
    let mixed_seed = vec![shard_paths[0].clone(), reseeded];
    match merge_shards(&plan, &mixed_seed, &out) {
        Err(ShardError::SeedMismatch {
            expected: 59,
            found: 60,
            ..
        }) => {}
        other => panic!("expected SeedMismatch, got {other:?}"),
    }

    // A torn final line (simulated kill mid-append) → TornTail; the
    // merge never truncates a shard — the shard runner must resume it.
    let torn = scratch.path("torn.ckpt");
    let mut torn_bytes = bytes(&shard_paths[1]);
    torn_bytes.extend_from_slice(b"{\"task\":99,\"half");
    std::fs::write(&torn, &torn_bytes).expect("write torn copy");
    let with_torn = vec![shard_paths[0].clone(), torn];
    match merge_shards(&plan, &with_torn, &out) {
        Err(ShardError::TornTail { index: 1 }) => {}
        other => panic!("expected TornTail, got {other:?}"),
    }

    // A whole-campaign journal is not a shard → NotAShard.
    let not_shard = vec![whole_path.clone(), shard_paths[1].clone()];
    match merge_shards(&plan, &not_shard, &out) {
        Err(ShardError::NotAShard { .. }) => {}
        other => panic!("expected NotAShard, got {other:?}"),
    }

    // The untouched set still merges — the refusals above left no state.
    merge_shards(&plan, &shard_paths, &out).expect("clean set still merges");
    assert_eq!(bytes(&out), bytes(&whole_path));
}

// ---- RunMeta pooling is order-independent -----------------------------

#[test]
fn shard_run_meta_pools_permutation_invariantly() {
    let fm = mlp_fm(1e-3);
    let cfg = campaign_cfg(61, 6, 15, 1);
    let scratch = Scratch::new("meta");

    let count = 3;
    let mut metas = Vec::new();
    for index in 0..count {
        let path = scratch.path(&format!("shard{index}.ckpt"));
        let meta = run_campaign_shard(
            &fm,
            &cfg,
            count,
            index,
            &RunControl::new(),
            &CheckpointSpec::new(path, String::new()),
        )
        .unwrap_or_else(|e| panic!("shard {index} failed: {e}"));
        metas.push(meta);
    }

    let forward = RunMeta::try_merged_many(metas.clone())
        .expect("pooling succeeds")
        .expect("non-empty");
    let reversed = RunMeta::try_merged_many(metas.iter().rev().copied())
        .expect("pooling succeeds")
        .expect("non-empty");
    assert_eq!(forward.tasks, cfg.chains, "pooled task count");
    assert_eq!(forward.tasks, reversed.tasks);
    assert_eq!(forward.seed, reversed.seed);
    assert_eq!(forward.delta_hits, reversed.delta_hits);
    assert_eq!(forward.delta_fallbacks, reversed.delta_fallbacks);
    assert_eq!(forward.resumed_from, reversed.resumed_from);
}
