//! End-to-end tests for `bdlfi-serve`: submit over HTTP, stream results
//! and diagnostics, interrupt by dropping the daemon mid-flight, restart
//! a fresh daemon on the same state directory, resume over HTTP, and
//! byte-compare the resumed report against an uninterrupted one.

use bdlfi_bayes::ChainConfig;
use bdlfi_serve::client;
use bdlfi_serve::spec::{DatasetSpec, DriverSpec, JobSpec, ModelSpec, ScenarioSpec};
use bdlfi_serve::{Daemon, DaemonHandle, ServeConfig};
use serde::{Number, Serialize, Value};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use bdlfi_faults::SiteSpec;
use bdlfi_suite::core::CampaignConfig;

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("bdlfi-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start_daemon(state_dir: &Path, workers: usize) -> DaemonHandle {
    let cfg = ServeConfig {
        state_dir: state_dir.to_path_buf(),
        workers,
        sync_every: 1,
    };
    Daemon::bind("127.0.0.1:0", &cfg)
        .expect("daemon binds on an ephemeral port")
        .start()
}

fn spec_json(spec: &JobSpec) -> String {
    serde_json::to_string(&spec.to_json_value()).unwrap()
}

/// A campaign sized so chains take long enough that a shutdown lands
/// between task boundaries, yet the whole job stays under a second.
fn slow_spec(seed: u64) -> JobSpec {
    JobSpec {
        scenario: ScenarioSpec {
            dataset: DatasetSpec {
                examples: 200,
                classes: 3,
                spread: 0.6,
                seed: 21,
                train_frac: 0.7,
            },
            model: ModelSpec {
                hidden: vec![16],
                epochs: 4,
                batch_size: 32,
                lr: 0.1,
                momentum: 0.9,
                seed: 22,
            },
            quantized: false,
            sites: SiteSpec::AllParams,
            flip_probability: 1e-3,
        },
        driver: DriverSpec::Campaign {
            config: CampaignConfig {
                chains: 4,
                chain: ChainConfig {
                    burn_in: 5,
                    samples: 400,
                    thin: 1,
                },
                seed,
                workers: 1,
                ..CampaignConfig::default()
            },
        },
        shard: None,
    }
}

fn submit(addr: &str, spec: &JobSpec) -> String {
    let resp = client::request(
        addr,
        "POST",
        "/jobs",
        Some(&spec_json(spec)),
        Duration::from_secs(10),
    )
    .expect("submit request completes");
    assert_eq!(resp.status, 202, "submit rejected: {}", resp.body);
    let summary: Value = serde_json::from_str(&resp.body).unwrap();
    summary
        .get("id")
        .and_then(Value::as_str)
        .expect("submit response carries the job id")
        .to_string()
}

fn job_status(addr: &str, id: &str) -> String {
    let resp = client::request(
        addr,
        "GET",
        &format!("/jobs/{id}"),
        None,
        Duration::from_secs(10),
    )
    .expect("status request completes");
    assert_eq!(resp.status, 200, "status failed: {}", resp.body);
    let summary: Value = serde_json::from_str(&resp.body).unwrap();
    summary
        .get("status")
        .and_then(Value::as_str)
        .expect("summary carries a status")
        .to_string()
}

fn wait_status(addr: &str, id: &str, want: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let got = job_status(addr, id);
        if got == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} stuck at {got}, wanted {want}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn fetch_report(addr: &str, id: &str) -> Value {
    let resp = client::request(
        addr,
        "GET",
        &format!("/jobs/{id}/report"),
        None,
        Duration::from_secs(10),
    )
    .expect("report request completes");
    assert_eq!(resp.status, 200, "no report for {id}: {}", resp.body);
    serde_json::from_str(&resp.body).unwrap()
}

/// Reports from different attempts must agree on everything except
/// execution metadata; null out `run_meta` and the granted worker count
/// before comparing serialized bytes.
fn normalized_report_bytes(report: &Value) -> String {
    fn scrub(v: &mut Value) {
        if let Value::Object(entries) = v {
            for (key, val) in entries.iter_mut() {
                if key == "run_meta" {
                    *val = Value::Null;
                } else if key == "workers" {
                    *val = Value::Number(Number::U(0));
                } else {
                    scrub(val);
                }
            }
        } else if let Value::Array(items) = v {
            for item in items.iter_mut() {
                scrub(item);
            }
        }
    }
    let mut scrubbed = report.clone();
    scrub(&mut scrubbed);
    serde_json::to_string(&scrubbed).unwrap()
}

#[test]
fn two_concurrent_jobs_stream_results_and_diagnostics_to_completion() {
    let scratch = Scratch::new("concurrent");
    let handle = start_daemon(scratch.path(), 2);
    let addr = handle.addr().to_string();

    let a = submit(&addr, &slow_spec(501));
    let b = submit(&addr, &slow_spec(502));

    // Stream both event logs concurrently; each blocks until terminal.
    let streams: Vec<_> = [a.clone(), b.clone()]
        .into_iter()
        .map(|id| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                client::request(
                    &addr,
                    "GET",
                    &format!("/jobs/{id}/events"),
                    None,
                    Duration::from_secs(120),
                )
                .expect("event stream completes")
            })
        })
        .collect();
    for stream in streams {
        let resp = stream.join().unwrap();
        assert_eq!(resp.status, 200);
        let results = resp
            .body
            .lines()
            .filter(|l| l.contains(r#""event":"result""#))
            .count();
        assert_eq!(results, 4, "one result per chain:\n{}", resp.body);
        assert!(
            resp.body.contains(r#""event":"diagnostics""#),
            "live diagnostics missing:\n{}",
            resp.body
        );
        assert!(
            resp.body.contains(r#""event":"done""#),
            "terminal done event missing:\n{}",
            resp.body
        );
    }
    wait_status(&addr, &a, "done", Duration::from_secs(10));
    wait_status(&addr, &b, "done", Duration::from_secs(10));

    // Both reports exist and differ (different campaign seeds).
    let ra = fetch_report(&addr, &a);
    let rb = fetch_report(&addr, &b);
    assert_eq!(ra.get("kind").and_then(Value::as_str), Some("campaign"));
    assert_ne!(
        normalized_report_bytes(&ra),
        normalized_report_bytes(&rb),
        "distinct seeds must yield distinct campaigns"
    );
}

#[test]
fn daemon_drop_interrupts_and_restart_resumes_byte_identical() {
    // Reference: the same spec run to completion without interruption.
    let reference = {
        let scratch = Scratch::new("reference");
        let handle = start_daemon(scratch.path(), 1);
        let addr = handle.addr().to_string();
        let id = submit(&addr, &slow_spec(700));
        wait_status(&addr, &id, "done", Duration::from_secs(120));
        fetch_report(&addr, &id)
    };

    let scratch = Scratch::new("interrupt");
    let id;
    {
        let mut handle = start_daemon(scratch.path(), 1);
        let addr = handle.addr().to_string();
        id = submit(&addr, &slow_spec(700));
        // Wait for the first journaled result, then shut down mid-job —
        // exactly what losing the daemon process does to a running study.
        client::await_in_stream(
            &addr,
            &format!("/jobs/{id}/events"),
            r#""event":"result""#,
            1,
            Duration::from_secs(60),
        )
        .expect("job makes progress before the interrupt");
        handle.shutdown();
    }

    // A fresh daemon on the same state directory recovers the job as
    // interrupted and resumable, and resumes it from its journal.
    let handle = start_daemon(scratch.path(), 1);
    let addr = handle.addr().to_string();
    let resp = client::request(
        &addr,
        "GET",
        &format!("/jobs/{id}"),
        None,
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    let summary: Value = serde_json::from_str(&resp.body).unwrap();
    assert_eq!(
        summary.get("status").and_then(Value::as_str),
        Some("interrupted"),
        "restart must recover the interrupted status: {}",
        resp.body
    );
    assert_eq!(
        summary.get("resumable").and_then(|v| match v {
            Value::Bool(b) => Some(*b),
            _ => None,
        }),
        Some(true),
        "journal must survive the restart: {}",
        resp.body
    );

    let resp = client::request(
        &addr,
        "POST",
        &format!("/jobs/{id}/resume"),
        None,
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(resp.status, 202, "resume rejected: {}", resp.body);
    assert!(
        resp.body.contains(r#""resumed_from_journal":true"#),
        "resume must pick up the journal: {}",
        resp.body
    );
    wait_status(&addr, &id, "done", Duration::from_secs(120));

    let resumed = fetch_report(&addr, &id);
    assert_eq!(
        normalized_report_bytes(&resumed),
        normalized_report_bytes(&reference),
        "resumed report must be byte-identical to an uninterrupted run"
    );

    // The event log is in-memory, so the restarted daemon's stream is
    // rebuilt from the journal: the resumed attempt replays the journaled
    // results through the observer before computing the rest, so a client
    // attaching after the restart still sees every chain's result.
    let resp = client::request(
        &addr,
        "GET",
        &format!("/jobs/{id}/events"),
        None,
        Duration::from_secs(30),
    )
    .unwrap();
    assert!(
        resp.body.contains(r#""event":"started","resumed":true"#),
        "resumed attempt must announce itself: {}",
        resp.body
    );
    let results = resp
        .body
        .lines()
        .filter(|l| l.contains(r#""event":"result""#))
        .count();
    assert_eq!(results, 4, "replayed + fresh results:\n{}", resp.body);
    assert!(resp.body.contains(r#""event":"done""#));
}

#[test]
fn bad_submissions_and_unknown_jobs_get_typed_http_errors() {
    let scratch = Scratch::new("errors");
    let handle = start_daemon(scratch.path(), 1);
    let addr = handle.addr().to_string();

    let resp = client::request(
        &addr,
        "POST",
        "/jobs",
        Some("{not json"),
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(resp.status, 400);

    let mut invalid = slow_spec(1);
    invalid.scenario.flip_probability = 2.0;
    let resp = client::request(
        &addr,
        "POST",
        "/jobs",
        Some(&spec_json(&invalid)),
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(
        resp.status, 400,
        "out-of-range spec must 400: {}",
        resp.body
    );

    // Unknown sites fail pre-flight (the drivers would panic on them).
    let mut bad_sites = slow_spec(2);
    bad_sites.scenario.sites = SiteSpec::LayerParams {
        prefix: "nonexistent_layer".to_string(),
    };
    let resp = client::request(
        &addr,
        "POST",
        "/jobs",
        Some(&spec_json(&bad_sites)),
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(resp.status, 400, "unknown sites must 400: {}", resp.body);

    for (method, path) in [
        ("GET", "/jobs/job-999999"),
        ("POST", "/jobs/job-999999/cancel"),
        ("POST", "/jobs/job-999999/resume"),
        ("GET", "/jobs/job-999999/report"),
        ("GET", "/nope"),
    ] {
        let resp = client::request(&addr, method, path, None, Duration::from_secs(10)).unwrap();
        assert_eq!(resp.status, 404, "{method} {path}: {}", resp.body);
    }

    let resp = client::request(&addr, "GET", "/healthz", None, Duration::from_secs(10)).unwrap();
    assert_eq!(resp.status, 200);
    drop(handle);
}
