//! Sparse-delta evaluation equivalence fuzzing.
//!
//! The contract under test: with the sparse-delta path enabled (the
//! default), every workload evaluation is **bit-identical** to a dense
//! re-inference of the faulted network — for random 1–16-flip
//! configurations across f32 weights/biases, int8 weight bytes, i32
//! bias words and per-channel f32 weight scales; on MLP, reduced-ResNet
//! and quantized-MLP fixtures; and in the forced-fallback cases
//! (conv-layer faults, quantizer zero-point faults, transient activation
//! sites) where the planner must refuse and route through the exact
//! incremental path. Campaign reports
//! must stay worker-count invariant and identical with the delta path
//! switched off.

use bdlfi_suite::bayes::ChainConfig;
use bdlfi_suite::core::{
    run_campaign, CampaignConfig, CampaignReport, FaultWorkload, FaultyModel, KernelChoice,
    QuantFaultyModel,
};
use bdlfi_suite::data::{gaussian_blobs, Dataset};
use bdlfi_suite::faults::{BernoulliBitFlip, FaultConfig, FaultMask, ParamSite, Repr, SiteSpec};
use bdlfi_suite::nn::{
    mlp, optim::Sgd, predict_batched, resnet18, ResNetConfig, Sequential, TrainConfig, Trainer,
};
use bdlfi_suite::quant::{quantize_model, CalibConfig};
use bdlfi_suite::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Builds a random configuration with `flips` bit flips spread over the
/// given parameter sites, bit positions bounded by each site's storage
/// representation (8 for int8 bytes, 32 otherwise).
fn random_config(sites: &[ParamSite], flips: usize, rng: &mut StdRng) -> FaultConfig {
    let mut cfg = FaultConfig::clean();
    for _ in 0..flips {
        let site = &sites[rng.random_range(0..sites.len())];
        let element = rng.random_range(0..site.len);
        let bit = match site.repr {
            Repr::I8 => rng.random_range(0..8u8),
            _ => rng.random_range(0..32u8),
        };
        let mut mask = cfg.mask(&site.path);
        mask.push_bit(element, bit);
        cfg.set_mask(&site.path, mask);
    }
    cfg
}

/// One flip at a fixed location — for targeting specific fallback sites.
fn single_flip(path: &str, element: usize, bit: u8) -> FaultConfig {
    let mut cfg = FaultConfig::clean();
    let mut mask = FaultMask::empty();
    mask.push_bit(element, bit);
    cfg.set_mask(path, mask);
    cfg
}

fn trained_mlp(hidden: &[usize], seed: u64) -> (Sequential, Arc<Dataset>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = gaussian_blobs(120, 3, 0.6, &mut rng);
    let (train, test) = data.split(0.7, &mut rng);
    let mut model = mlp(2, hidden, 3, &mut rng);
    let mut trainer = Trainer::new(
        Sgd::new(0.1).with_momentum(0.9),
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
    (model, Arc::new(test))
}

/// Asserts that `fm.eval_logits(cfg)` (delta path enabled) bit-matches
/// both the delta-disabled incremental path and a cold dense re-inference
/// of the faulted model.
fn assert_f32_equivalence(fm: &FaultyModel, cfg: &FaultConfig, what: &str) {
    let mut delta_fm = fm.clone();
    let mut plain_fm = fm.clone();
    plain_fm.set_delta_enabled(false);
    let mut rng_a = StdRng::seed_from_u64(99);
    let mut rng_b = StdRng::seed_from_u64(99);
    let a = delta_fm.eval_logits(cfg, &mut rng_a);
    let b = plain_fm.eval_logits(cfg, &mut rng_b);
    assert_eq!(bits(&a), bits(&b), "{what}: delta vs incremental");
}

#[test]
fn random_flips_on_mlp_are_bitwise_identical() {
    let (model, eval) = trained_mlp(&[24, 16, 12], 41);
    let fm = FaultyModel::new(
        model,
        eval,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(1e-3)),
    );
    let sites = FaultWorkload::sites(&fm).params.clone();
    let mut rng = StdRng::seed_from_u64(7);
    for round in 0..40 {
        let flips = [1, 2, 3, 4, 8, 16][round % 6];
        let cfg = random_config(&sites, flips, &mut rng);
        assert_f32_equivalence(&fm, &cfg, &format!("mlp round {round} ({flips} flips)"));
    }
    let (hits, fallbacks) = fm.delta_counters();
    assert!(
        hits > 0,
        "delta path never fired on an all-dense model ({hits} hits, {fallbacks} fallbacks)"
    );
}

#[test]
fn delta_and_dense_paths_match_cold_reinference() {
    let (model, eval) = trained_mlp(&[16, 12], 43);
    let mut cold_model = model.clone();
    let fm = FaultyModel::new(
        model,
        Arc::clone(&eval),
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(1e-3)),
    );
    let sites = FaultWorkload::sites(&fm).params.clone();
    let mut rng = StdRng::seed_from_u64(11);
    for round in 0..10 {
        let cfg = random_config(&sites, 1 + round % 16, &mut rng);
        let mut delta_fm = fm.clone();
        let logits = delta_fm.eval_logits(&cfg, &mut StdRng::seed_from_u64(1));
        cfg.apply(&mut cold_model);
        let cold = predict_batched(&mut cold_model, eval.inputs(), 64, &mut |_, _| {});
        cfg.apply(&mut cold_model);
        assert_eq!(bits(&logits), bits(&cold), "round {round}: delta vs cold");
    }
}

#[test]
fn resnet_conv_faults_fall_back_and_stay_exact() {
    let mut rng = StdRng::seed_from_u64(5);
    let model = resnet18(
        ResNetConfig {
            in_channels: 1,
            base_width: 2,
            classes: 3,
        },
        &mut rng,
    );
    let inputs = Tensor::rand_normal([6, 1, 8, 8], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..6).map(|i| i % 3).collect();
    let eval = Arc::new(Dataset::new(inputs, labels, 3));
    let fm = FaultyModel::new(
        model,
        eval,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(1e-4)),
    );
    let sites = FaultWorkload::sites(&fm).params.clone();
    assert!(
        sites.iter().any(|s| s.path.contains("conv")),
        "reduced resnet must expose conv sites"
    );
    let mut rng = StdRng::seed_from_u64(13);
    // Random multi-flip configs: almost all touch conv/bn sites and must
    // fall back; any hitting only the final dense layer may take the
    // delta path. Either way the logits must bit-match.
    for round in 0..6 {
        let cfg = random_config(&sites, 1 + round * 3, &mut rng);
        assert_f32_equivalence(&fm, &cfg, &format!("resnet round {round}"));
    }
    // A targeted conv-weight flip is a guaranteed planner refusal.
    let conv_site = sites.iter().find(|s| s.path.contains("conv")).unwrap();
    let before = fm.delta_counters();
    assert_f32_equivalence(
        &fm,
        &single_flip(&conv_site.path, 0, 22),
        "targeted conv flip",
    );
    let after = fm.delta_counters();
    assert!(
        after.1 > before.1,
        "conv fault must be counted as a fallback"
    );
    // The fc head is dense: its faults ride the delta path.
    let fc_site = sites
        .iter()
        .find(|s| s.path.starts_with("fc") && s.path.ends_with("weight"))
        .expect("resnet ends in a dense classifier");
    let before = fm.delta_counters();
    assert_f32_equivalence(&fm, &single_flip(&fc_site.path, 1, 25), "fc head flip");
    let after = fm.delta_counters();
    assert!(after.0 > before.0, "dense-head fault must be a delta hit");
}

#[test]
fn transient_activation_sites_force_fallback_exactly() {
    let (model, eval) = trained_mlp(&[12], 47);
    let fm = FaultyModel::new(
        model,
        eval,
        &SiteSpec::Activations(vec!["fc1".into()]),
        Arc::new(BernoulliBitFlip::new(0.01)),
    );
    // Transient sites disable the prefix cache entirely; the delta path
    // can never fire, but evaluations stay deterministic given the rng.
    let mut a_fm = fm.clone();
    let mut b_fm = fm.clone();
    b_fm.set_delta_enabled(false);
    let a = a_fm.eval_logits(&FaultConfig::clean(), &mut StdRng::seed_from_u64(3));
    let b = b_fm.eval_logits(&FaultConfig::clean(), &mut StdRng::seed_from_u64(3));
    assert_eq!(bits(&a), bits(&b), "transient eval must not depend on gate");
    let (hits, fallbacks) = fm.delta_counters();
    assert_eq!(hits, 0, "no prefix cache, no delta hits");
    assert!(fallbacks > 0, "forced full passes count as fallbacks");
}

#[test]
fn random_flips_on_quant_mlp_are_bitwise_identical() {
    let mut rng = StdRng::seed_from_u64(17);
    let data = gaussian_blobs(100, 3, 0.6, &mut rng);
    let (train, test) = data.split(0.7, &mut rng);
    let mut model = mlp(2, &[20, 12], 3, &mut rng);
    let mut trainer = Trainer::new(
        Sgd::new(0.1).with_momentum(0.9),
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
    let qm = quantize_model(&model, train.inputs(), &CalibConfig::default());
    let eval = Arc::new(test);
    let qfm = QuantFaultyModel::new(
        qm.clone(),
        Arc::clone(&eval),
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(1e-3)),
    );
    // Fuzz across the column-confined site kinds: int8 weight bytes, i32
    // bias words and per-channel f32 weight scales (zero-point sites fan
    // out and are exercised separately below).
    let confined: Vec<ParamSite> = qfm
        .sites()
        .params
        .iter()
        .filter(|s| {
            s.path.ends_with("weight") || s.path.ends_with("bias") || s.path.ends_with("w_scale")
        })
        .cloned()
        .collect();
    assert!(confined.iter().any(|s| s.repr == Repr::I8));
    assert!(confined.iter().any(|s| s.repr == Repr::I32Accum));
    assert!(confined.iter().any(|s| s.repr == Repr::F32));
    let mut rng = StdRng::seed_from_u64(23);
    for round in 0..30 {
        let flips = [1, 2, 4, 8, 16][round % 5];
        let cfg = random_config(&confined, flips, &mut rng);
        let mut delta_qfm = qfm.clone();
        let a = delta_qfm.eval_logits(&cfg);
        let mut cold = qm.clone();
        cold.apply(&cfg);
        let b = cold.predict_all(eval.inputs(), 64);
        cold.apply(&cfg);
        assert_eq!(
            bits(&a),
            bits(&b),
            "quant round {round} ({flips} flips): delta vs integer re-inference"
        );
    }
    let (hits, _) = qfm.delta_counters();
    assert!(hits > 0, "quant delta path never fired");

    // Output zero-point faults reach every column through the requantizer:
    // the planner must refuse, the fallback must stay exact.
    {
        let cfg = single_flip("fc2.out_zp", 0, 3);
        let before = qfm.delta_counters();
        let mut delta_qfm = qfm.clone();
        let a = delta_qfm.eval_logits(&cfg);
        let mut cold = qm.clone();
        cold.apply(&cfg);
        let b = cold.predict_all(eval.inputs(), 64);
        cold.apply(&cfg);
        assert_eq!(bits(&a), bits(&b), "fc2.out_zp: fallback vs re-inference");
        let after = qfm.delta_counters();
        assert!(after.1 > before.1, "fc2.out_zp must fall back");
    }
    // A per-channel weight scale feeds exactly one column's requantizer,
    // so its faults ride the delta path — and still bit-match.
    {
        let cfg = single_flip("fc1.w_scale", 0, 27);
        let before = qfm.delta_counters();
        let mut delta_qfm = qfm.clone();
        let a = delta_qfm.eval_logits(&cfg);
        let mut cold = qm.clone();
        cold.apply(&cfg);
        let b = cold.predict_all(eval.inputs(), 64);
        cold.apply(&cfg);
        assert_eq!(bits(&a), bits(&b), "fc1.w_scale: delta vs re-inference");
        let after = qfm.delta_counters();
        assert!(after.0 > before.0, "fc1.w_scale must be a delta hit");
    }
}

/// Worker counts the invariance contract must hold across: serial and the
/// host's actual parallelism.
fn worker_counts() -> Vec<usize> {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1, host];
    counts.dedup();
    counts
}

fn assert_reports_identical(a: &CampaignReport, b: &CampaignReport, what: &str) {
    assert_eq!(a.traces, b.traces, "{what}: traces differ");
    assert_eq!(a.mean_error, b.mean_error, "{what}: mean error differs");
    assert_eq!(a.mean_flips, b.mean_flips, "{what}: mean flips differ");
    assert_eq!(a.summary, b.summary, "{what}: summaries differ");
}

#[test]
fn campaigns_with_delta_are_worker_invariant_and_gate_independent() {
    let (model, eval) = trained_mlp(&[16, 12], 53);
    let fm = FaultyModel::new(
        model,
        eval,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(5e-4)),
    );
    let mut plain = fm.clone();
    plain.set_delta_enabled(false);
    let cfg = CampaignConfig {
        seed: 77,
        chains: 4,
        chain: ChainConfig {
            samples: 12,
            ..CampaignConfig::default().chain
        },
        kernel: KernelChoice::Prior,
        workers: 1,
        ..CampaignConfig::default()
    };
    let reference = run_campaign(&plain, &cfg);
    for workers in worker_counts() {
        let mut c = cfg;
        c.workers = workers;
        let report = run_campaign(&fm, &c);
        assert_reports_identical(
            &reference,
            &report,
            &format!("delta campaign @{workers} workers"),
        );
        assert!(
            report.run_meta.delta_hits > 0,
            "campaign over dense sites must hit the delta path"
        );
    }
    // The disabled-gate run records no hits.
    assert_eq!(reference.run_meta.delta_hits, 0);
    assert!(reference.run_meta.delta_fallbacks == 0);
}
