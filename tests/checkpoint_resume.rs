//! Crash-safe checkpoint/resume across every campaign driver.
//!
//! The contract under test: a campaign stopped cooperatively at an
//! arbitrary watermark and resumed from its journal must produce a report
//! bit-identical to the same campaign run uninterrupted — at one worker
//! and at the host's full parallelism. This holds because every task is a
//! pure function of `(campaign seed, task_id)` and the journal is an
//! ordered prefix of task results, so a resume recomputes exactly the
//! missing suffix.
//!
//! Also covered: the typed-error surface of the journal reader (torn
//! lines, fingerprint mismatches, resuming an already-complete journal).

use bdlfi_suite::baseline::{
    run_exhaustive_controlled, run_exhaustive_with, run_layer_fi, run_layer_fi_controlled,
    RandomFi, RandomFiConfig,
};
use bdlfi_suite::bayes::ChainConfig;
use bdlfi_suite::core::{
    boundary_map, boundary_map_controlled, run_campaign, run_campaign_adaptive,
    run_campaign_adaptive_controlled, run_campaign_controlled, run_layerwise,
    run_layerwise_controlled, run_protection_study, run_protection_study_controlled, run_sweep,
    run_sweep_controlled, BoundaryConfig, CampaignConfig, CampaignReport, CheckpointError,
    CheckpointSpec, EngineError, FaultyModel, KernelChoice, LayerBudget, RunControl,
};
use bdlfi_suite::data::{gaussian_blobs, Dataset};
use bdlfi_suite::faults::{BernoulliBitFlip, SiteSpec};
use bdlfi_suite::nn::{mlp, optim::Sgd, Sequential, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

/// Worker counts the resume contract must hold across: serial and the
/// host's actual parallelism.
fn worker_counts() -> Vec<usize> {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1, host];
    counts.dedup();
    counts
}

/// A per-test, per-process scratch directory (tests in one binary run
/// concurrently, so the tag keeps them apart; the pid keeps processes
/// apart).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("bdlfi_ckpt_{}_{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn trained_mlp() -> (Sequential, Arc<Dataset>) {
    let mut rng = StdRng::seed_from_u64(910);
    let data = gaussian_blobs(200, 3, 0.6, &mut rng);
    let (train, test) = data.split(0.7, &mut rng);
    let mut model = mlp(2, &[16, 16], 3, &mut rng);
    let mut trainer = Trainer::new(
        Sgd::new(0.1).with_momentum(0.9),
        TrainConfig {
            epochs: 12,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
    (model, Arc::new(test))
}

fn campaign_cfg(seed: u64, chains: usize, samples: usize, workers: usize) -> CampaignConfig {
    CampaignConfig {
        chains,
        chain: ChainConfig {
            burn_in: 0,
            samples,
            thin: 1,
        },
        kernel: KernelChoice::Prior,
        seed,
        workers,
        ..CampaignConfig::default()
    }
}

fn mlp_fm(p: f64) -> FaultyModel {
    let (model, eval) = trained_mlp();
    FaultyModel::new(
        model,
        eval,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(p)),
    )
}

fn assert_reports_identical(a: &CampaignReport, b: &CampaignReport, what: &str) {
    assert_eq!(a.traces, b.traces, "{what}: traces differ");
    assert_eq!(
        a.acceptance_rates, b.acceptance_rates,
        "{what}: acceptance rates differ"
    );
    assert_eq!(a.mean_error, b.mean_error, "{what}: mean error differs");
    assert_eq!(a.mean_flips, b.mean_flips, "{what}: mean flips differ");
    assert_eq!(a.summary, b.summary, "{what}: summaries differ");
    assert_eq!(
        a.golden_error, b.golden_error,
        "{what}: golden error differs"
    );
}

fn assert_interrupted(err: EngineError, watermark: usize, what: &str) {
    match err {
        EngineError::Interrupted { completed, .. } => {
            assert_eq!(completed, watermark, "{what}: wrong watermark");
        }
        other => panic!("{what}: expected Interrupted, got {other}"),
    }
}

#[test]
fn campaign_resumes_bit_identically() {
    let fm = mlp_fm(1e-3);
    let reference = run_campaign(&fm, &campaign_cfg(41, 4, 30, 1));
    let scratch = Scratch::new("campaign");
    for workers in worker_counts() {
        let what = format!("campaign @{workers}");
        let cfg = campaign_cfg(41, 4, 30, workers);
        let spec = CheckpointSpec::new(scratch.path(&format!("w{workers}.ckpt")), String::new());
        let err = run_campaign_controlled(&fm, &cfg, &RunControl::stop_after(2), Some(&spec))
            .unwrap_err();
        assert_interrupted(err, 2, &what);
        let resumed =
            run_campaign_controlled(&fm, &cfg, &RunControl::new(), Some(&spec.resuming()))
                .unwrap_or_else(|e| panic!("{what}: resume failed: {e}"));
        assert_reports_identical(&reference, &resumed, &what);
        assert_eq!(resumed.run_meta.resumed_from, Some(2), "{what}");
    }
}

#[test]
fn adaptive_campaign_resumes_bit_identically() {
    let fm = mlp_fm(1e-3);
    // Segments of 15 samples, budget 60 → up to 4 segments; the loose
    // default criteria will not certify early at these sizes.
    let cfg_for = |workers| campaign_cfg(42, 2, 15, workers);
    let reference = run_campaign_adaptive(&fm, &cfg_for(1), 60);
    let scratch = Scratch::new("adaptive");
    for workers in worker_counts() {
        let what = format!("adaptive campaign @{workers}");
        let cfg = cfg_for(workers);
        let spec = CheckpointSpec::new(scratch.path(&format!("w{workers}.ckpt")), String::new());
        // stop_after counts completed *segments* for the adaptive driver.
        let err = run_campaign_adaptive_controlled(
            &fm,
            &cfg,
            60,
            &RunControl::stop_after(2),
            Some(&spec),
        )
        .unwrap_err();
        assert_interrupted(err, 2, &what);
        let resumed = run_campaign_adaptive_controlled(
            &fm,
            &cfg,
            60,
            &RunControl::new(),
            Some(&spec.resuming()),
        )
        .unwrap_or_else(|e| panic!("{what}: resume failed: {e}"));
        assert_reports_identical(&reference, &resumed, &what);
        assert!(resumed.run_meta.resumed_from.is_some(), "{what}");
    }
}

#[test]
fn sweep_resumes_bit_identically() {
    let (model, eval) = trained_mlp();
    let ps = [1e-4, 1e-3, 1e-2];
    let reference = run_sweep(
        &model,
        &eval,
        &SiteSpec::AllParams,
        &ps,
        &campaign_cfg(43, 2, 20, 1),
    );
    let scratch = Scratch::new("sweep");
    for workers in worker_counts() {
        let what = format!("sweep @{workers}");
        let cfg = campaign_cfg(43, 2, 20, workers);
        let spec = CheckpointSpec::new(scratch.path(&format!("w{workers}.ckpt")), String::new());
        let err = run_sweep_controlled(
            &model,
            &eval,
            &SiteSpec::AllParams,
            &ps,
            &cfg,
            &RunControl::stop_after(1),
            Some(&spec),
        )
        .unwrap_err();
        assert_interrupted(err, 1, &what);
        let resumed = run_sweep_controlled(
            &model,
            &eval,
            &SiteSpec::AllParams,
            &ps,
            &cfg,
            &RunControl::new(),
            Some(&spec.resuming()),
        )
        .unwrap_or_else(|e| panic!("{what}: resume failed: {e}"));
        assert_eq!(resumed.golden_error, reference.golden_error, "{what}");
        assert_eq!(resumed.points.len(), reference.points.len(), "{what}");
        for (a, b) in reference.points.iter().zip(&resumed.points) {
            assert_eq!(a.p, b.p, "{what}");
            assert_reports_identical(&a.report, &b.report, &format!("{what} p={}", a.p));
        }
    }
}

#[test]
fn layerwise_resumes_bit_identically() {
    let (model, eval) = trained_mlp();
    let layers = ["fc1", "fc2", "fc3"];
    let budget = LayerBudget::ExpectedFlips(2.0);
    let reference = run_layerwise(&model, &eval, &layers, budget, &campaign_cfg(44, 2, 20, 1));
    let scratch = Scratch::new("layerwise");
    for workers in worker_counts() {
        let what = format!("layerwise @{workers}");
        let cfg = campaign_cfg(44, 2, 20, workers);
        let spec = CheckpointSpec::new(scratch.path(&format!("w{workers}.ckpt")), String::new());
        let err = run_layerwise_controlled(
            &model,
            &eval,
            &layers,
            budget,
            &cfg,
            &RunControl::stop_after(2),
            Some(&spec),
        )
        .unwrap_err();
        assert_interrupted(err, 2, &what);
        let resumed = run_layerwise_controlled(
            &model,
            &eval,
            &layers,
            budget,
            &cfg,
            &RunControl::new(),
            Some(&spec.resuming()),
        )
        .unwrap_or_else(|e| panic!("{what}: resume failed: {e}"));
        assert_eq!(
            resumed.depth_correlation.to_bits(),
            reference.depth_correlation.to_bits(),
            "{what}"
        );
        for (a, b) in reference.layers.iter().zip(&resumed.layers) {
            assert_eq!(a.p, b.p, "{what}");
            assert_reports_identical(&a.report, &b.report, &format!("{what} {}", a.layer));
        }
    }
}

#[test]
fn boundary_map_resumes_bit_identically() {
    let (model, _eval) = trained_mlp();
    let cfg_for = |workers| BoundaryConfig {
        resolution: 10,
        fault_samples: 40,
        seed: 45,
        workers,
        ..BoundaryConfig::default()
    };
    let fault_model = Arc::new(BernoulliBitFlip::new(1e-3));
    let reference = boundary_map(
        &model,
        &SiteSpec::AllParams,
        fault_model.clone(),
        &cfg_for(1),
    );
    let scratch = Scratch::new("boundary");
    for workers in worker_counts() {
        let what = format!("boundary map @{workers}");
        let cfg = cfg_for(workers);
        let spec = CheckpointSpec::new(scratch.path(&format!("w{workers}.ckpt")), String::new());
        let err = boundary_map_controlled(
            &model,
            &SiteSpec::AllParams,
            fault_model.clone(),
            &cfg,
            &RunControl::stop_after(17),
            Some(&spec),
        )
        .unwrap_err();
        assert_interrupted(err, 17, &what);
        let resumed = boundary_map_controlled(
            &model,
            &SiteSpec::AllParams,
            fault_model.clone(),
            &cfg,
            &RunControl::new(),
            Some(&spec.resuming()),
        )
        .unwrap_or_else(|e| panic!("{what}: resume failed: {e}"));
        assert_eq!(resumed.error_prob, reference.error_prob, "{what}");
        assert_eq!(resumed.golden_pred, reference.golden_pred, "{what}");
        assert_eq!(
            resumed.margin_correlation, reference.margin_correlation,
            "{what}"
        );
        assert_eq!(resumed.run_meta.resumed_from, Some(17), "{what}");
    }
}

#[test]
fn protection_study_resumes_through_the_boundary_journal() {
    let (model, _eval) = trained_mlp();
    let cfg = BoundaryConfig {
        resolution: 8,
        fault_samples: 24,
        seed: 46,
        workers: 1,
        ..BoundaryConfig::default()
    };
    let fault_model = Arc::new(BernoulliBitFlip::new(2e-3));
    let reference =
        run_protection_study(&model, &SiteSpec::AllParams, fault_model.clone(), &cfg, 0.9);
    let scratch = Scratch::new("protection");
    let spec = CheckpointSpec::new(scratch.path("study.ckpt"), String::new());
    let err = run_protection_study_controlled(
        &model,
        &SiteSpec::AllParams,
        fault_model.clone(),
        &cfg,
        0.9,
        &RunControl::stop_after(9),
        Some(&spec),
    )
    .unwrap_err();
    assert_interrupted(err, 9, "protection study");
    let resumed = run_protection_study_controlled(
        &model,
        &SiteSpec::AllParams,
        fault_model,
        &cfg,
        0.9,
        &RunControl::new(),
        Some(&spec.resuming()),
    )
    .expect("protection study resume");
    assert_eq!(resumed.map.error_prob, reference.map.error_prob);
    assert_eq!(resumed.plan, reference.plan);
}

#[test]
fn random_fi_resumes_bit_identically() {
    let (model, eval) = trained_mlp();
    let fi = RandomFi::new(model, eval, &SiteSpec::AllParams);
    let cfg_for = |workers| RandomFiConfig {
        injections: 50,
        seed: 47,
        level: 0.95,
        workers,
    };
    let reference = fi.run(&cfg_for(1));
    let scratch = Scratch::new("random_fi");
    for workers in worker_counts() {
        let what = format!("random FI @{workers}");
        let cfg = cfg_for(workers);
        let spec = CheckpointSpec::new(scratch.path(&format!("w{workers}.ckpt")), String::new());
        let err = fi
            .run_controlled(&cfg, &RunControl::stop_after(23), Some(&spec))
            .unwrap_err();
        assert_interrupted(err, 23, &what);
        let resumed = fi
            .run_controlled(&cfg, &RunControl::new(), Some(&spec.resuming()))
            .unwrap_or_else(|e| panic!("{what}: resume failed: {e}"));
        assert_eq!(resumed.errors, reference.errors, "{what}");
        assert_eq!(resumed.sdc.successes, reference.sdc.successes, "{what}");
        assert_eq!(resumed.mean_error, reference.mean_error, "{what}");
        assert_eq!(resumed.run_meta.resumed_from, Some(23), "{what}");
    }
}

#[test]
fn exhaustive_fi_resumes_bit_identically() {
    let mut rng = StdRng::seed_from_u64(912);
    let data = gaussian_blobs(80, 2, 0.7, &mut rng);
    let model = mlp(2, &[4], 2, &mut rng);
    let eval = Arc::new(data);
    let spec_sites = SiteSpec::LayerParams {
        prefix: "fc2".into(),
    };
    let reference = run_exhaustive_with(&model, &eval, &spec_sites, 1);
    let scratch = Scratch::new("exhaustive");
    for workers in worker_counts() {
        let what = format!("exhaustive FI @{workers}");
        let spec = CheckpointSpec::new(scratch.path(&format!("w{workers}.ckpt")), String::new());
        let err = run_exhaustive_controlled(
            &model,
            &eval,
            &spec_sites,
            workers,
            &RunControl::stop_after(101),
            Some(&spec),
        )
        .unwrap_err();
        assert_interrupted(err, 101, &what);
        let resumed = run_exhaustive_controlled(
            &model,
            &eval,
            &spec_sites,
            workers,
            &RunControl::new(),
            Some(&spec.resuming()),
        )
        .unwrap_or_else(|e| panic!("{what}: resume failed: {e}"));
        assert_eq!(resumed.injections, reference.injections, "{what}");
        assert_eq!(resumed.sdc.successes, reference.sdc.successes, "{what}");
        assert_eq!(resumed.mean_error, reference.mean_error, "{what}");
        for (a, b) in reference.by_bit.iter().zip(&resumed.by_bit) {
            assert_eq!(a.sdc, b.sdc, "{what} bit {}", a.bit);
        }
        assert_eq!(resumed.run_meta.resumed_from, Some(101), "{what}");
    }
}

#[test]
fn layer_fi_study_resumes_bit_identically() {
    let (model, eval) = trained_mlp();
    let layers = ["fc1", "fc2", "fc3"];
    let cfg_for = |workers| RandomFiConfig {
        injections: 15,
        seed: 48,
        level: 0.95,
        workers,
    };
    let reference = run_layer_fi(&model, &eval, &layers, &cfg_for(1));
    let scratch = Scratch::new("layer_fi");
    for workers in worker_counts() {
        let what = format!("layer FI @{workers}");
        let cfg = cfg_for(workers);
        let spec = CheckpointSpec::new(scratch.path(&format!("w{workers}.ckpt")), String::new());
        let err = run_layer_fi_controlled(
            &model,
            &eval,
            &layers,
            &cfg,
            &RunControl::stop_after(1),
            Some(&spec),
        )
        .unwrap_err();
        assert_interrupted(err, 1, &what);
        let resumed = run_layer_fi_controlled(
            &model,
            &eval,
            &layers,
            &cfg,
            &RunControl::new(),
            Some(&spec.resuming()),
        )
        .unwrap_or_else(|e| panic!("{what}: resume failed: {e}"));
        assert_eq!(
            resumed.depth_correlation.to_bits(),
            reference.depth_correlation.to_bits(),
            "{what}"
        );
        for (a, b) in reference.layers.iter().zip(&resumed.layers) {
            assert_eq!(a.result.errors, b.result.errors, "{what} {}", a.layer);
        }
    }
}

// ---------------------------------------------------------------------------
// Typed-error surface of the journal reader.
// ---------------------------------------------------------------------------

/// Interrupt a random-FI campaign to get a valid journal on disk.
fn interrupted_journal(
    scratch: &Scratch,
    name: &str,
) -> (RandomFi, RandomFiConfig, CheckpointSpec) {
    let (model, eval) = trained_mlp();
    let fi = RandomFi::new(model, eval, &SiteSpec::AllParams);
    let cfg = RandomFiConfig {
        injections: 20,
        seed: 49,
        level: 0.95,
        workers: 1,
    };
    let spec = CheckpointSpec::new(scratch.path(name), String::new());
    let err = fi
        .run_controlled(&cfg, &RunControl::stop_after(7), Some(&spec))
        .unwrap_err();
    assert_interrupted(err, 7, "journal fixture");
    (fi, cfg, spec)
}

#[test]
fn torn_final_journal_line_is_truncated_and_resumed() {
    // A kill mid-append leaves the final line unterminated. That is the
    // expected crash artifact, not corruption: the reader truncates the
    // torn tail, surfaces `truncated_tail`, and the resume recomputes the
    // lost task — producing a report bit-identical to an uninterrupted run.
    let scratch = Scratch::new("truncated");
    let (fi, cfg, spec) = interrupted_journal(&scratch, "torn.ckpt");
    let reference = fi.run(&cfg);
    // Tear the last journal line mid-record, as a crash mid-write would.
    let contents = std::fs::read_to_string(&spec.path).unwrap();
    let torn = &contents[..contents.trim_end().len() - 5];
    std::fs::write(&spec.path, torn).unwrap();

    let resumed = fi
        .run_controlled(&cfg, &RunControl::new(), Some(&spec.resuming()))
        .expect("torn final line must resume, not error");
    assert_eq!(resumed.errors, reference.errors);
    assert_eq!(resumed.sdc.successes, reference.sdc.successes);
    assert_eq!(resumed.mean_error, reference.mean_error);
    assert!(
        resumed.run_meta.truncated_tail,
        "tail truncation not surfaced"
    );
    // 7 entries were journaled; the torn 7th was dropped, 6 replayed.
    assert_eq!(resumed.run_meta.resumed_from, Some(6));
}

#[test]
fn interior_torn_journal_line_is_a_typed_corruption_error() {
    // Only the *final* line can be a crash artifact. A short line with
    // complete lines after it cannot come from a kill mid-append — that
    // is real corruption and must stay a typed error.
    let scratch = Scratch::new("interior");
    let (fi, cfg, spec) = interrupted_journal(&scratch, "interior.ckpt");
    let contents = std::fs::read_to_string(&spec.path).unwrap();
    let mut lines: Vec<&str> = contents.lines().collect();
    let damaged = &lines[3][..lines[3].len() - 4];
    lines[3] = damaged;
    std::fs::write(&spec.path, lines.join("\n") + "\n").unwrap();

    let err = fi
        .run_controlled(&cfg, &RunControl::new(), Some(&spec.resuming()))
        .unwrap_err();
    match err {
        EngineError::Checkpoint(CheckpointError::Corrupt { line, .. }) => {
            assert_eq!(line, 4, "corruption should be pinned to the damaged line");
        }
        other => panic!("expected Checkpoint(Corrupt), got {other}"),
    }
}

#[test]
fn fingerprint_mismatch_is_a_typed_error() {
    let scratch = Scratch::new("mismatch");
    let (fi, cfg, spec) = interrupted_journal(&scratch, "fp.ckpt");
    // Resuming under a different configuration must be refused: the
    // journal's fingerprint no longer matches.
    let other_cfg = RandomFiConfig {
        seed: cfg.seed + 1,
        ..cfg
    };
    let err = fi
        .run_controlled(&other_cfg, &RunControl::new(), Some(&spec.resuming()))
        .unwrap_err();
    match err {
        EngineError::Checkpoint(CheckpointError::Mismatch { field, .. }) => {
            assert_eq!(field, "fingerprint");
        }
        other => panic!("expected Checkpoint(Mismatch), got {other}"),
    }
}

#[test]
fn resuming_a_complete_journal_is_a_typed_error() {
    let scratch = Scratch::new("complete");
    let (fi, cfg, spec) = interrupted_journal(&scratch, "done.ckpt");
    // Finish the campaign, then try to resume again.
    fi.run_controlled(&cfg, &RunControl::new(), Some(&spec.clone().resuming()))
        .expect("resume to completion");
    let err = fi
        .run_controlled(&cfg, &RunControl::new(), Some(&spec.resuming()))
        .unwrap_err();
    match err {
        EngineError::Checkpoint(CheckpointError::AlreadyComplete { tasks }) => {
            assert_eq!(tasks, cfg.injections);
        }
        other => panic!("expected Checkpoint(AlreadyComplete), got {other}"),
    }
}

#[test]
fn fresh_journal_ignores_stale_file_from_other_config() {
    // A non-resuming CheckpointSpec must overwrite whatever is at the
    // path, even a journal from a different campaign.
    let scratch = Scratch::new("overwrite");
    let (fi, _cfg, spec) = interrupted_journal(&scratch, "stale.ckpt");
    let cfg = RandomFiConfig {
        injections: 9,
        seed: 50,
        level: 0.95,
        workers: 1,
    };
    let fresh = CheckpointSpec::new(spec.path.clone(), String::new());
    let res = fi
        .run_controlled(&cfg, &RunControl::new(), Some(&fresh))
        .expect("fresh run over stale journal");
    assert_eq!(res.injections, 9);
    assert_eq!(res.run_meta.resumed_from, None);
}
