//! End-to-end integration: train the paper's MLP, run BDLFI campaigns,
//! sweeps and boundary analyses across the whole crate stack, and check
//! the paper's three findings hold qualitatively.

use bdlfi_suite::bayes::ChainConfig;
use bdlfi_suite::core::{
    boundary_map, log_spaced_probabilities, run_campaign, run_sweep, BoundaryConfig,
    CampaignConfig, FaultyModel, KernelChoice,
};
use bdlfi_suite::data::{gaussian_blobs, Dataset};
use bdlfi_suite::faults::{BernoulliBitFlip, SiteSpec};
use bdlfi_suite::nn::{evaluate, mlp, optim::Sgd, Sequential, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn trained_mlp() -> (Sequential, Arc<Dataset>) {
    let mut rng = StdRng::seed_from_u64(100);
    let data = gaussian_blobs(600, 3, 1.1, &mut rng);
    let (train, test) = data.split(0.75, &mut rng);
    let mut model = mlp(2, &[32], 3, &mut rng);
    let mut trainer = Trainer::new(
        Sgd::new(0.1).with_momentum(0.9),
        TrainConfig {
            epochs: 30,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
    let acc = evaluate(&mut model, test.inputs(), test.labels(), 64);
    assert!(acc > 0.85, "golden accuracy too low: {acc}");
    (model, Arc::new(test))
}

fn quick_campaign() -> CampaignConfig {
    CampaignConfig {
        chains: 2,
        chain: ChainConfig {
            burn_in: 0,
            samples: 60,
            thin: 1,
        },
        kernel: KernelChoice::Prior,
        seed: 7,
        ..CampaignConfig::default()
    }
}

#[test]
fn campaign_distribution_is_coherent() {
    let (model, test) = trained_mlp();
    let fm = FaultyModel::new(
        model,
        test,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(2e-3)),
    );
    let report = run_campaign(&fm, &quick_campaign());

    // Distribution bounds and ordering.
    assert!(report.summary.min >= 0.0 && report.summary.max <= 1.0);
    assert!(report.summary.q05 <= report.summary.median);
    assert!(report.summary.median <= report.summary.q95);
    // Faults cannot reduce the long-run mean below zero excess by much.
    assert!(report.mean_error >= report.golden_error - 0.05);
    // The prior kernel accepts everything.
    assert!(report
        .acceptance_rates
        .iter()
        .all(|&a| (a - 1.0).abs() < 1e-12));
    // Completeness diagnostics are populated.
    assert!(report.completeness.rhat.is_finite());
    assert!(report.completeness.ess > 0.0);
}

#[test]
fn finding_two_regimes_in_flip_probability() {
    // Paper Fig. 2: flat regime at small p, steep regime at large p.
    let (model, test) = trained_mlp();
    let ps = log_spaced_probabilities(1e-6, 1e-1, 6);
    let sweep = run_sweep(&model, &test, &SiteSpec::AllParams, &ps, &quick_campaign());

    let errs: Vec<f64> = sweep.points.iter().map(|pt| pt.report.mean_error).collect();
    // Flat start: within 2 percentage points of golden.
    assert!(
        (errs[0] - sweep.golden_error).abs() < 0.02,
        "low-p {}",
        errs[0]
    );
    // Steep end: at least 15 points above golden.
    assert!(errs[5] > sweep.golden_error + 0.15, "high-p {}", errs[5]);
    // Knee exists and separates slopes.
    let knee = sweep.knee().expect("knee analysis");
    assert!(knee.fit.right_slope > knee.fit.left_slope + 0.01);
}

#[test]
fn finding_errors_concentrate_at_boundary() {
    // Paper Fig. 1 (3).
    let (model, _test) = trained_mlp();
    let map = boundary_map(
        &model,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(2e-3)),
        &BoundaryConfig {
            resolution: 20,
            fault_samples: 400,
            seed: 1,
            ..BoundaryConfig::default()
        },
    );
    let (near, far) = map.near_far_split();
    assert!(near > far, "near {near} <= far {far}");
    assert!(
        map.margin_correlation < -0.2,
        "corr {}",
        map.margin_correlation
    );
}

#[test]
fn campaign_with_more_samples_certifies_with_smaller_mcse() {
    let (model, test) = trained_mlp();
    let fm = FaultyModel::new(
        model,
        test,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(2e-3)),
    );
    let mut small = quick_campaign();
    small.chain.samples = 30;
    let mut large = quick_campaign();
    large.chain.samples = 300;
    let rs = run_campaign(&fm, &small);
    let rl = run_campaign(&fm, &large);
    assert!(rl.completeness.mcse < rs.completeness.mcse);
    assert!(rl.completeness.ess > rs.completeness.ess);
}

#[test]
fn site_scoping_restricts_damage() {
    // Faults confined to one small layer hurt no more than faults
    // everywhere at the same per-bit rate.
    let (model, test) = trained_mlp();
    let p = 5e-3;
    let all = FaultyModel::new(
        model.clone(),
        Arc::clone(&test),
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(p)),
    );
    let one = FaultyModel::new(
        model,
        test,
        &SiteSpec::LayerParams {
            prefix: "fc2".into(),
        },
        Arc::new(BernoulliBitFlip::new(p)),
    );
    let ra = run_campaign(&all, &quick_campaign());
    let ro = run_campaign(&one, &quick_campaign());
    assert!(
        ra.mean_error >= ro.mean_error - 0.03,
        "all-sites {} vs one-layer {}",
        ra.mean_error,
        ro.mean_error
    );
    // And the exposed element counts differ accordingly.
    assert!(all.sites().total_param_elements() > one.sites().total_param_elements());
}
