//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary fault configurations, probabilities and network inputs.

use bdlfi_suite::bayes::BetaBernoulli;
use bdlfi_suite::faults::bits::{flip_bit_u32, flip_bit_u8};
use bdlfi_suite::faults::{
    BernoulliBitFlip, BitRange, FaultConfig, FaultModel, ParamSite, Repr, SiteSpec,
};
use bdlfi_suite::nn::{mlp, Sequential};
use bdlfi_suite::quant::{dequant_acc, requant_rows_into, QParams, Requant};
use bdlfi_suite::tensor::kernels::qgemm_i8::qgemm_i8_with;
use bdlfi_suite::tensor::kernels::Variant;
use bdlfi_suite::tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn model(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    mlp(3, &[6], 2, &mut rng)
}

/// The naive row-major i32 triple loop — the oracle every qgemm
/// micro-kernel variant must reproduce exactly (accumulating into `c`).
fn qgemm_naive(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for p in 0..k {
                acc += i32::from(a[i * k + p]) * i32::from(b[p * n + j]);
            }
            c[i * n + j] += acc;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Injection followed by re-injection is the identity on the weight
    /// bits, for any flip probability and seed.
    #[test]
    fn apply_is_involution_for_any_p(p in 0.0f64..0.5, seed in 0u64..1000) {
        let mut m = model(seed);
        let sites = bdlfi_suite::faults::resolve_sites(&m, &SiteSpec::AllParams);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = FaultConfig::sample(&sites.params, &BernoulliBitFlip::new(p), &mut rng);

        let before = bdlfi_suite::nn::serialize::export_weights(&m);
        cfg.apply(&mut m);
        cfg.apply(&mut m);
        let after = bdlfi_suite::nn::serialize::export_weights(&m);
        for (path, t) in &before.params {
            let a: Vec<u32> = t.data().iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = after.params[path].data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(a, b);
        }
    }

    /// The joint prior log-probability is monotone in the flip count:
    /// removing a flip (at p < 0.5) can only raise the probability.
    #[test]
    fn prior_prefers_fewer_flips(p in 1e-6f64..0.49, seed in 0u64..1000) {
        let sites = vec![ParamSite::new("w", 4)];
        let fm = BernoulliBitFlip::new(p);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = FaultConfig::sample(&sites, &fm, &mut rng);
        prop_assume!(!cfg.is_clean());

        let lp_faulty = cfg.log_prob(&sites, &fm).unwrap();
        let lp_clean = FaultConfig::clean().log_prob(&sites, &fm).unwrap();
        prop_assert!(lp_clean > lp_faulty);
        // And the gap is exactly flips * ln((1-p)/p).
        let expected = cfg.total_flips() as f64 * ((1.0 - p).ln() - p.ln());
        prop_assert!((lp_clean - lp_faulty - expected).abs() < 1e-6);
    }

    /// Forward inference never panics and produces the right shape under
    /// arbitrary weight corruption (NaN/inf logits included).
    #[test]
    fn corrupted_inference_is_total(p in 0.0f64..0.3, seed in 0u64..500) {
        let mut m = model(seed);
        let sites = bdlfi_suite::faults::resolve_sites(&m, &SiteSpec::AllParams);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let cfg = FaultConfig::sample(&sites.params, &BernoulliBitFlip::new(p), &mut rng);
        let x = Tensor::rand_normal([5, 3], 0.0, 1.0, &mut rng);

        let logits = cfg.with_applied(&mut m, |m| m.predict(&x));
        prop_assert_eq!(logits.dims(), &[5, 2]);
        // Softmax sanitisation keeps probabilities usable even when logits
        // are non-finite.
        let probs = logits.softmax_rows();
        for i in 0..5 {
            let s: f32 = probs.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(probs.row(i).iter().all(|v| v.is_finite()));
        }
    }

    /// Beta–Bernoulli credible intervals are ordered, inside [0, 1], and
    /// contain the posterior mean.
    #[test]
    fn credible_intervals_are_coherent(s in 0u64..200, extra in 1u64..200) {
        let t = s + extra;
        let bb = BetaBernoulli::jeffreys().update(s, t);
        let (lo, hi) = bb.credible_interval(0.9);
        prop_assert!(0.0 <= lo && lo < hi && hi <= 1.0);
        let mean = bb.mean();
        prop_assert!(lo <= mean && mean <= hi);
    }

    /// Expected flip counts scale linearly with tensor size.
    #[test]
    fn expected_flips_scale_linearly(p in 1e-6f64..0.1, len in 1usize..10_000) {
        let fm = BernoulliBitFlip::new(p);
        let single = fm.expected_flips(1);
        prop_assert!((fm.expected_flips(len) - single * len as f64).abs() < 1e-6);
    }

    // -----------------------------------------------------------------------
    // Quantization invariants.
    // -----------------------------------------------------------------------

    /// Quantize→dequantize round-trips any value inside the calibrated
    /// range to within half a quantization step.
    #[test]
    fn quantize_round_trip_within_half_step(
        lo in -100.0f32..-1e-2,
        hi in 1e-2f32..100.0,
        frac in 0.0f32..1.0,
    ) {
        let qp = QParams::from_range(lo, hi);
        let x = lo + frac * (hi - lo);
        let rt = qp.dequantize(qp.quantize(x));
        // Half a step, with slack for the f32 arithmetic of the scale
        // itself (round-to-nearest lands exactly on the boundary).
        let tol = 0.5 * qp.scale as f64 * (1.0 + 1e-4) + 1e-6;
        prop_assert!(
            ((rt - x) as f64).abs() <= tol,
            "x={x} rt={rt} scale={}", qp.scale
        );
    }

    /// The Q31 fixed-point requantizer agrees with the exact f64 reference
    /// `round(acc * m)` to within one integer ULP of the output grid.
    #[test]
    fn requant_fixed_point_matches_f64_within_one_ulp(
        m in 1e-6f64..1.0,
        acc in -(1i64 << 24)..(1i64 << 24),
    ) {
        let rq = Requant::from_multiplier(m);
        prop_assume!(matches!(rq, Requant::Fixed { .. }));
        let exact = (acc as f64 * m).round() as i64;
        let fixed = rq.apply(acc) as i64;
        prop_assert!(
            (fixed - exact).abs() <= 1,
            "acc={acc} m={m}: fixed {fixed} vs exact {exact}"
        );
    }

    /// Bit flips in integer storage are involutions, exactly as in f32:
    /// re-flipping restores the original word, for every in-width bit.
    #[test]
    fn integer_bit_flips_are_involutions(word in 0u32..u32::MAX, bit in 0u8..32) {
        let x32 = word as i32;
        prop_assert_eq!(flip_bit_u32(flip_bit_u32(x32, bit), bit), x32);
        prop_assert_ne!(flip_bit_u32(x32, bit), x32);
        if bit < 8 {
            let x8 = word as u8 as i8;
            prop_assert_eq!(flip_bit_u8(flip_bit_u8(x8, bit), bit), x8);
            prop_assert_ne!(flip_bit_u8(x8, bit), x8);
        }
    }

    // -----------------------------------------------------------------------
    // Kernel-selector invariants.
    // -----------------------------------------------------------------------

    /// Every qgemm micro-kernel variant computes exactly the naive i32
    /// triple loop, over random shapes spanning k = 1, MR/NR remainder
    /// tiles and multiple KC blocks — integer GEMM admits no tolerance.
    #[test]
    fn qgemm_variants_match_naive_reference(
        m in 1usize..18,
        n in 1usize..40,
        k in 1usize..300,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<i8> = (0..m * k).map(|_| rng.random_range(-128i32..=127) as i8).collect();
        let b: Vec<i8> = (0..k * n).map(|_| rng.random_range(-128i32..=127) as i8).collect();
        let init: Vec<i32> = (0..m * n).map(|_| rng.random_range(-1000i32..1000)).collect();
        let mut want = init.clone();
        qgemm_naive(m, n, k, &a, &b, &mut want);
        for variant in [Variant::Scalar, Variant::Autovec, Variant::Avx2] {
            let mut c = init.clone();
            qgemm_i8_with(variant, m, n, k, &a, &b, &mut c);
            prop_assert!(c == want, "{:?} at ({m},{n},{k})", variant);
        }
    }

    /// Saturation-stressing operands — every element drawn from
    /// {-128, -127, 127} — drive each maddubs i16 lane to its extreme
    /// |a'·b| = 32640 and the i32 accumulator to its K_MAX envelope; the
    /// SIMD variants must still be exact, not merely close.
    #[test]
    fn qgemm_extreme_operands_stay_exact(
        m in 1usize..9,
        n in 1usize..34,
        k in 1usize..600,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        const EXTREMES: [i8; 3] = [-128, -127, 127];
        let a: Vec<i8> = (0..m * k).map(|_| EXTREMES[rng.random_range(0..3usize)]).collect();
        let b: Vec<i8> = (0..k * n).map(|_| EXTREMES[rng.random_range(0..3usize)]).collect();
        let mut want = vec![0i32; m * n];
        qgemm_naive(m, n, k, &a, &b, &mut want);
        for variant in [Variant::Scalar, Variant::Autovec, Variant::Avx2] {
            let mut c = vec![0i32; m * n];
            qgemm_i8_with(variant, m, n, k, &a, &b, &mut c);
            prop_assert!(c == want, "{:?} at ({m},{n},{k})", variant);
        }
    }

    /// Per-channel requantization: multipliers built from per-channel
    /// weight scales stay within the same 1-ULP bound as the per-tensor
    /// Q31 path, and the batched row helper is bit-identical to the
    /// per-element chain it vectorizes.
    #[test]
    fn per_channel_requant_within_one_ulp_and_batch_exact(
        in_scale in 1e-4f32..1.0,
        out_scale in 1e-4f32..1.0,
        width in 1usize..12,
        rows in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w_scales: Vec<f32> =
            (0..width).map(|_| rng.random_range(1e-6f64..0.5) as f32).collect();
        let rqs: Vec<Requant> = w_scales
            .iter()
            .map(|&ws| Requant::from_scales(in_scale, ws, out_scale))
            .collect();
        let corrs: Vec<i64> =
            (0..width).map(|_| rng.random_range(-5000i64..5000)).collect();
        let acc: Vec<i32> =
            (0..rows * width).map(|_| rng.random_range(-100_000i32..100_000)).collect();
        let zp_out = rng.random_range(-128i32..=127);

        // 1-ULP bound against the exact f64 requantizer, per channel.
        for (r, &a) in acc.iter().enumerate() {
            let j = r % width;
            let corrected = a as i64 + corrs[j];
            let exact = (corrected as f64
                * (in_scale as f64 * w_scales[j] as f64 / out_scale as f64))
                .round() as i64;
            let got = rqs[j].apply(corrected) as i64;
            prop_assert!(
                (got - exact).abs() <= 1,
                "channel {j}: fixed {got} vs exact {exact}"
            );
        }

        // The batched helper is bit-identical to the per-element chain.
        let mut batched = Vec::new();
        requant_rows_into(&acc, width, &rqs, &corrs, zp_out, out_scale, &mut batched);
        let per_element: Vec<f32> = acc
            .iter()
            .enumerate()
            .map(|(r, &a)| {
                let j = r % width;
                dequant_acc(&rqs[j], a as i64 + corrs[j], zp_out, out_scale)
            })
            .collect();
        let b_bits: Vec<u32> = batched.iter().map(|v| v.to_bits()).collect();
        let p_bits: Vec<u32> = per_element.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(b_bits, p_bits);
    }

    /// Clamping a bit range to a representation never widens it, and the
    /// full range for a representation has exactly its storage width.
    #[test]
    fn bit_ranges_clamp_within_repr(lo in 0u8..32, span in 1u8..32) {
        let hi = (lo + span).min(32);
        let range = BitRange::new(lo, hi);
        for repr in [Repr::F32, Repr::I8, Repr::I32Accum] {
            prop_assert_eq!(BitRange::all_for(repr).len(), repr.width());
            if lo >= repr.width() {
                // Empty intersection: clamp_to panics by contract.
                continue;
            }
            let clamped = range.clamp_to(repr);
            prop_assert!(clamped.len() <= range.len());
            for i in 0..clamped.len() {
                let bit = clamped.nth(i);
                prop_assert!(bit < repr.width(), "bit {bit} outside {repr:?}");
                prop_assert!(range.contains(bit));
            }
        }
    }
}
