//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary fault configurations, probabilities and network inputs.

use bdlfi_suite::bayes::BetaBernoulli;
use bdlfi_suite::faults::bits::{flip_bit_u32, flip_bit_u8};
use bdlfi_suite::faults::{
    BernoulliBitFlip, BitRange, FaultConfig, FaultModel, ParamSite, Repr, SiteSpec,
};
use bdlfi_suite::nn::{mlp, Sequential};
use bdlfi_suite::quant::{QParams, Requant};
use bdlfi_suite::tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    mlp(3, &[6], 2, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Injection followed by re-injection is the identity on the weight
    /// bits, for any flip probability and seed.
    #[test]
    fn apply_is_involution_for_any_p(p in 0.0f64..0.5, seed in 0u64..1000) {
        let mut m = model(seed);
        let sites = bdlfi_suite::faults::resolve_sites(&m, &SiteSpec::AllParams);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = FaultConfig::sample(&sites.params, &BernoulliBitFlip::new(p), &mut rng);

        let before = bdlfi_suite::nn::serialize::export_weights(&m);
        cfg.apply(&mut m);
        cfg.apply(&mut m);
        let after = bdlfi_suite::nn::serialize::export_weights(&m);
        for (path, t) in &before.params {
            let a: Vec<u32> = t.data().iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = after.params[path].data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(a, b);
        }
    }

    /// The joint prior log-probability is monotone in the flip count:
    /// removing a flip (at p < 0.5) can only raise the probability.
    #[test]
    fn prior_prefers_fewer_flips(p in 1e-6f64..0.49, seed in 0u64..1000) {
        let sites = vec![ParamSite::new("w", 4)];
        let fm = BernoulliBitFlip::new(p);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = FaultConfig::sample(&sites, &fm, &mut rng);
        prop_assume!(!cfg.is_clean());

        let lp_faulty = cfg.log_prob(&sites, &fm).unwrap();
        let lp_clean = FaultConfig::clean().log_prob(&sites, &fm).unwrap();
        prop_assert!(lp_clean > lp_faulty);
        // And the gap is exactly flips * ln((1-p)/p).
        let expected = cfg.total_flips() as f64 * ((1.0 - p).ln() - p.ln());
        prop_assert!((lp_clean - lp_faulty - expected).abs() < 1e-6);
    }

    /// Forward inference never panics and produces the right shape under
    /// arbitrary weight corruption (NaN/inf logits included).
    #[test]
    fn corrupted_inference_is_total(p in 0.0f64..0.3, seed in 0u64..500) {
        let mut m = model(seed);
        let sites = bdlfi_suite::faults::resolve_sites(&m, &SiteSpec::AllParams);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let cfg = FaultConfig::sample(&sites.params, &BernoulliBitFlip::new(p), &mut rng);
        let x = Tensor::rand_normal([5, 3], 0.0, 1.0, &mut rng);

        let logits = cfg.with_applied(&mut m, |m| m.predict(&x));
        prop_assert_eq!(logits.dims(), &[5, 2]);
        // Softmax sanitisation keeps probabilities usable even when logits
        // are non-finite.
        let probs = logits.softmax_rows();
        for i in 0..5 {
            let s: f32 = probs.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(probs.row(i).iter().all(|v| v.is_finite()));
        }
    }

    /// Beta–Bernoulli credible intervals are ordered, inside [0, 1], and
    /// contain the posterior mean.
    #[test]
    fn credible_intervals_are_coherent(s in 0u64..200, extra in 1u64..200) {
        let t = s + extra;
        let bb = BetaBernoulli::jeffreys().update(s, t);
        let (lo, hi) = bb.credible_interval(0.9);
        prop_assert!(0.0 <= lo && lo < hi && hi <= 1.0);
        let mean = bb.mean();
        prop_assert!(lo <= mean && mean <= hi);
    }

    /// Expected flip counts scale linearly with tensor size.
    #[test]
    fn expected_flips_scale_linearly(p in 1e-6f64..0.1, len in 1usize..10_000) {
        let fm = BernoulliBitFlip::new(p);
        let single = fm.expected_flips(1);
        prop_assert!((fm.expected_flips(len) - single * len as f64).abs() < 1e-6);
    }

    // -----------------------------------------------------------------------
    // Quantization invariants.
    // -----------------------------------------------------------------------

    /// Quantize→dequantize round-trips any value inside the calibrated
    /// range to within half a quantization step.
    #[test]
    fn quantize_round_trip_within_half_step(
        lo in -100.0f32..-1e-2,
        hi in 1e-2f32..100.0,
        frac in 0.0f32..1.0,
    ) {
        let qp = QParams::from_range(lo, hi);
        let x = lo + frac * (hi - lo);
        let rt = qp.dequantize(qp.quantize(x));
        // Half a step, with slack for the f32 arithmetic of the scale
        // itself (round-to-nearest lands exactly on the boundary).
        let tol = 0.5 * qp.scale as f64 * (1.0 + 1e-4) + 1e-6;
        prop_assert!(
            ((rt - x) as f64).abs() <= tol,
            "x={x} rt={rt} scale={}", qp.scale
        );
    }

    /// The Q31 fixed-point requantizer agrees with the exact f64 reference
    /// `round(acc * m)` to within one integer ULP of the output grid.
    #[test]
    fn requant_fixed_point_matches_f64_within_one_ulp(
        m in 1e-6f64..1.0,
        acc in -(1i64 << 24)..(1i64 << 24),
    ) {
        let rq = Requant::from_multiplier(m);
        prop_assume!(matches!(rq, Requant::Fixed { .. }));
        let exact = (acc as f64 * m).round() as i64;
        let fixed = rq.apply(acc) as i64;
        prop_assert!(
            (fixed - exact).abs() <= 1,
            "acc={acc} m={m}: fixed {fixed} vs exact {exact}"
        );
    }

    /// Bit flips in integer storage are involutions, exactly as in f32:
    /// re-flipping restores the original word, for every in-width bit.
    #[test]
    fn integer_bit_flips_are_involutions(word in 0u32..u32::MAX, bit in 0u8..32) {
        let x32 = word as i32;
        prop_assert_eq!(flip_bit_u32(flip_bit_u32(x32, bit), bit), x32);
        prop_assert_ne!(flip_bit_u32(x32, bit), x32);
        if bit < 8 {
            let x8 = word as u8 as i8;
            prop_assert_eq!(flip_bit_u8(flip_bit_u8(x8, bit), bit), x8);
            prop_assert_ne!(flip_bit_u8(x8, bit), x8);
        }
    }

    /// Clamping a bit range to a representation never widens it, and the
    /// full range for a representation has exactly its storage width.
    #[test]
    fn bit_ranges_clamp_within_repr(lo in 0u8..32, span in 1u8..32) {
        let hi = (lo + span).min(32);
        let range = BitRange::new(lo, hi);
        for repr in [Repr::F32, Repr::I8, Repr::I32Accum] {
            prop_assert_eq!(BitRange::all_for(repr).len(), repr.width());
            if lo >= repr.width() {
                // Empty intersection: clamp_to panics by contract.
                continue;
            }
            let clamped = range.clamp_to(repr);
            prop_assert!(clamped.len() <= range.len());
            for i in 0..clamped.len() {
                let bit = clamped.nth(i);
                prop_assert!(bit < repr.width(), "bit {bit} outside {repr:?}");
                prop_assert!(range.contains(bit));
            }
        }
    }
}
