//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary fault configurations, probabilities and network inputs.

use bdlfi_suite::bayes::BetaBernoulli;
use bdlfi_suite::faults::{BernoulliBitFlip, FaultConfig, FaultModel, ParamSite, SiteSpec};
use bdlfi_suite::nn::{mlp, Sequential};
use bdlfi_suite::tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    mlp(3, &[6], 2, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Injection followed by re-injection is the identity on the weight
    /// bits, for any flip probability and seed.
    #[test]
    fn apply_is_involution_for_any_p(p in 0.0f64..0.5, seed in 0u64..1000) {
        let mut m = model(seed);
        let sites = bdlfi_suite::faults::resolve_sites(&m, &SiteSpec::AllParams);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = FaultConfig::sample(&sites.params, &BernoulliBitFlip::new(p), &mut rng);

        let before = bdlfi_suite::nn::serialize::export_weights(&m);
        cfg.apply(&mut m);
        cfg.apply(&mut m);
        let after = bdlfi_suite::nn::serialize::export_weights(&m);
        for (path, t) in &before.params {
            let a: Vec<u32> = t.data().iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = after.params[path].data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(a, b);
        }
    }

    /// The joint prior log-probability is monotone in the flip count:
    /// removing a flip (at p < 0.5) can only raise the probability.
    #[test]
    fn prior_prefers_fewer_flips(p in 1e-6f64..0.49, seed in 0u64..1000) {
        let sites = vec![ParamSite { path: "w".into(), len: 4 }];
        let fm = BernoulliBitFlip::new(p);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = FaultConfig::sample(&sites, &fm, &mut rng);
        prop_assume!(!cfg.is_clean());

        let lp_faulty = cfg.log_prob(&sites, &fm).unwrap();
        let lp_clean = FaultConfig::clean().log_prob(&sites, &fm).unwrap();
        prop_assert!(lp_clean > lp_faulty);
        // And the gap is exactly flips * ln((1-p)/p).
        let expected = cfg.total_flips() as f64 * ((1.0 - p).ln() - p.ln());
        prop_assert!((lp_clean - lp_faulty - expected).abs() < 1e-6);
    }

    /// Forward inference never panics and produces the right shape under
    /// arbitrary weight corruption (NaN/inf logits included).
    #[test]
    fn corrupted_inference_is_total(p in 0.0f64..0.3, seed in 0u64..500) {
        let mut m = model(seed);
        let sites = bdlfi_suite::faults::resolve_sites(&m, &SiteSpec::AllParams);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let cfg = FaultConfig::sample(&sites.params, &BernoulliBitFlip::new(p), &mut rng);
        let x = Tensor::rand_normal([5, 3], 0.0, 1.0, &mut rng);

        let logits = cfg.with_applied(&mut m, |m| m.predict(&x));
        prop_assert_eq!(logits.dims(), &[5, 2]);
        // Softmax sanitisation keeps probabilities usable even when logits
        // are non-finite.
        let probs = logits.softmax_rows();
        for i in 0..5 {
            let s: f32 = probs.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(probs.row(i).iter().all(|v| v.is_finite()));
        }
    }

    /// Beta–Bernoulli credible intervals are ordered, inside [0, 1], and
    /// contain the posterior mean.
    #[test]
    fn credible_intervals_are_coherent(s in 0u64..200, extra in 1u64..200) {
        let t = s + extra;
        let bb = BetaBernoulli::jeffreys().update(s, t);
        let (lo, hi) = bb.credible_interval(0.9);
        prop_assert!(0.0 <= lo && lo < hi && hi <= 1.0);
        let mean = bb.mean();
        prop_assert!(lo <= mean && mean <= hi);
    }

    /// Expected flip counts scale linearly with tensor size.
    #[test]
    fn expected_flips_scale_linearly(p in 1e-6f64..0.1, len in 1usize..10_000) {
        let fm = BernoulliBitFlip::new(p);
        let single = fm.expected_flips(1);
        prop_assert!((fm.expected_flips(len) - single * len as f64).abs() < 1e-6);
    }
}
