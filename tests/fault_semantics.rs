//! Paper-fidelity tests: the fused fault-injection hot path must agree
//! with the explicit Bayesian-network formalisation of the per-neuron
//! failure model (paper Fig. 1 ②), and the XOR fault semantics must hold
//! through the full model stack.

use bdlfi_suite::bayes::dist::Bernoulli;
use bdlfi_suite::bayes::graph::BayesNet;
use bdlfi_suite::core::FaultyModel;
use bdlfi_suite::data::Dataset;
use bdlfi_suite::faults::{
    bits::flip_bit, BernoulliBitFlip, BitRange, FaultConfig, FaultModel, SiteSpec,
};
use bdlfi_suite::nn::{layers::Dense, Sequential};
use bdlfi_suite::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A single-neuron "network": y = w * x (one dense weight, zero bias).
fn one_neuron(w: f32) -> Sequential {
    Sequential::new().with(
        "fc",
        Dense::from_weights(Tensor::from_vec(vec![w], [1, 1]), Tensor::zeros([1])),
    )
}

#[test]
fn fused_injection_matches_bayes_net_formalisation() {
    // Paper Fig. 1 (2): b ~ Bernoulli(p); W' = flip(W, sign) if b; y = W' x.
    // We restrict the fault model to the sign bit so the BayesNet has one
    // stochastic node, then compare the empirical output distribution of
    // the fused FaultyModel path against ancestral samples of the graph.
    let (w, x, p) = (2.0f32, 3.0f32, 0.3f64);

    // Explicit graph.
    let mut net = BayesNet::new();
    let b = net.add_stochastic("b", Bernoulli::new(p));
    let w_faulty = net.add_deterministic("w_faulty", vec![b], move |pv| {
        if pv[0] == 1.0 {
            f64::from(flip_bit(w, 31))
        } else {
            f64::from(w)
        }
    });
    let y = net.add_deterministic("y", vec![w_faulty], move |pv| pv[0] * f64::from(x));

    let mut rng = StdRng::seed_from_u64(0);
    let n = 20_000;
    let graph_mean: f64 = (0..n)
        .map(|_| {
            let s = net.sample(&mut rng);
            net.value(&s, y)
        })
        .sum::<f64>()
        / n as f64;

    // Fused path: sample FaultConfigs over the single weight restricted to
    // the sign bit, apply, run the network.
    let model = one_neuron(w);
    let data = Arc::new(Dataset::new(Tensor::from_vec(vec![x], [1, 1]), vec![0], 1));
    let fm = FaultyModel::new(
        model,
        data,
        &SiteSpec::Params(vec!["fc.weight".into()]),
        Arc::new(BernoulliBitFlip::with_bits(p, BitRange::sign())),
    );

    let mut model = one_neuron(w);
    let mut rng = StdRng::seed_from_u64(1);
    let fused_mean: f64 = (0..n)
        .map(|_| {
            let cfg = fm.sample_config(&mut rng);
            let out = cfg.with_applied(&mut model, |m| {
                m.predict(&Tensor::from_vec(vec![x], [1, 1]))
            });
            f64::from(out.data()[0])
        })
        .sum::<f64>()
        / n as f64;

    // E[y] = (1-p)*w*x + p*(-w*x) = (1-2p) w x = 0.4 * 6 = 2.4.
    let expected = (1.0 - 2.0 * p) * f64::from(w) * f64::from(x);
    assert!(
        (graph_mean - expected).abs() < 0.1,
        "graph mean {graph_mean}"
    );
    assert!(
        (fused_mean - expected).abs() < 0.1,
        "fused mean {fused_mean}"
    );
    assert!((graph_mean - fused_mean).abs() < 0.15);
}

#[test]
fn w_prime_is_elementwise_xor_of_w() {
    // Paper: W' = e (x) W with XOR semantics over the binary32 encoding.
    let mut rng = StdRng::seed_from_u64(2);
    let mut model = bdlfi_suite::nn::mlp(2, &[8], 2, &mut rng);
    let sites = bdlfi_suite::faults::resolve_sites(&model, &SiteSpec::AllParams);
    let cfg = FaultConfig::sample(&sites.params, &BernoulliBitFlip::new(0.05), &mut rng);

    let before = bdlfi_suite::nn::serialize::export_weights(&model);
    cfg.apply(&mut model);
    let after = bdlfi_suite::nn::serialize::export_weights(&model);

    // Every changed element differs by exactly the mask's XOR pattern.
    for (path, b) in &before.params {
        let a = &after.params[path];
        let mask = cfg.mask(path);
        let mut expected: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
        for &(idx, m) in mask.entries() {
            expected[idx] ^= m;
        }
        let actual: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(expected, actual, "XOR semantics violated at {path}");
    }
}

#[test]
fn no_assumption_on_number_of_flipped_bits() {
    // Paper: "We do not make any assumptions about the number of bits in
    // error; this is determined by p." At large p, multi-bit outcomes must
    // actually occur.
    let mut rng = StdRng::seed_from_u64(3);
    let model = one_neuron(1.0);
    let sites =
        bdlfi_suite::faults::resolve_sites(&model, &SiteSpec::Params(vec!["fc.weight".into()]));
    let fm = BernoulliBitFlip::new(0.2);
    let mut counts = std::collections::BTreeMap::new();
    for _ in 0..2000 {
        let cfg = FaultConfig::sample(&sites.params, &fm, &mut rng);
        *counts.entry(cfg.total_flips()).or_insert(0usize) += 1;
    }
    // 32 bits at p=0.2: expect ~6.4 flips; 0-flip and >=10-flip outcomes
    // both occur across 2000 draws, and the mode is multi-bit.
    assert!(
        counts.keys().any(|&k| k >= 10),
        "no heavy multi-bit outcomes: {counts:?}"
    );
    let mode = counts
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(&k, _)| k)
        .unwrap();
    assert!(mode >= 3, "mode {mode} should be multi-bit");
}

#[test]
fn transient_activation_faults_do_not_persist() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut model = bdlfi_suite::nn::mlp(2, &[8], 2, &mut rng);
    let x = Tensor::rand_normal([4, 2], 0.0, 1.0, &mut rng);
    let clean = model.predict(&x);

    // Corrupt activations heavily through a tap for one inference...
    let heavy = BernoulliBitFlip::new(0.2);
    let mut tap_rng = StdRng::seed_from_u64(5);
    let _ = model.predict_with_tap(&x, &mut |path, t| {
        if path == "fc1" {
            heavy.sample_mask(t.len(), &mut tap_rng).apply(t);
        }
    });

    // ...and the next plain inference is bit-identical to the first.
    let again = model.predict(&x);
    let a: Vec<u32> = clean.data().iter().map(|v| v.to_bits()).collect();
    let b: Vec<u32> = again.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(a, b);
}
