//! Convolutional pipeline integration: a reduced ResNet-18 on synth-CIFAR
//! through training, serialisation, BDLFI campaigns and the layer-by-layer
//! study. Sized for the test profile (narrow width, small images where the
//! topology allows).

use bdlfi_suite::bayes::ChainConfig;
use bdlfi_suite::core::{
    run_campaign, run_layerwise, CampaignConfig, FaultyModel, KernelChoice, LayerBudget,
};
use bdlfi_suite::data::{synth_cifar, Dataset, SynthCifarConfig};
use bdlfi_suite::faults::{BernoulliBitFlip, SiteSpec};
use bdlfi_suite::nn::{
    evaluate, optim::Sgd, resnet18, resnet18_layer_positions, serialize, ResNetConfig, Sequential,
    TrainConfig, Trainer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn tiny_resnet_and_data() -> (Sequential, Dataset, Dataset) {
    let mut rng = StdRng::seed_from_u64(300);
    let cfg = SynthCifarConfig {
        classes: 4,
        image_size: 16,
        noise: 0.3,
        phase_jitter: 0.5,
        label_noise: 0.0,
    };
    let data = synth_cifar(160, cfg, &mut rng);
    let (train, eval) = data.split(0.8, &mut rng);
    let net = resnet18(
        ResNetConfig {
            in_channels: 3,
            base_width: 2,
            classes: 4,
        },
        &mut rng,
    );
    (net, train, eval)
}

#[test]
fn training_reduces_loss_and_beats_chance() {
    let (mut net, train, eval) = tiny_resnet_and_data();
    let mut rng = StdRng::seed_from_u64(301);
    let mut trainer = Trainer::new(
        Sgd::new(0.05).with_momentum(0.9),
        TrainConfig {
            epochs: 3,
            batch_size: 16,
            ..TrainConfig::default()
        },
    );
    let history = trainer.fit(&mut net, train.inputs(), train.labels(), &mut rng);
    assert!(history.last().unwrap().train_loss < history[0].train_loss);
    let acc = evaluate(&mut net, eval.inputs(), eval.labels(), 16);
    assert!(acc > 0.3, "4-class accuracy {acc} not above chance");
}

#[test]
fn campaign_on_conv_net_is_coherent_and_restores_weights() {
    let (net, _train, eval) = tiny_resnet_and_data();
    let golden = serialize::export_weights(&net);
    let fm = FaultyModel::new(
        net.clone(),
        Arc::new(eval),
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(1e-4)),
    );
    let cfg = CampaignConfig {
        chains: 2,
        chain: ChainConfig {
            burn_in: 0,
            samples: 8,
            thin: 1,
        },
        kernel: KernelChoice::Prior,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&fm, &cfg);

    assert_eq!(report.total_samples(), 16);
    assert!((0.0..=1.0).contains(&report.mean_error));
    // The campaign works on clones; the original network is untouched.
    assert_eq!(serialize::export_weights(&net).params, golden.params);
}

#[test]
fn batchnorm_running_stats_are_injectable_sites() {
    let (net, _train, eval) = tiny_resnet_and_data();
    let fm = FaultyModel::new(
        net,
        Arc::new(eval),
        &SiteSpec::Params(vec!["bn1.running_mean".into(), "bn1.running_var".into()]),
        Arc::new(BernoulliBitFlip::new(0.01)),
    );
    assert_eq!(fm.sites().params.len(), 2);
    assert_eq!(fm.sites().total_param_elements(), 4); // 2 channels x 2 stats
}

#[test]
fn layerwise_study_covers_the_resnet_positions() {
    let (mut net, train, eval) = tiny_resnet_and_data();
    let mut rng = StdRng::seed_from_u64(302);
    let mut trainer = Trainer::new(
        Sgd::new(0.05).with_momentum(0.9),
        TrainConfig {
            epochs: 2,
            batch_size: 16,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut net, train.inputs(), train.labels(), &mut rng);

    // Subset of positions keeps the test quick; ordering must be preserved.
    let layers = ["conv1", "layer2_0", "layer4_1", "fc"];
    let cfg = CampaignConfig {
        chains: 2,
        chain: ChainConfig {
            burn_in: 0,
            samples: 6,
            thin: 1,
        },
        ..CampaignConfig::default()
    };
    let res = run_layerwise(
        &net,
        &Arc::new(eval),
        &layers,
        LayerBudget::ExpectedFlips(4.0),
        &cfg,
    );

    assert_eq!(res.layers.len(), 4);
    for (i, l) in res.layers.iter().enumerate() {
        assert_eq!(l.depth, i);
        assert!(l.elements > 0);
        assert!((0.0..=1.0).contains(&l.report.mean_error));
    }
    // The canonical position list contains everything we used.
    let all = resnet18_layer_positions();
    for l in &layers {
        assert!(all.contains(l));
    }
}

#[test]
fn weights_roundtrip_through_disk_and_campaign() {
    let (net, _train, eval) = tiny_resnet_and_data();
    // Unique per process: concurrent test invocations must not collide.
    let dir = std::env::temp_dir().join(format!("bdlfi_resnet_roundtrip_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("w.json");
    serialize::save_weights(&net, &path).unwrap();

    let mut rng = StdRng::seed_from_u64(303);
    let mut fresh = resnet18(
        ResNetConfig {
            in_channels: 3,
            base_width: 2,
            classes: 4,
        },
        &mut rng,
    );
    serialize::load_weights(&mut fresh, &path).unwrap();

    let eval = Arc::new(eval);
    let a = FaultyModel::new(
        net,
        Arc::clone(&eval),
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(1e-4)),
    );
    let b = FaultyModel::new(
        fresh,
        eval,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(1e-4)),
    );
    assert_eq!(a.golden_error(), b.golden_error());
    assert_eq!(a.golden_preds(), b.golden_preds());
    std::fs::remove_file(&path).ok();
}
