//! BDLFI and traditional Monte Carlo fault injection estimate the same
//! quantity when given the same fault prior: in the large-sample limit
//! their mean-error estimates must agree. (BDLFI's advantages are the
//! completeness certificate, the full distribution and the acceleration
//! hooks — not a different answer.)

use bdlfi_suite::baseline::{RandomFi, RandomFiConfig};
use bdlfi_suite::bayes::ChainConfig;
use bdlfi_suite::core::{run_campaign, CampaignConfig, FaultyModel, KernelChoice};
use bdlfi_suite::data::{gaussian_blobs, Dataset};
use bdlfi_suite::faults::{BernoulliBitFlip, SiteSpec};
use bdlfi_suite::nn::{mlp, optim::Sgd, Sequential, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn trained() -> (Sequential, Arc<Dataset>) {
    let mut rng = StdRng::seed_from_u64(200);
    let data = gaussian_blobs(500, 3, 1.0, &mut rng);
    let (train, test) = data.split(0.7, &mut rng);
    let mut model = mlp(2, &[24], 3, &mut rng);
    let mut trainer = Trainer::new(
        Sgd::new(0.1).with_momentum(0.9),
        TrainConfig {
            epochs: 25,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
    (model, Arc::new(test))
}

#[test]
fn mean_error_estimates_agree_in_the_large_sample_limit() {
    let (model, test) = trained();
    let p = 3e-3;
    let fault_model = Arc::new(BernoulliBitFlip::new(p));

    // Traditional MC with the same Bernoulli prior.
    let fi = RandomFi::with_fault_model(
        model.clone(),
        Arc::clone(&test),
        &SiteSpec::AllParams,
        Arc::clone(&fault_model) as _,
    );
    let mc = fi.run(&RandomFiConfig {
        injections: 600,
        seed: 1,
        level: 0.95,
        workers: 0,
    });

    // BDLFI with the prior kernel.
    let fm = FaultyModel::new(model, test, &SiteSpec::AllParams, fault_model);
    let cfg = CampaignConfig {
        chains: 3,
        chain: ChainConfig {
            burn_in: 0,
            samples: 200,
            thin: 1,
        },
        kernel: KernelChoice::Prior,
        ..CampaignConfig::default()
    };
    let bdlfi = run_campaign(&fm, &cfg);

    assert_eq!(mc.golden_error, bdlfi.golden_error, "same golden run");
    assert!(
        (mc.mean_error - bdlfi.mean_error).abs() < 0.03,
        "traditional {} vs BDLFI {}",
        mc.mean_error,
        bdlfi.mean_error
    );
}

#[test]
fn golden_error_is_identical_across_tools() {
    let (model, test) = trained();
    let fi = RandomFi::new(model.clone(), Arc::clone(&test), &SiteSpec::AllParams);
    let fm = FaultyModel::new(
        model,
        test,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(1e-4)),
    );
    assert_eq!(fi.golden_error(), fm.golden_error());
}

#[test]
fn single_bit_flips_rarely_corrupt_but_sometimes_do() {
    // Classical single-bit campaigns on a trained MLP: most single flips
    // are masked (low mantissa bits), some corrupt (high exponent bits) —
    // the SDC rate must be strictly between 0 and 1 with enough runs.
    let (model, test) = trained();
    let fi = RandomFi::new(model, test, &SiteSpec::AllParams);
    let res = fi.run(&RandomFiConfig {
        injections: 400,
        seed: 2,
        level: 0.95,
        workers: 0,
    });
    assert!(res.sdc.rate > 0.0, "no corruption in 400 single-bit flips");
    assert!(res.sdc.rate < 1.0, "every single-bit flip corrupted");
    // Interval is meaningful.
    assert!(res.sdc.wilson.0 < res.sdc.rate && res.sdc.rate < res.sdc.wilson.1);
}

#[test]
fn bdlfi_reports_completeness_baseline_does_not() {
    // The structural difference the paper emphasises: the BDLFI report
    // carries a certification verdict; the baseline result type carries
    // only interval estimates (checked here by what the types expose).
    let (model, test) = trained();
    let fm = FaultyModel::new(
        model.clone(),
        Arc::clone(&test),
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(1e-3)),
    );
    let base = CampaignConfig::default();
    let cfg = CampaignConfig {
        chains: 2,
        chain: ChainConfig {
            samples: 50,
            ..base.chain
        },
        ..base
    };
    let report = run_campaign(&fm, &cfg);
    // Certification verdict and its evidence exist and are consistent.
    let c = report.completeness;
    let manual = c.rhat <= cfg.criteria.max_rhat
        && c.ess >= cfg.criteria.min_ess
        && c.mcse <= cfg.criteria.max_mcse;
    assert_eq!(c.certified, manual && c.rhat.is_finite());
}
