//! # bdlfi-suite
//!
//! Umbrella crate for the BDLFI reproduction ("Towards a Bayesian Approach
//! for Assessing Fault Tolerance of Deep Neural Networks", DSN 2019).
//!
//! Re-exports the full stack under short module names and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! # Examples
//!
//! ```
//! use bdlfi_suite::tensor::Tensor;
//! let t = Tensor::ones([2, 2]);
//! assert_eq!(t.sum(), 4.0);
//! ```

pub use bdlfi as core;
pub use bdlfi_baseline as baseline;
pub use bdlfi_bayes as bayes;
pub use bdlfi_data as data;
pub use bdlfi_faults as faults;
pub use bdlfi_nn as nn;
pub use bdlfi_quant as quant;
pub use bdlfi_tensor as tensor;
