//! Offline drop-in subset of the `serde` API used by this workspace.
//!
//! The build environment has no crates registry, so this crate provides the
//! minimal machinery the workspace needs: a JSON-shaped [`Value`] data
//! model, [`Serialize`]/[`Deserialize`] traits that convert to and from it,
//! and (behind the `derive` feature) re-exported derive macros from the
//! companion `serde_derive` stub. `serde_json` renders [`Value`] to text
//! and parses it back.
//!
//! Compared to upstream serde this intentionally drops the zero-copy
//! visitor architecture: every workspace use site round-trips whole
//! documents through JSON files or strings, where a tree model is fine.

mod value;

pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Creates a "expected X while deserialising Y" error.
    pub fn expected(what: &str, context: &str) -> Self {
        DeError {
            msg: format!("expected {what} while deserialising {context}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into the JSON data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_json_value(&self) -> Value;
}

/// Types reconstructible from the JSON data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value shape does not match.
    fn from_json_value(v: &Value) -> Result<Self, DeError>;

    /// Hook for the derive macro: the value to use when a struct field is
    /// absent from the serialized object (`Some(None)` only for `Option`).
    fn missing_field_default() -> Option<Self> {
        None
    }
}

/// Derive-macro helper: extracts and deserialises field `key` from an
/// object's entries, honouring [`Deserialize::missing_field_default`].
///
/// # Errors
///
/// Returns [`DeError`] if the field is missing (and has no default) or has
/// the wrong shape.
pub fn from_field<T: Deserialize>(
    entries: &[(String, Value)],
    key: &str,
    context: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_json_value(v).map_err(|e| DeError::custom(format!("{context}.{key}: {e}")))
        }
        None => T::missing_field_default()
            .ok_or_else(|| DeError::custom(format!("missing field `{key}` in {context}"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            // JSON has no NaN/inf literal; serde_json writes them as null.
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        f64::from_json_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", "()")),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        T::from_json_value(v).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(t) => t.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }

    fn missing_field_default() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::expected("array", "array"))?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of {N}, found {}",
                items.len()
            )));
        }
        let vec: Vec<T> = items
            .iter()
            .map(T::from_json_value)
            .collect::<Result<_, _>>()?;
        vec.try_into()
            .map_err(|_| DeError::custom("array length mismatch"))
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let items = match v {
                    Value::Array(items) => items,
                    _ => return Err(DeError::expected("array", "tuple")),
                };
                let expected = [$( $idx , )+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected {expected}-tuple, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_json_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types usable as JSON object keys.
pub trait JsonKey: Sized {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] if the key cannot be parsed.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! int_keys {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError::custom(format!("invalid integer key `{s}`")))
            }
        }
    )*};
}

int_keys!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_json_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", "BTreeMap")),
        }
    }
}

impl<K: JsonKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        // Sort keys so output (and therefore golden files) is deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: JsonKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_json_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", "HashMap")),
        }
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip_and_missing_default() {
        assert_eq!(Option::<u32>::from_json_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_json_value(&Value::Number(Number::U(3))).unwrap(),
            Some(3)
        );
        assert_eq!(Option::<u32>::missing_field_default(), Some(None));
        assert_eq!(u32::missing_field_default(), None);
    }

    #[test]
    fn u64_precision_is_preserved() {
        let big = u64::MAX - 3;
        let v = big.to_json_value();
        assert_eq!(u64::from_json_value(&v).unwrap(), big);
    }

    #[test]
    fn nan_serialises_to_null_and_back() {
        let v = f32::NAN.to_json_value();
        // Number::F(NaN) renders as null in serde_json; deserialising null
        // yields NaN again.
        assert!(f32::from_json_value(&Value::Null).unwrap().is_nan());
        assert!(matches!(v, Value::Number(Number::F(f)) if f.is_nan()));
    }

    #[test]
    fn tuple_arity_is_checked() {
        let v = Value::Array(vec![Value::Number(Number::U(1))]);
        assert!(<(u32, u32)>::from_json_value(&v).is_err());
    }

    #[test]
    fn hashmap_output_is_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 1u32);
        m.insert("a".to_string(), 2u32);
        match m.to_json_value() {
            Value::Object(entries) => {
                assert_eq!(entries[0].0, "a");
                assert_eq!(entries[1].0, "b");
            }
            _ => panic!("expected object"),
        }
    }
}
