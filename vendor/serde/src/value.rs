//! The JSON-shaped data model shared by `serde` and `serde_json`.

/// A JSON number, kept in its native representation so 64-bit integers
/// (e.g. RNG seeds) round-trip without f64 precision loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Negative (or any signed) integer.
    I(i64),
    /// Non-negative integer.
    U(u64),
    /// Floating point.
    F(f64),
}

/// A parsed JSON document.
///
/// Objects are stored as insertion-ordered key/value pairs; lookups are
/// linear scans, which is fine for the struct-sized objects this workspace
/// serialises.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(n)) => Some(*n),
            Value::Number(Number::I(n)) if *n >= 0 => Some(*n as u64),
            Value::Number(Number::F(f))
                if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I(n)) => Some(*n),
            Value::Number(Number::U(n)) if *n <= i64::MAX as u64 => Some(*n as i64),
            Value::Number(Number::F(f))
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F(f)) => Some(*f),
            Value::Number(Number::I(n)) => Some(*n as f64),
            Value::Number(Number::U(n)) => Some(*n as f64),
            _ => None,
        }
    }

    /// Returns the value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the array items if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in an object (linear scan).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Number(Number::U(7)).as_i64(), Some(7));
        assert_eq!(Value::Number(Number::I(-7)).as_u64(), None);
        assert_eq!(Value::Number(Number::F(3.0)).as_u64(), Some(3));
        assert_eq!(Value::Number(Number::F(3.5)).as_u64(), None);
        assert_eq!(Value::Number(Number::U(u64::MAX)).as_u64(), Some(u64::MAX));
        assert_eq!(Value::Number(Number::U(u64::MAX)).as_i64(), None);
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![
            ("a".into(), Value::Bool(true)),
            ("b".into(), Value::Null),
        ]);
        assert_eq!(v.get("a"), Some(&Value::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }
}
