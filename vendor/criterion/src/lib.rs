//! Offline drop-in subset of the `criterion` API used by this workspace.
//!
//! Implements the measurement surface the benches call — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! `SamplingMode`, `criterion_group!`, `criterion_main!` — with a simple
//! adaptive timer instead of upstream's statistical engine: each benchmark
//! warms up, picks an iteration count targeting a fixed measurement
//! window, and reports the mean time per iteration (plus throughput when
//! configured). Good enough to compare kernels before/after a change,
//! which is all this workspace needs.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Work-per-iteration hint used to report derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Sampling strategy; accepted for API compatibility, not used.
#[derive(Debug, Clone, Copy)]
pub enum SamplingMode {
    /// Default mode.
    Auto,
    /// Flat sampling for long-running benchmarks.
    Flat,
    /// Linear sampling.
    Linear,
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_window: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI arguments are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        run_one(name, self.measurement_window, None, &mut f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            window: self.measurement_window,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    window: Duration,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for derived rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub timer self-calibrates.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.window = window;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.window, self.throughput, &mut f);
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&label, self.window, self.throughput, &mut wrapped);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    window: Duration,
    /// Mean seconds per iteration, filled in by `iter`.
    secs_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `routine`, storing the mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count whose batch
        // runtime is long enough to swamp timer noise.
        let mut iters: u64 = 1;
        let calibration_floor = self.window.as_secs_f64() / 20.0;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= calibration_floor || iters >= 1 << 30 {
                // Scale up to fill the measurement window, then measure.
                let target = self.window.as_secs_f64();
                let scale = if elapsed > 0.0 {
                    target / elapsed
                } else {
                    1000.0
                };
                let measured_iters = ((iters as f64 * scale).ceil() as u64).clamp(1, 1 << 32);
                let start = Instant::now();
                for _ in 0..measured_iters {
                    black_box(routine());
                }
                let total = start.elapsed().as_secs_f64();
                self.secs_per_iter = Some(total / measured_iters as f64);
                return;
            }
            iters = iters.saturating_mul(4);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    window: Duration,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut bencher = Bencher {
        window,
        secs_per_iter: None,
    };
    f(&mut bencher);
    match bencher.secs_per_iter {
        Some(secs) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  ({:.3e} elem/s)", n as f64 / secs)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  ({:.3e} B/s)", n as f64 / secs)
                }
                None => String::new(),
            };
            println!("{label:<50} time: {}{rate}", format_time(secs));
        }
        None => println!("{label:<50} (no measurement: iter was not called)"),
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            measurement_window: Duration::from_millis(5),
        }
    }

    #[test]
    fn bench_function_measures() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_chains() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).sampling_mode(SamplingMode::Flat);
        group.throughput(Throughput::Elements(128));
        group.bench_with_input(BenchmarkId::new("sum", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("direct", |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("nn", 64).to_string(), "nn/64");
        assert_eq!(BenchmarkId::from_parameter("p=1e-3").to_string(), "p=1e-3");
    }
}
