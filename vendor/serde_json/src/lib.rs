//! Offline drop-in subset of the `serde_json` API used by this workspace:
//! `to_string`, `to_string_pretty`, `to_writer`, `to_writer_pretty`,
//! `from_str`, `from_reader`, and the [`Error`] type.
//!
//! Works against the vendored `serde` crate's [`Value`] data model. The
//! emitter mirrors upstream serde_json's conventions this workspace
//! depends on: non-finite floats render as `null`, integers render
//! without a decimal point, and pretty output indents by two spaces.

mod parse;
mod print;

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};

/// Serialisation/deserialisation failure (syntax, shape mismatch, or I/O).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("io error: {e}"))
    }
}

/// Serialises `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for tree-shaped data; returns `Err` only to keep the
/// upstream-compatible signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::compact(&value.to_json_value()))
}

/// Serialises `value` to a human-readable, two-space-indented string.
///
/// # Errors
///
/// Infallible for tree-shaped data; see [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::pretty(&value.to_json_value()))
}

/// Serialises `value` as compact JSON into `writer`.
///
/// # Errors
///
/// Returns an error if the writer fails.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    writer.write_all(print::compact(&value.to_json_value()).as_bytes())?;
    Ok(())
}

/// Serialises `value` as pretty JSON into `writer`.
///
/// # Errors
///
/// Returns an error if the writer fails.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(print::pretty(&value.to_json_value()).as_bytes())?;
    Ok(())
}

/// Parses a value of type `T` from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    Ok(T::from_json_value(&value)?)
}

/// Parses a value of type `T` from a reader (reads to end first).
///
/// # Errors
///
/// Returns an error on I/O failure, malformed JSON, or a shape mismatch.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&"hi".to_string()).unwrap(), "\"hi\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn u64_seed_roundtrips_exactly() {
        let seed = 0xDEAD_BEEF_CAFE_F00Du64;
        let s = to_string(&seed).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), seed);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f32::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f32>("null").unwrap().is_nan());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.0f32, -2.25, 3.5];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f32>>(&s).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![(1usize, 2u32), (3, 4)]);
        let s = to_string(&m).unwrap();
        assert_eq!(
            from_str::<BTreeMap<String, Vec<(usize, u32)>>>(&s).unwrap(),
            m
        );
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline\\2 \"quoted\" \t unicode: \u{1F600} control: \u{1}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn pretty_output_is_parseable_and_indented() {
        let v = vec![vec![1u32, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("42 trailing").is_err());
        assert!(from_str::<u32>("\"not a number\"").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2,]").is_err());
    }

    #[test]
    fn writer_roundtrip() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &vec![1u8, 2, 3]).unwrap();
        let back: Vec<u8> = from_reader(&buf[..]).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }
}
