//! JSON emitters (compact and two-space pretty), matching upstream
//! serde_json's conventions: shortest-roundtrip floats, `null` for
//! non-finite floats, standard string escapes.

use serde::{Number, Value};

pub fn compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

pub fn pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some("  "), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, level: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(pad);
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::I(i) => out.push_str(&i.to_string()),
        Number::U(u) => out.push_str(&u.to_string()),
        Number::F(f) if !f.is_finite() => out.push_str("null"),
        Number::F(f) => {
            // Rust's Display for f64 is shortest-roundtrip; ensure a
            // fractional part survives so the value re-parses as a float.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
