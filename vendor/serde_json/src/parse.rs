//! Recursive-descent JSON parser producing a [`Value`] tree.

use crate::Error;
use serde::{Number, Value};

pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Nesting limit so adversarial inputs cannot overflow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if !self.literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| self.err("invalid number"))
    }
}
