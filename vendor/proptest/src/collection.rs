//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};

/// Length specification for [`vec`]: a fixed `usize` or a `Range<usize>`.
pub trait SizeRange {
    /// Samples a concrete length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty length range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty length range");
        lo + rng.below((hi - lo + 1) as u64) as usize
    }
}

/// Strategy generating `Vec`s whose elements come from `element` and whose
/// length comes from `size`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S, L> {
    element: S,
    size: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = TestRng::new(4);
        let fixed = vec(0u32..10, 7usize);
        assert_eq!(fixed.generate(&mut rng).len(), 7);
        let ranged = vec(0u32..10, 2usize..5);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn tuple_elements_work() {
        let mut rng = TestRng::new(5);
        let s = vec((0usize..8, crate::num::u32::ANY), 0usize..6);
        for _ in 0..50 {
            for (i, _bits) in s.generate(&mut rng) {
                assert!(i < 8);
            }
        }
    }
}
