//! Offline drop-in subset of the `proptest` API used by this workspace.
//!
//! Provides the [`proptest!`] macro, the [`Strategy`] trait with the
//! strategies the test suites use (numeric ranges, `num::*::ANY`,
//! `collection::vec`, tuples, `prop_map`), and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted for an offline stub:
//! no shrinking (a failing case reports its seed and message instead of a
//! minimised input) and a fixed deterministic RNG derived from the test
//! name, so failures are reproducible run-to-run.

pub mod collection;
pub mod num;

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the seed suites fast while
        // still exercising variety.
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs: try another case, don't count it.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Result type produced by a generated test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 stream used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` via widening multiply.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash used to derive a per-test seed from its name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of values for one test argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Runs the generated test bodies; used by the [`proptest!`] expansion.
///
/// `body` receives the RNG and returns `Ok`, `Err(Reject)` to skip a case,
/// or `Err(Fail)` to abort.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let mut rng = TestRng::new(seed_from_name(test_name));
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(20).saturating_add(100);
    while accepted < config.cases && attempts < max_attempts {
        attempts += 1;
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{test_name}` failed on case {attempts}: {msg}")
            }
        }
    }
}

/// Defines property tests. Mirrors the upstream grammar this workspace
/// uses: an optional `#![proptest_config(..)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a property test; failure aborts with the case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let __lhs = $lhs;
        let __rhs = $rhs;
        if !(__lhs == __rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} == {}`: {:?} != {:?}",
                stringify!($lhs),
                stringify!($rhs),
                __lhs,
                __rhs
            )));
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let __lhs = $lhs;
        let __rhs = $rhs;
        if __lhs == __rhs {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} != {}`: both {:?}",
                stringify!($lhs),
                stringify!($rhs),
                __lhs
            )));
        }
    }};
}

/// Skips the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f32..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = TestRng::new(2);
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(a in 0u64..100, b in 0u64..100) {
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..4) {
            prop_assume!(a != 1);
            prop_assert_ne!(a, 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(v in -1.0f64..1.0) {
            prop_assert!((-1.0..1.0).contains(&v));
        }
    }
}
