//! `proptest::num::*::ANY` strategies over full bit patterns.

/// Strategies for `f32`, including NaN and infinities.
pub mod f32 {
    use crate::{Strategy, TestRng};

    /// Generates `f32` values from uniformly random bit patterns, so NaN,
    /// infinities and subnormals all occur.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Any `f32` bit pattern.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }
}

/// Strategies for `u32`.
pub mod u32 {
    use crate::{Strategy, TestRng};

    /// Generates uniformly random `u32` values.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Any `u32` value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = u32;
        fn generate(&self, rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Strategy, TestRng};

    #[test]
    fn f32_any_covers_odd_values() {
        let mut rng = TestRng::new(3);
        let mut saw_nonfinite = false;
        for _ in 0..10_000 {
            let v = super::f32::ANY.generate(&mut rng);
            if !v.is_finite() {
                saw_nonfinite = true;
            }
        }
        // ~1/256 of bit patterns are inf/NaN; 10k draws make a miss
        // astronomically unlikely.
        assert!(saw_nonfinite);
    }
}
