//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde subset.
//!
//! Implemented directly on `proc_macro::TokenStream` (the build
//! environment has no registry access, so `syn`/`quote` are unavailable):
//! a small hand parser extracts the type shape, and code generation goes
//! through strings re-parsed into a token stream.
//!
//! Supported shapes — exactly what this workspace derives on:
//! structs with named fields, tuple structs, unit structs, and enums with
//! unit / tuple / struct variants (serialised with serde's external
//! tagging). Generics and `#[serde(...)]` attributes are rejected loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

struct TypeDef {
    name: String,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse(input);
    gen_serialize(&def)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse(input);
    gen_deserialize(&def)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> TypeDef {
    let mut it: Tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let kw = expect_ident(&mut it, "`struct` or `enum`");
    let name = expect_ident(&mut it, "type name");
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic type `{name}`");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected token after `struct {name}`: {other:?}"),
            };
            TypeDef {
                name,
                kind: Kind::Struct(fields),
            }
        }
        "enum" => {
            let body = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, found {other:?}"),
            };
            TypeDef {
                name,
                kind: Kind::Enum(parse_variants(body)),
            }
        }
        other => panic!("derive supports only structs and enums, found `{other}`"),
    }
}

fn skip_attrs_and_vis(it: &mut Tokens) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        let text = g.stream().to_string();
                        if text.starts_with("serde") {
                            panic!(
                                "vendored serde_derive does not support #[serde(...)] attributes"
                            );
                        }
                    }
                    other => panic!("malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    it.next();
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(it: &mut Tokens, what: &str) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected {what}, found {other:?}"),
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut it: Tokens = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                match it.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("expected `:` after field `{id}`, found {other:?}"),
                }
                skip_type(&mut it);
            }
            other => panic!("expected field name, found {other:?}"),
        }
    }
    names
}

/// Consumes type tokens up to and including the next top-level comma,
/// tracking `<...>` nesting (parens/brackets arrive as whole groups).
fn skip_type(it: &mut Tokens) {
    let mut depth = 0usize;
    for tt in it.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts fields in a tuple-struct/-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0usize;
    let mut count = 0usize;
    let mut pending = false;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    pending = true;
                }
                '>' => {
                    depth = depth.saturating_sub(1);
                    pending = true;
                }
                ',' if depth == 0 => {
                    count += 1;
                    pending = false;
                }
                _ => pending = true,
            },
            _ => pending = true,
        }
    }
    if pending {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut it: Tokens = stream.into_iter().peekable();
    let mut out = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        match it.next() {
            None => {
                out.push((name, Fields::Unit));
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                out.push((name, Fields::Unit));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the next comma.
                skip_type(&mut it);
                out.push((name, Fields::Unit));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                out.push((name, Fields::Named(parse_named_fields(g.stream()))));
                expect_comma_or_end(&mut it);
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                out.push((name, Fields::Tuple(count_tuple_fields(g.stream()))));
                expect_comma_or_end(&mut it);
            }
            other => panic!("unexpected token after variant `{name}`: {other:?}"),
        }
    }
    out
}

fn expect_comma_or_end(it: &mut Tokens) {
    match it.next() {
        None => {}
        Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
        other => panic!("expected `,` between variants, found {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn str_lit(s: &str) -> String {
    format!("::std::string::String::from(\"{s}\")")
}

fn gen_serialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.kind {
        Kind::Struct(fields) => ser_fields_body(fields, "self.", None),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String({lit}),",
                        lit = str_lit(v)
                    )),
                    Fields::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_json_value(__f0)".to_string()
                        } else {
                            let items: String = pats
                                .iter()
                                .map(|p| format!("::serde::Serialize::to_json_value({p}),"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{items}])")
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({pats}) => ::serde::Value::Object(::std::vec![({lit}, {inner})]),",
                            pats = pats.join(", "),
                            lit = str_lit(v)
                        ));
                    }
                    Fields::Named(fs) => {
                        let entries: String = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "({lit}, ::serde::Serialize::to_json_value({f})),",
                                    lit = str_lit(f)
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {pats} }} => ::serde::Value::Object(::std::vec![({lit}, \
                             ::serde::Value::Object(::std::vec![{entries}]))]),",
                            pats = fs.join(", "),
                            lit = str_lit(v)
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] #[allow(unused_variables, clippy::all)] \
         impl ::serde::Serialize for {name} {{ \
             fn to_json_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

/// Serialisation expression for a set of struct fields accessed through
/// `prefix` (e.g. `self.`).
fn ser_fields_body(fields: &Fields, prefix: &str, _ctx: Option<&str>) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(fs) => {
            let entries: String = fs
                .iter()
                .map(|f| {
                    format!(
                        "({lit}, ::serde::Serialize::to_json_value(&{prefix}{f})),",
                        lit = str_lit(f)
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        Fields::Tuple(1) => format!("::serde::Serialize::to_json_value(&{prefix}0)"),
        Fields::Tuple(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json_value(&{prefix}{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
    }
}

fn gen_deserialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.kind {
        Kind::Struct(Fields::Named(fs)) => {
            let fields: String = fs
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(__entries, \"{f}\", \"{name}\")?,"))
                .collect();
            format!(
                "let __entries = v.as_object().ok_or_else(|| \
                     ::serde::DeError::expected(\"object\", \"{name}\"))?; \
                 ::std::result::Result::Ok({name} {{ {fields} }})"
            )
        }
        Kind::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_json_value(v)?))"
        ),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json_value(&__items[{i}])?,"))
                .collect();
            format!(
                "let __items = v.as_array().ok_or_else(|| \
                     ::serde::DeError::expected(\"array\", \"{name}\"))?; \
                 if __items.len() != {n} {{ \
                     return ::std::result::Result::Err(::serde::DeError::custom(\
                         ::std::format!(\"expected {n} elements for {name}, found {{}}\", __items.len()))); \
                 }} \
                 ::std::result::Result::Ok({name}({items}))"
            )
        }
        Kind::Struct(Fields::Unit) => format!(
            "match v {{ \
                 ::serde::Value::Null => ::std::result::Result::Ok({name}), \
                 _ => ::std::result::Result::Err(::serde::DeError::expected(\"null\", \"{name}\")), \
             }}"
        ),
        Kind::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived] #[allow(unused_variables, clippy::all)] \
         impl ::serde::Deserialize for {name} {{ \
             fn from_json_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for (v, fields) in variants {
        match fields {
            Fields::Unit => unit_arms.push_str(&format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}),"
            )),
            Fields::Tuple(1) => tagged_arms.push_str(&format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                     ::serde::Deserialize::from_json_value(__content)?)),"
            )),
            Fields::Tuple(n) => {
                let items: String = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_json_value(&__items[{i}])?,"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{v}\" => {{ \
                         let __items = __content.as_array().ok_or_else(|| \
                             ::serde::DeError::expected(\"array\", \"{name}::{v}\"))?; \
                         if __items.len() != {n} {{ \
                             return ::std::result::Result::Err(::serde::DeError::custom(\
                                 ::std::format!(\"expected {n} elements for {name}::{v}, found {{}}\", \
                                     __items.len()))); \
                         }} \
                         ::std::result::Result::Ok({name}::{v}({items})) \
                     }}"
                ));
            }
            Fields::Named(fs) => {
                let fields: String = fs
                    .iter()
                    .map(|f| {
                        format!("{f}: ::serde::from_field(__fields, \"{f}\", \"{name}::{v}\")?,")
                    })
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{v}\" => {{ \
                         let __fields = __content.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"object\", \"{name}::{v}\"))?; \
                         ::std::result::Result::Ok({name}::{v} {{ {fields} }}) \
                     }}"
                ));
            }
        }
    }
    format!(
        "if let ::std::option::Option::Some(__s) = v.as_str() {{ \
             return match __s {{ \
                 {unit_arms} \
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown unit variant `{{}}` for {name}\", __other))), \
             }}; \
         }} \
         let __entries = v.as_object().ok_or_else(|| \
             ::serde::DeError::expected(\"string or object\", \"{name}\"))?; \
         if __entries.len() != 1 {{ \
             return ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"expected single-key object for enum {name}\"))); \
         }} \
         let (__tag, __content) = &__entries[0]; \
         match __tag.as_str() {{ \
             {tagged_arms} \
             __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{}}` for {name}\", __other))), \
         }}"
    )
}
