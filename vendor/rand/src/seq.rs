//! Slice helpers.

use crate::{Rng, RngExt};

/// Random operations on slices.
pub trait SliceRandom {
    /// Uniformly permutes the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_trivial_slices() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut empty: [u8; 0] = [];
        empty.shuffle(&mut rng);
        let mut one = [42u8];
        one.shuffle(&mut rng);
        assert_eq!(one, [42]);
    }
}
