//! Concrete generators.

use crate::{Rng, SeedableRng};

/// Deterministic xoshiro256++ generator, seeded via SplitMix64.
///
/// Cheap to clone (32 bytes of state); cloning duplicates the stream,
/// which is what chain workers rely on for reproducible campaigns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    /// The raw 256-bit generator state — serialisable, so an interrupted
    /// campaign can journal its chains' exact stream positions.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator at the exact stream position captured by
    /// [`StdRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into 256 bits of state,
        // as recommended by the xoshiro authors.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = Self::rotl(s[3], 45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::seed_from_u64(0);
        let vals: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
        assert_ne!(vals[0], vals[1]);
    }
}
