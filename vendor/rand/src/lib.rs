//! Offline drop-in subset of the `rand` API used by this workspace.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the handful of `rand` items it actually uses:
//!
//! * [`Rng`] — object-safe core trait (`next_u32`/`next_u64`), so code can
//!   hold `&mut dyn Rng`.
//! * [`RngExt`] — blanket extension trait carrying the generic helpers
//!   (`random`, `random_range`, `random_bool`).
//! * [`SeedableRng`] + [`rngs::StdRng`] — a deterministic xoshiro256++
//!   generator seeded through SplitMix64.
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle`.
//!
//! Determinism is the only contract callers rely on (seeded campaigns must
//! reproduce bit-for-bit); statistical quality matches the upstream
//! xoshiro256++ construction.

pub mod rngs;
pub mod seq;

/// Object-safe random source: everything is derived from `next_u64`.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

impl<R: Rng + ?Sized> Rng for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Generic convenience methods, blanket-implemented for every [`Rng`]
/// (including `dyn Rng`).
pub trait RngExt: Rng {
    /// Samples a value of type `T` from its canonical distribution:
    /// floats uniform in `[0, 1)`, integers uniform over the full range,
    /// `bool` as a fair coin.
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types samplable by [`RngExt::random`].
pub trait FromRng {
    /// Samples one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl FromRng for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, span)` without modulo bias
/// (widening-multiply method).
#[inline]
fn bounded(rng_bits: u64, span: u64) -> u64 {
    ((rng_bits as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let f: $t = FromRng::from_rng(rng);
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let f: $t = FromRng::from_rng(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}

float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_across_clones() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f32 = rng.random_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&v));
        }
    }

    #[test]
    fn works_through_dyn_rng() {
        let mut rng = StdRng::seed_from_u64(4);
        let dynrng: &mut dyn Rng = &mut rng;
        let x: f64 = dynrng.random();
        assert!((0.0..1.0).contains(&x));
        let _ = dynrng.random_range(0..10usize);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.random_range(3..3usize);
    }
}
