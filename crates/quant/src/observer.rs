//! Calibration observers: running range estimates over a calibration split,
//! turned into activation [`QParams`] after the sweep.

use crate::qparams::QParams;
use bdlfi_tensor::Tensor;

/// Which range statistic calibration uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObserverKind {
    /// Global min/max over every observed batch — tight on well-behaved
    /// activations, sensitive to outliers.
    MinMax,
    /// Exponential moving average of per-batch min/max (the classic
    /// TensorFlow-style calibration smoother) with the given momentum in
    /// `(0, 1]`; `1.0` degenerates to tracking the latest batch.
    MovingAverage {
        /// EMA weight of the newest batch.
        momentum: f32,
    },
}

/// A running range estimate for one tapped activation.
#[derive(Debug, Clone)]
pub struct Observer {
    kind: ObserverKind,
    min: f32,
    max: f32,
    seen: bool,
}

impl Observer {
    /// A fresh observer of the given kind.
    pub fn new(kind: ObserverKind) -> Self {
        Observer {
            kind,
            min: 0.0,
            max: 0.0,
            seen: false,
        }
    }

    /// Folds one batch of activations into the estimate. Non-finite
    /// elements are ignored.
    pub fn observe(&mut self, t: &Tensor) {
        let mut bmin = f32::INFINITY;
        let mut bmax = f32::NEG_INFINITY;
        for &v in t.data() {
            if v.is_finite() {
                bmin = bmin.min(v);
                bmax = bmax.max(v);
            }
        }
        if bmin > bmax {
            return; // batch had no finite elements
        }
        if !self.seen {
            self.min = bmin;
            self.max = bmax;
            self.seen = true;
            return;
        }
        match self.kind {
            ObserverKind::MinMax => {
                self.min = self.min.min(bmin);
                self.max = self.max.max(bmax);
            }
            ObserverKind::MovingAverage { momentum } => {
                self.min += momentum * (bmin - self.min);
                self.max += momentum * (bmax - self.max);
            }
        }
    }

    /// The calibrated activation parameters (unit parameters if nothing was
    /// observed).
    pub fn qparams(&self) -> QParams {
        if !self.seen {
            return QParams::unit();
        }
        QParams::from_range(self.min, self.max)
    }

    /// The observed `(min, max)` range, if any batch was seen.
    pub fn range(&self) -> Option<(f32, f32)> {
        self.seen.then_some((self.min, self.max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_tracks_global_extremes() {
        let mut o = Observer::new(ObserverKind::MinMax);
        o.observe(&Tensor::from_vec(vec![1.0, 2.0], [2]));
        o.observe(&Tensor::from_vec(vec![-3.0, 0.5], [2]));
        assert_eq!(o.range(), Some((-3.0, 2.0)));
    }

    #[test]
    fn moving_average_smooths_batches() {
        let mut o = Observer::new(ObserverKind::MovingAverage { momentum: 0.5 });
        o.observe(&Tensor::from_vec(vec![0.0, 4.0], [2]));
        o.observe(&Tensor::from_vec(vec![0.0, 8.0], [2]));
        let (_, max) = o.range().unwrap();
        assert!((max - 6.0).abs() < 1e-6); // 4 + 0.5·(8-4)
    }

    #[test]
    fn non_finite_elements_are_skipped() {
        let mut o = Observer::new(ObserverKind::MinMax);
        o.observe(&Tensor::from_vec(vec![f32::NAN, f32::INFINITY, 1.0], [3]));
        assert_eq!(o.range(), Some((1.0, 1.0)));
    }

    #[test]
    fn unobserved_yields_unit_params() {
        let o = Observer::new(ObserverKind::MinMax);
        assert_eq!(o.qparams(), QParams::unit());
    }
}
