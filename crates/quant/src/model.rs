//! The calibrated [`QuantModel`]: post-training quantization of a trained
//! [`Sequential`], quantized inference, fault-site enumeration and the
//! quantized prefix cache.

use crate::observer::{Observer, ObserverKind};
use crate::qops::{QBlock, QConv, QDense, QOp, QSlice};
use bdlfi_faults::{FaultConfig, ParamSite, ResolvedSites, SiteSpec};
use bdlfi_nn::layers::{BasicBlock, BatchNorm2d, Conv2d, Dense};
use bdlfi_nn::{predict_batched, Sequential};
use bdlfi_tensor::Tensor;
use std::collections::HashMap;

/// How calibration runs: the batch size of the observation sweep and the
/// range statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibConfig {
    /// Batch size of the calibration forward passes.
    pub batch_size: usize,
    /// Range estimator fed by the activation taps.
    pub observer: ObserverKind,
}

impl Default for CalibConfig {
    fn default() -> Self {
        CalibConfig {
            batch_size: 32,
            observer: ObserverKind::MinMax,
        }
    }
}

/// A post-training-quantized network: one [`QOp`] per top-level layer of
/// the source [`Sequential`], same names, same order.
///
/// Keeping the stage list aligned one-to-one with the f32 model means a
/// fault site's *op index* (first dotted path component) is directly a
/// prefix-cache cut point, exactly as in the f32 campaign path.
#[derive(Debug, Clone)]
pub struct QuantModel {
    ops: Vec<(String, QOp)>,
}

/// Calibrates and quantizes a trained model.
///
/// Runs the f32 model over `calib_inputs` once, observing every activation
/// tap (and the network input, tapped at the empty path), then walks the
/// top-level layers:
///
/// * [`Dense`] → [`QDense`] (symmetric int8 weights, i32 bias);
/// * [`Conv2d`] directly followed by a [`BatchNorm2d`] → folded [`QConv`],
///   with the batch norm's stage becoming [`QOp::Identity`];
/// * [`BasicBlock`] → [`QBlock`] with both (and the projection's) batch
///   norms folded;
/// * anything else → [`QOp::Float`], running the original f32 layer.
///
/// # Panics
///
/// Panics if `calib_inputs` is empty or the batch size is zero.
pub fn quantize_model(model: &Sequential, calib_inputs: &Tensor, cfg: &CalibConfig) -> QuantModel {
    // Observation sweep over the calibration split.
    let mut observers: HashMap<String, Observer> = HashMap::new();
    let kind = cfg.observer;
    let mut m = model.clone();
    predict_batched(&mut m, calib_inputs, cfg.batch_size, &mut |path, t| {
        observers
            .entry(path.to_string())
            .or_insert_with(|| Observer::new(kind))
            .observe(t);
    });
    let qp = |key: &str| {
        observers
            .get(key)
            .map(Observer::qparams)
            .unwrap_or_else(crate::qparams::QParams::unit)
    };

    let mut ops: Vec<(String, QOp)> = Vec::with_capacity(model.len());
    let mut fold_next_bn = false;
    for i in 0..model.len() {
        let (name, layer) = model.layer_at(i);
        // The boundary tensor feeding this stage is the previous top-level
        // layer's tapped output ("" is the network input).
        let in_key = if i == 0 {
            String::new()
        } else {
            model.layer_at(i - 1).0.to_string()
        };

        if fold_next_bn {
            fold_next_bn = false;
            ops.push((name.to_string(), QOp::Identity));
            continue;
        }

        let any = layer.as_any();
        let op = if let Some(d) = any.and_then(|a| a.downcast_ref::<Dense>()) {
            QOp::Dense(QDense::from_dense(d, qp(&in_key), qp(name)))
        } else if let Some(c) = any.and_then(|a| a.downcast_ref::<Conv2d>()) {
            // Fold a directly following batch norm into the convolution.
            let bn = (i + 1 < model.len())
                .then(|| model.layer_at(i + 1))
                .and_then(|(bn_name, bn_layer)| {
                    bn_layer
                        .as_any()
                        .and_then(|a| a.downcast_ref::<BatchNorm2d>())
                        .map(|bn| (bn_name, bn))
                });
            match bn {
                Some((bn_name, bn)) => {
                    fold_next_bn = true;
                    QOp::Conv(QConv::from_conv(c, Some(bn), qp(&in_key), qp(bn_name)))
                }
                None => QOp::Conv(QConv::from_conv(c, None, qp(&in_key), qp(name))),
            }
        } else if let Some(b) = any.and_then(|a| a.downcast_ref::<BasicBlock>()) {
            let tap = |child: &str| format!("{name}.{child}");
            let conv1 = QConv::from_conv(b.conv1(), Some(b.bn1()), qp(&in_key), qp(&tap("bn1")));
            let conv2 =
                QConv::from_conv(b.conv2(), Some(b.bn2()), qp(&tap("relu1")), qp(&tap("bn2")));
            let down = b
                .downsample()
                .map(|(dc, dbn)| QConv::from_conv(dc, Some(dbn), qp(&in_key), qp(&tap("down_bn"))));
            QOp::Block(Box::new(QBlock { conv1, conv2, down }))
        } else {
            QOp::Float(layer.clone_box())
        };
        ops.push((name.to_string(), op));
    }
    QuantModel { ops }
}

impl QuantModel {
    /// Number of pipeline stages (equals the source model's top-level layer
    /// count).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the model has no stages.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Stage names, in order (identical to the source model's layer names).
    pub fn op_names(&self) -> Vec<String> {
        self.ops.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Stage kinds, in order (e.g. `"qconv"`, `"identity"`, `"float"`).
    pub fn op_kinds(&self) -> Vec<&'static str> {
        self.ops.iter().map(|(_, op)| op.kind()).collect()
    }

    /// Eval forward pass over one f32 batch.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        self.forward_from(0, input)
    }

    /// Forward pass resumed at stage `start` on a cached boundary tensor —
    /// the quantized twin of [`Sequential::forward_from`]. Integer kernels
    /// accumulate exactly and every stage computes each example
    /// independently of its batch, so resumed runs are bit-identical to
    /// cold runs.
    ///
    /// # Panics
    ///
    /// Panics if `start > len()`.
    pub fn forward_from(&mut self, start: usize, input: &Tensor) -> Tensor {
        assert!(
            start <= self.ops.len(),
            "forward_from: start {start} beyond {} stages",
            self.ops.len()
        );
        let mut x = input.clone();
        for (_, op) in &mut self.ops[start..] {
            x = op.forward(&x);
        }
        x
    }

    /// The stage at index `i` as `(name, op)` — read access for structural
    /// walkers (e.g. the sparse-delta planner).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn op_at(&self, i: usize) -> (&str, &QOp) {
        let (name, op) = &self.ops[i];
        (name.as_str(), op)
    }

    /// Runs exactly one stage on `input` — the per-stage building block the
    /// sparse-delta evaluator steps with. Bit-identical to that stage's
    /// step inside [`QuantModel::forward_from`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn forward_one(&mut self, i: usize, input: &Tensor) -> Tensor {
        let (_, op) = &mut self.ops[i];
        op.forward(input)
    }

    /// Batched inference over `inputs` in chunks of `batch_size`,
    /// concatenating the logits — the quantized twin of
    /// [`bdlfi_nn::predict_all`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or `batch_size == 0`.
    pub fn predict_all(&mut self, inputs: &Tensor, batch_size: usize) -> Tensor {
        let n = inputs.dim(0);
        assert!(n > 0, "predict_all needs at least one example");
        assert!(batch_size > 0, "batch size must be positive");
        let example_len = inputs.len() / n;
        let mut out: Vec<f32> = Vec::new();
        let mut classes = 0;
        let mut i = 0usize;
        while i < n {
            let end = (i + batch_size).min(n);
            let mut dims = inputs.dims().to_vec();
            dims[0] = end - i;
            let bx = Tensor::from_vec(
                inputs.data()[i * example_len..end * example_len].to_vec(),
                dims,
            );
            let logits = self.forward(&bx);
            classes = logits.dim(1);
            out.extend_from_slice(logits.data());
            i = end;
        }
        Tensor::from_vec(out, [n, classes])
    }

    /// Enumerates every fault site of the quantized network with its stored
    /// representation: int8 weight bytes, i32 bias words, f32 weight
    /// scales, i32 output zero-points.
    pub fn sites(&self) -> ResolvedSites {
        let mut params = Vec::new();
        for (name, op) in &self.ops {
            op.visit_sites(name, &mut |path, repr, len| {
                params.push(ParamSite::with_repr(path, len, repr));
            });
        }
        ResolvedSites {
            params,
            activations: Vec::new(),
            input: false,
        }
    }

    /// Resolves a [`SiteSpec`] against the quantized network's fault sites
    /// — the quantized twin of [`bdlfi_faults::resolve_sites`]. Layer
    /// prefixes match whole dotted path components, so `"fc1"` scopes to
    /// `fc1.weight`, `fc1.bias`, `fc1.w_scale` and `fc1.out_zp`.
    ///
    /// # Panics
    ///
    /// Panics if the spec selects activation or input sites (quantized
    /// storage holds parameters only), or if it matches no site.
    pub fn sites_matching(&self, spec: &SiteSpec) -> ResolvedSites {
        let all = self.sites().params;
        let params = match spec {
            SiteSpec::AllParams => all,
            SiteSpec::LayerParams { prefix } => {
                let matched: Vec<ParamSite> = all
                    .into_iter()
                    .filter(|s| s.path == *prefix || s.path.starts_with(&format!("{prefix}.")))
                    .collect();
                assert!(
                    !matched.is_empty(),
                    "no parameters under layer prefix {prefix:?}"
                );
                matched
            }
            SiteSpec::Params(paths) => paths
                .iter()
                .map(|want| {
                    all.iter()
                        .find(|s| s.path == *want)
                        .cloned()
                        // bdlfi-lint: allow(BD010) -- spec-resolution boundary: reports the offending path before any campaign state exists
                        .unwrap_or_else(|| panic!("unknown parameter path {want:?}"))
                })
                .collect(),
            SiteSpec::Activations(_) | SiteSpec::Input => {
                // bdlfi-lint: allow(BD010) -- spec-resolution boundary: quant campaigns reject non-parameter sites before any state exists
                panic!("quantized models expose parameter fault sites only")
            }
        };
        ResolvedSites {
            params,
            activations: Vec::new(),
            input: false,
        }
    }

    /// Visits every mutable storage region for fault application.
    pub fn visit_slices(&mut self, f: &mut dyn FnMut(&str, QSlice)) {
        for (name, op) in &mut self.ops {
            op.visit_slices(name, f);
        }
    }

    /// XORs a fault configuration into the quantized storage, dispatching
    /// each mask by the representation of the site it lands on. Applying it
    /// a second time restores the model exactly (XOR involution in every
    /// representation).
    ///
    /// # Panics
    ///
    /// Panics if a mask indexes beyond its storage region.
    pub fn apply(&mut self, cfg: &FaultConfig) {
        self.visit_slices(&mut |path, slice| {
            let mask = cfg.mask(path);
            if mask.is_empty() {
                return;
            }
            match slice {
                QSlice::I8(s) => mask.apply_slice_i8(s),
                QSlice::I32(s) => mask.apply_slice_i32(s),
                QSlice::F32(s) => mask.apply_slice(s),
            }
        });
    }

    /// Index of the shallowest stage a configuration corrupts, or `None`
    /// for a clean configuration. Masks at unknown paths conservatively map
    /// to stage 0 (full re-run).
    pub fn first_dirty_op(&self, cfg: &FaultConfig) -> Option<usize> {
        cfg.affected_paths()
            .iter()
            .map(|path| self.op_index_of_site(path).unwrap_or(0))
            .min()
    }

    /// Index of the stage owning the site at `path` (first dotted component
    /// matched against stage names).
    pub fn op_index_of_site(&self, path: &str) -> Option<usize> {
        let head = path.split('.').next().unwrap_or(path);
        self.ops.iter().position(|(n, _)| n == head)
    }

    /// A human-readable table of the pipeline: stage names, kinds and site
    /// sizes.
    pub fn describe(&self) -> String {
        let mut out = String::from("stage            kind       fault sites\n");
        for (name, op) in &self.ops {
            let mut bits = 0u64;
            op.visit_sites(name, &mut |_, repr, len| {
                bits += len as u64 * u64::from(repr.width());
            });
            out.push_str(&format!("{name:<16} {:<10} {bits} bits\n", op.kind()));
        }
        out
    }
}

/// Golden boundary activations of a *quantized* model over a fixed
/// evaluation set — the int8 twin of [`bdlfi_nn::PrefixCache`].
///
/// Stages before the first fault-dirtied one compute on clean quantized
/// storage, so their f32 boundary outputs are bit-identical to the golden
/// run; evaluating a fault configuration costs only the suffix from its
/// first dirty stage.
pub struct QPrefixCache {
    /// `batches[b][l]` = golden boundary tensor feeding stage `l` of batch
    /// `b` (`[0]` is the batch input, the last entry the golden logits).
    batches: Vec<Vec<Tensor>>,
    stages: usize,
    examples: usize,
    classes: usize,
}

impl std::fmt::Debug for QPrefixCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QPrefixCache")
            .field("batches", &self.batches.len())
            .field("stages", &self.stages)
            .field("examples", &self.examples)
            .field("classes", &self.classes)
            .finish()
    }
}

impl QPrefixCache {
    /// Runs the (clean) quantized model over `inputs` in chunks of
    /// `batch_size`, recording every stage boundary.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or `batch_size == 0`.
    pub fn build(model: &mut QuantModel, inputs: &Tensor, batch_size: usize) -> Self {
        let n = inputs.dim(0);
        assert!(n > 0, "QPrefixCache needs at least one example");
        assert!(batch_size > 0, "batch size must be positive");
        let stages = model.len();
        let example_len = inputs.len() / n;
        let mut batches = Vec::new();
        let mut classes = 0;
        let mut i = 0usize;
        while i < n {
            let end = (i + batch_size).min(n);
            let mut dims = inputs.dims().to_vec();
            dims[0] = end - i;
            let bx = Tensor::from_vec(
                inputs.data()[i * example_len..end * example_len].to_vec(),
                dims,
            );
            let mut boundary = Vec::with_capacity(stages + 1);
            boundary.push(bx);
            for s in 0..stages {
                let next = {
                    let x = &boundary[s];
                    let (_, op) = &mut model.ops[s];
                    op.forward(x)
                };
                boundary.push(next);
            }
            classes = boundary[stages].dim(1);
            batches.push(boundary);
            i = end;
        }
        QPrefixCache {
            batches,
            stages,
            examples: n,
            classes,
        }
    }

    /// Number of cached evaluation examples.
    pub fn examples(&self) -> usize {
        self.examples
    }

    /// Number of logit columns of the cached model.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of cached batches.
    pub fn num_batches(&self) -> usize {
        self.batches.len()
    }

    /// The golden boundary tensor feeding stage `l` of batch `b` (`l == 0`
    /// is the batch input; `l == stages` the golden logits) — read access
    /// for the sparse-delta evaluator.
    ///
    /// # Panics
    ///
    /// Panics if `b` or `l` is out of range.
    pub fn boundary(&self, b: usize, l: usize) -> &Tensor {
        &self.batches[b][l]
    }

    /// The golden logits over the whole evaluation set.
    pub fn golden_logits(&self) -> Tensor {
        let mut out = Vec::with_capacity(self.examples * self.classes);
        for boundary in &self.batches {
            out.extend_from_slice(boundary[self.stages].data());
        }
        Tensor::from_vec(out, [self.examples, self.classes])
    }

    /// Evaluates `model` (typically with faults applied) over the cached
    /// set, re-running only stages `start..`. `start == len` returns the
    /// golden logits outright.
    ///
    /// # Panics
    ///
    /// Panics if `model` has a different stage count than the cached one or
    /// `start` exceeds it.
    pub fn predict_from(&self, model: &mut QuantModel, start: usize) -> Tensor {
        assert_eq!(
            model.len(),
            self.stages,
            "model shape differs from cached model"
        );
        if start == self.stages {
            return self.golden_logits();
        }
        let mut out = Vec::with_capacity(self.examples * self.classes);
        for boundary in &self.batches {
            let logits = model.forward_from(start, &boundary[start]);
            out.extend_from_slice(logits.data());
        }
        Tensor::from_vec(out, [self.examples, self.classes])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdlfi_faults::{BernoulliBitFlip, BitRange, FaultMask, Repr};
    use bdlfi_nn::{mlp, predict_all, resnet18, ResNetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    fn calibrated_mlp(seed: u64) -> (Sequential, QuantModel, Tensor) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = mlp(4, &[8, 6], 3, &mut rng);
        let calib = Tensor::rand_normal([32, 4], 0.0, 1.0, &mut rng);
        let qm = quantize_model(&m, &calib, &CalibConfig::default());
        let eval = Tensor::rand_normal([10, 4], 0.0, 1.0, &mut rng);
        (m, qm, eval)
    }

    #[test]
    fn quantized_mlp_mirrors_source_structure() {
        let (m, qm, _) = calibrated_mlp(0);
        assert_eq!(qm.len(), m.len());
        assert_eq!(qm.op_names(), m.layer_names());
        assert_eq!(
            qm.op_kinds(),
            vec!["qdense", "float", "qdense", "float", "qdense"]
        );
    }

    #[test]
    fn quantized_mlp_agrees_with_f32_top1() {
        let (mut m, mut qm, eval) = calibrated_mlp(1);
        let f_logits = predict_all(&mut m, &eval, 4);
        let q_logits = qm.predict_all(&eval, 4);
        assert_eq!(f_logits.dims(), q_logits.dims());
        let agree = (0..eval.dim(0))
            .filter(|&i| {
                let row = |t: &Tensor| {
                    let c = t.dim(1);
                    (0..c)
                        .max_by(|&a, &b| {
                            t.data()[i * c + a]
                                .partial_cmp(&t.data()[i * c + b])
                                .unwrap()
                        })
                        .unwrap()
                };
                row(&f_logits) == row(&q_logits)
            })
            .count();
        // int8 PTQ on a small MLP should agree on most examples.
        assert!(agree >= 8, "only {agree}/10 top-1 agreement");
    }

    #[test]
    fn sites_enumerate_quantized_storage() {
        let (_, qm, _) = calibrated_mlp(2);
        let sites = qm.sites();
        let paths: Vec<&str> = sites.params.iter().map(|p| p.path.as_str()).collect();
        assert!(paths.contains(&"fc1.weight"));
        assert!(paths.contains(&"fc2.bias"));
        assert!(paths.contains(&"fc3.w_scale"));
        assert!(paths.contains(&"fc1.out_zp"));
        let w = sites
            .params
            .iter()
            .find(|p| p.path == "fc1.weight")
            .unwrap();
        assert_eq!(w.repr, Repr::I8);
        assert_eq!(w.len, 4 * 8);
        let b = sites.params.iter().find(|p| p.path == "fc1.bias").unwrap();
        assert_eq!(b.repr, Repr::I32Accum);
    }

    #[test]
    fn sites_matching_scopes_like_resolve_sites() {
        let (_, qm, _) = calibrated_mlp(9);
        let all = qm.sites_matching(&SiteSpec::AllParams);
        assert_eq!(all, qm.sites());

        let scoped = qm.sites_matching(&SiteSpec::LayerParams {
            prefix: "fc2".into(),
        });
        assert!(!scoped.params.is_empty());
        assert!(scoped.params.iter().all(|s| s.path.starts_with("fc2.")));

        let picked = qm.sites_matching(&SiteSpec::Params(vec!["fc1.weight".into()]));
        assert_eq!(picked.params.len(), 1);
        assert_eq!(picked.params[0].repr, Repr::I8);

        let missing = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            qm.sites_matching(&SiteSpec::LayerParams {
                prefix: "nope".into(),
            })
        }));
        assert!(missing.is_err());
    }

    #[test]
    fn apply_twice_restores_quantized_model() {
        let (_, mut qm, eval) = calibrated_mlp(3);
        let sites = qm.sites();
        let mut rng = StdRng::seed_from_u64(7);
        let fm = BernoulliBitFlip::with_bits(0.02, BitRange::all_for(Repr::I8));
        let cfg = FaultConfig::sample(&sites.params, &fm, &mut rng);
        assert!(!cfg.is_clean());
        let golden = qm.predict_all(&eval, 4);
        qm.apply(&cfg);
        let faulty = qm.predict_all(&eval, 4);
        qm.apply(&cfg);
        let restored = qm.predict_all(&eval, 4);
        assert_eq!(bits(&golden), bits(&restored));
        // With ~2% of weight bits flipped the outputs almost surely moved.
        assert_ne!(bits(&golden), bits(&faulty));
    }

    #[test]
    fn prefix_cache_resume_is_bitwise_identical() {
        let (_, mut qm, eval) = calibrated_mlp(4);
        let cache = QPrefixCache::build(&mut qm, &eval, 4);
        assert_eq!(
            bits(&cache.golden_logits()),
            bits(&qm.predict_all(&eval, 4))
        );

        for path in ["fc1.weight", "fc2.bias", "fc3.weight", "fc2.w_scale"] {
            let mut cfg = FaultConfig::clean();
            let mut mask = FaultMask::empty();
            mask.push_bit(0, 2);
            cfg.set_mask(path, mask);
            let start = qm.first_dirty_op(&cfg).unwrap();
            assert_eq!(start, qm.op_index_of_site(path).unwrap());
            qm.apply(&cfg);
            let cold = qm.predict_all(&eval, 4);
            let warm = cache.predict_from(&mut qm, start);
            assert_eq!(bits(&cold), bits(&warm), "cut at {path} (stage {start})");
            qm.apply(&cfg);
        }
        // Clean fast path.
        let len = qm.len();
        assert_eq!(
            bits(&cache.predict_from(&mut qm, len)),
            bits(&cache.golden_logits())
        );
    }

    #[test]
    fn quantized_resnet_folds_batchnorms() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = resnet18(
            ResNetConfig {
                in_channels: 3,
                base_width: 2,
                classes: 4,
            },
            &mut rng,
        );
        let calib = Tensor::rand_normal([8, 3, 8, 8], 0.0, 1.0, &mut rng);
        let mut qm = quantize_model(&m, &calib, &CalibConfig::default());
        assert_eq!(qm.len(), m.len());
        let kinds = qm.op_kinds();
        // conv1 folds bn1: stage 0 is qconv, stage 1 identity.
        assert_eq!(kinds[0], "qconv");
        assert_eq!(kinds[1], "identity");
        assert!(kinds.contains(&"qblock"));
        // Block sites include folded shortcut convolutions.
        let sites = qm.sites();
        assert!(sites
            .params
            .iter()
            .any(|p| p.path.contains(".down_conv.weight") && p.repr == Repr::I8));

        // And inference runs end to end with matching logits shape.
        let eval = Tensor::rand_normal([3, 3, 8, 8], 0.0, 1.0, &mut rng);
        let q_logits = qm.predict_all(&eval, 2);
        assert_eq!(q_logits.dims(), &[3, 4]);

        // Prefix-cache resume across a block-internal fault.
        let cache = QPrefixCache::build(&mut qm, &eval, 2);
        let mut cfg = FaultConfig::clean();
        let mut mask = FaultMask::empty();
        mask.push_bit(1, 5);
        let site = sites
            .params
            .iter()
            .find(|p| p.path.contains(".conv2.weight"))
            .unwrap();
        cfg.set_mask(&site.path, mask);
        let start = qm.first_dirty_op(&cfg).unwrap();
        assert!(start > 0, "block fault must not force a full re-run");
        qm.apply(&cfg);
        let cold = qm.predict_all(&eval, 2);
        let warm = cache.predict_from(&mut qm, start);
        assert_eq!(bits(&cold), bits(&warm));
    }

    #[test]
    fn moving_average_calibration_also_quantizes() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = mlp(4, &[6], 3, &mut rng);
        let calib = Tensor::rand_normal([40, 4], 0.0, 1.0, &mut rng);
        let qm = quantize_model(
            &m,
            &calib,
            &CalibConfig {
                batch_size: 8,
                observer: ObserverKind::MovingAverage { momentum: 0.1 },
            },
        );
        assert_eq!(qm.op_kinds()[0], "qdense");
    }

    #[test]
    fn describe_tabulates_stages() {
        let (_, qm, _) = calibrated_mlp(8);
        let d = qm.describe();
        assert!(d.contains("fc1"));
        assert!(d.contains("qdense"));
    }
}
