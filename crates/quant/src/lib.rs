//! # bdlfi-quant
//!
//! Post-training int8 quantization for the BDLFI reproduction ("Towards a
//! Bayesian Approach for Assessing Fault Tolerance of Deep Neural
//! Networks", DSN 2019) — the quantized-deployment workload.
//!
//! The paper's fault model flips bits in "memory units for storing NN
//! parameters"; deployed networks increasingly store those parameters as
//! int8, where a flipped bit moves a weight by a very different amount than
//! in IEEE-754. This crate opens that workload:
//!
//! * [`quantize_model`] — per-tensor affine post-training quantization of a
//!   trained [`bdlfi_nn::Sequential`]: symmetric int8 weights, asymmetric
//!   int8 activations calibrated by [`Observer`]s over a calibration split,
//!   i32 biases, batch norms folded into their preceding convolutions;
//! * [`QuantModel`] — integer inference on the blocked
//!   `i8 × i8 → i32` GEMM ([`bdlfi_tensor::qgemm`]) with fixed-point
//!   requantization ([`Requant`]), stage-aligned one-to-one with the source
//!   model so prefix-cache cut indices carry over;
//! * representation-aware fault sites ([`QuantModel::sites`]): int8 weight
//!   bytes, i32 bias words and quantization parameters, each tagged with
//!   its [`bdlfi_faults::Repr`] so the fault models flip within the right
//!   word width;
//! * [`QPrefixCache`] — golden boundary activations for incremental suffix
//!   re-inference, bit-identical between cold and resumed runs.

#![warn(missing_docs)]

mod model;
mod observer;
mod qops;
mod qparams;

pub use model::{quantize_model, CalibConfig, QPrefixCache, QuantModel};
pub use observer::{Observer, ObserverKind};
pub use qops::{quantize_weights, quantize_weights_grouped, QBlock, QConv, QDense, QOp, QSlice};
pub use qparams::{
    dequant_acc, requant_channel_into, requant_rows_into, QParams, Requant, QMAX, QMIN, WMAX,
};
