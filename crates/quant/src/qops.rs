//! Quantized operators: integer dense and convolution kernels, the
//! quantized residual block, and the [`QOp`] sum type the
//! [`crate::QuantModel`] pipelines.
//!
//! Every operator keeps the QDQ (quantize–dequantize) contract: tensors at
//! op boundaries are `f32`, integer arithmetic lives strictly inside an op.
//! The inner product runs on the selector-dispatched `i8 × i8 → i32` GEMM
//! ([`bdlfi_tensor::qgemm`]); zero-point corrections and bias addition
//! happen in `i64`, and per-output-channel fixed-point [`Requant`]
//! multipliers map accumulators onto the output grid through the batched
//! helpers in [`crate::qparams`].
//!
//! Weights carry **per-channel symmetric scales** (one f32 per output
//! column of a dense layer, one per output channel of a convolution): each
//! channel uses its own max-abs grid, so one outlier channel no longer
//! dilates every other channel's step size. A fault flipping `w_scale[c]`
//! consequently perturbs only output channel `c` — the requantizer is the
//! only consumer of the scale — which is also what lets the sparse-delta
//! path handle weight-scale faults column-sparsely.
//!
//! Zero-point column/row sums and the per-channel requantizers are
//! recomputed on **every** forward pass rather than cached at calibration
//! time: a fault flipping a weight byte or scale must change the
//! correction exactly as real hardware reading the faulted value would.

use crate::qparams::{requant_channel_into, requant_rows_into, QParams, Requant, WMAX};
use bdlfi_faults::Repr;
use bdlfi_nn::layers::{BatchNorm2d, Conv2d, Dense};
use bdlfi_nn::Layer;
use bdlfi_tensor::{qgemm, scratch, Conv2dSpec, I32Tensor, I8Tensor, Tensor};

/// One mutable integer/float storage region of a quantized op, handed to
/// fault-application visitors.
pub enum QSlice<'a> {
    /// int8 weight storage.
    I8(&'a mut [i8]),
    /// i32 bias / accumulator-domain storage.
    I32(&'a mut [i32]),
    /// f32 quantization-parameter storage.
    F32(&'a mut [f32]),
}

/// The stored representation behind a [`QSlice`] variant.
impl QSlice<'_> {
    /// The fault-model representation of this storage region.
    pub fn repr(&self) -> Repr {
        match self {
            QSlice::I8(_) => Repr::I8,
            QSlice::I32(_) => Repr::I32Accum,
            QSlice::F32(_) => Repr::F32,
        }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        match self {
            QSlice::I8(s) => s.len(),
            QSlice::I32(s) => s.len(),
            QSlice::F32(s) => s.len(),
        }
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn join(path: &str, name: &str) -> String {
    if path.is_empty() {
        name.to_string()
    } else {
        format!("{path}.{name}")
    }
}

/// Symmetric int8 weight quantization: returns the quantized values and the
/// per-tensor scale.
pub fn quantize_weights(data: &[f32]) -> (Vec<i8>, f32) {
    let max_abs = data
        .iter()
        .filter(|v| v.is_finite())
        .fold(0.0f32, |m, &v| m.max(v.abs()));
    let qp = QParams::symmetric(max_abs);
    let q = data
        .iter()
        .map(|&w| {
            ((w as f64 / qp.scale as f64).round() as i64).clamp(-(WMAX as i64), WMAX as i64) as i8
        })
        .collect();
    (q, qp.scale)
}

/// Per-channel symmetric int8 weight quantization: element `i` belongs to
/// channel `channel_of(i)` and is quantized on that channel's own max-abs
/// grid. Returns the quantized values and one scale per channel.
///
/// The index map covers both storage layouts in use: a dense `(in, out)`
/// matrix passes `|i| i % out` (channels are columns), a conv
/// `(out_c, in_c·kh·kw)` tensor passes `|i| i / per_ch` (channels are
/// contiguous rows).
pub fn quantize_weights_grouped(
    data: &[f32],
    channels: usize,
    channel_of: impl Fn(usize) -> usize,
) -> (Vec<i8>, Vec<f32>) {
    let mut max_abs = vec![0.0f32; channels];
    for (i, &v) in data.iter().enumerate() {
        if v.is_finite() {
            let m = &mut max_abs[channel_of(i)];
            *m = m.max(v.abs());
        }
    }
    let scales: Vec<f32> = max_abs
        .iter()
        .map(|&m| QParams::symmetric(m).scale)
        .collect();
    let q = data
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let s = scales[channel_of(i)];
            ((w as f64 / s as f64).round() as i64).clamp(-(WMAX as i64), WMAX as i64) as i8
        })
        .collect();
    (q, scales)
}

fn quantize_bias(data: &[f32], in_scale: f32, w_scales: &[f32]) -> Vec<i32> {
    data.iter()
        .zip(w_scales)
        .map(|(&b, &ws)| {
            let s = in_scale as f64 * ws as f64;
            (b as f64 / s).round() as i32
        })
        .collect()
}

/// A quantized fully connected layer: int8 weight `(in, out)`, i32 bias
/// `(out,)`, per-output-column weight scales, input/output activation
/// grids.
#[derive(Debug, Clone)]
pub struct QDense {
    weight: I8Tensor,
    bias: I32Tensor,
    w_scales: Vec<f32>,
    in_qp: QParams,
    out_qp: QParams,
}

impl QDense {
    /// Quantizes a trained [`Dense`] layer given calibrated input/output
    /// activation parameters. Weights are quantized per output column.
    pub fn from_dense(layer: &Dense, in_qp: QParams, out_qp: QParams) -> Self {
        let out = layer.out_dim();
        let (qw, w_scales) = quantize_weights_grouped(layer.weight().data(), out, |i| i % out);
        let qb = quantize_bias(layer.bias().data(), in_qp.scale, &w_scales);
        QDense {
            weight: I8Tensor::from_vec(qw, [layer.in_dim(), out]),
            bias: I32Tensor::from_vec(qb, [out]),
            w_scales,
            in_qp,
            out_qp,
        }
    }

    /// Per-column requantizers, rebuilt from the (possibly faulted) scales
    /// on every pass so a scale fault is visible exactly like hardware
    /// reading the faulted value would see it.
    fn requants(&self) -> Vec<Requant> {
        self.w_scales
            .iter()
            .map(|&ws| Requant::from_scales(self.in_qp.scale, ws, self.out_qp.scale))
            .collect()
    }

    /// Integer forward pass over a `(n, in)` f32 batch.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let n = input.dim(0);
        let k = self.weight.dim(0);
        let out = self.weight.dim(1);
        assert_eq!(input.dim(1), k, "qdense input width mismatch");

        // Campaigns run this pass thousands of times per second; the
        // quantized input and the accumulator come from the thread-local
        // scratch pools instead of fresh allocations.
        let mut qx = scratch::take::<i8>(n * k);
        self.in_qp.quantize_slice_to(input.data(), &mut qx);
        let mut acc = scratch::take::<i32>(n * out);
        qgemm(n, out, k, &qx, self.weight.data(), &mut acc);

        // Zero-point correction: Σₖ (qx−zp)·w = acc − zp·Σₖ w, recomputed
        // from the (possibly faulted) weights each pass. Accumulated in
        // i32 — exact for any i8 weights, faulted or not, since
        // |Σₖ w| ≤ k·128 ≪ 2³¹ — so the widening sums autovectorize.
        let mut colsum = vec![0i32; out];
        for row in self.weight.data().chunks_exact(out) {
            for (cs, &w) in colsum.iter_mut().zip(row) {
                *cs += w as i32;
            }
        }
        let rqs = self.requants();
        let zp_in = self.in_qp.zero_point as i64;
        let corrs: Vec<i64> = self
            .bias
            .data()
            .iter()
            .zip(&colsum)
            .map(|(&b, &cs)| b as i64 - zp_in * cs as i64)
            .collect();
        let mut y = Vec::with_capacity(n * out);
        requant_rows_into(
            &acc,
            out,
            &rqs,
            &corrs,
            self.out_qp.zero_point,
            self.out_qp.scale,
            &mut y,
        );
        Tensor::from_vec(y, [n, out])
    }

    /// Output width (weight columns).
    pub fn out_dim(&self) -> usize {
        self.weight.dim(1)
    }

    /// Recomputes only the output columns `cols` of the integer forward
    /// pass, returning an `(n, cols.len())` tensor whose column `c` is
    /// bit-identical to column `cols[c]` of [`QDense::forward`] on the same
    /// input — the int8 twin of `Dense::forward_cols`.
    ///
    /// Exactness is structural here: integer accumulation is associative,
    /// the zero-point column sum, bias, weight scale and requantizer are
    /// all per-column, and the requantize/dequantize chain is per-element,
    /// so a weight byte, bias word **or weight-scale** fault perturbs
    /// exactly its own output column. (Faults on `out_zp` still reach
    /// every column through the shared output grid — callers must fall
    /// back to the full pass for those.)
    ///
    /// # Panics
    ///
    /// Panics if the input width mismatches or a column index is out of
    /// range.
    pub fn forward_cols(&self, input: &Tensor, cols: &[usize]) -> Tensor {
        let n = input.dim(0);
        let k = self.weight.dim(0);
        let out = self.weight.dim(1);
        assert_eq!(input.dim(1), k, "qdense input width mismatch");
        assert!(cols.iter().all(|&c| c < out), "column index out of range");

        let mut qx = scratch::take::<i8>(n * k);
        self.in_qp.quantize_slice_to(input.data(), &mut qx);
        let m = cols.len();
        let w = self.weight.data();
        let mut wsub = Vec::with_capacity(k * m);
        for r in 0..k {
            let row = &w[r * out..(r + 1) * out];
            wsub.extend(cols.iter().map(|&c| row[c]));
        }
        let mut acc = scratch::take::<i32>(n * m);
        qgemm(n, m, k, &qx, &wsub, &mut acc);

        let mut colsum = vec![0i32; m];
        for row in wsub.chunks_exact(m) {
            for (cs, &w) in colsum.iter_mut().zip(row) {
                *cs += w as i32;
            }
        }
        // Gather the per-column requantizers/corrections for exactly the
        // requested columns: same constructors, same order of operations
        // as the full pass (the i32 column sum is exact either way),
        // hence bit-identical columns.
        let zp_in = self.in_qp.zero_point as i64;
        let rqs: Vec<Requant> = cols
            .iter()
            .map(|&c| Requant::from_scales(self.in_qp.scale, self.w_scales[c], self.out_qp.scale))
            .collect();
        let corrs: Vec<i64> = cols
            .iter()
            .zip(&colsum)
            .map(|(&c, &cs)| self.bias.data()[c] as i64 - zp_in * cs as i64)
            .collect();
        let mut y = Vec::with_capacity(n * m);
        requant_rows_into(
            &acc,
            m,
            &rqs,
            &corrs,
            self.out_qp.zero_point,
            self.out_qp.scale,
            &mut y,
        );
        Tensor::from_vec(y, [n, m])
    }

    fn visit_sites(&self, path: &str, f: &mut dyn FnMut(&str, Repr, usize)) {
        f(&join(path, "weight"), Repr::I8, self.weight.len());
        f(&join(path, "bias"), Repr::I32Accum, self.bias.len());
        f(&join(path, "w_scale"), Repr::F32, self.w_scales.len());
        f(&join(path, "out_zp"), Repr::I32Accum, 1);
    }

    fn visit_slices(&mut self, path: &str, f: &mut dyn FnMut(&str, QSlice)) {
        f(&join(path, "weight"), QSlice::I8(self.weight.data_mut()));
        f(&join(path, "bias"), QSlice::I32(self.bias.data_mut()));
        f(&join(path, "w_scale"), QSlice::F32(&mut self.w_scales));
        f(
            &join(path, "out_zp"),
            QSlice::I32(std::slice::from_mut(&mut self.out_qp.zero_point)),
        );
    }
}

/// A quantized 2-D convolution (batch-norm folded in where applicable):
/// int8 weight `(out_c, in_c, kh, kw)`, i32 bias `(out_c,)`,
/// per-output-channel weight scales.
#[derive(Debug, Clone)]
pub struct QConv {
    weight: I8Tensor,
    bias: I32Tensor,
    w_scales: Vec<f32>,
    in_qp: QParams,
    out_qp: QParams,
    spec: Conv2dSpec,
}

impl QConv {
    /// Quantizes a trained [`Conv2d`], optionally folding a following
    /// eval-mode [`BatchNorm2d`] into the weights and bias first.
    pub fn from_conv(
        layer: &Conv2d,
        bn: Option<&BatchNorm2d>,
        in_qp: QParams,
        out_qp: QParams,
    ) -> Self {
        let w = layer.weight();
        let out_c = w.dim(0);
        let per_ch = w.len() / out_c;
        let mut wf = w.data().to_vec();
        let mut bf = match layer.bias_value() {
            Some(b) => b.data().to_vec(),
            None => vec![0.0; out_c],
        };
        if let Some(bn) = bn {
            assert_eq!(bn.channels(), out_c, "bn folding channel mismatch");
            for (oc, (scale, shift)) in bn.fold_params().into_iter().enumerate() {
                for v in &mut wf[oc * per_ch..(oc + 1) * per_ch] {
                    *v *= scale;
                }
                bf[oc] = bf[oc] * scale + shift;
            }
        }
        // Channels are contiguous `per_ch`-long rows of the folded weight
        // tensor; BN folding above is exactly why per-channel scales pay
        // off — the fold multiplies each channel by its own factor.
        let (qw, w_scales) = quantize_weights_grouped(&wf, out_c, |i| i / per_ch);
        let qb = quantize_bias(&bf, in_qp.scale, &w_scales);
        QConv {
            weight: I8Tensor::from_vec(qw, w.dims().to_vec()),
            bias: I32Tensor::from_vec(qb, [out_c]),
            w_scales,
            in_qp,
            out_qp,
            spec: layer.spec(),
        }
    }

    /// Integer forward pass over an NCHW f32 batch.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        let out_c = self.weight.dim(0);
        assert_eq!(c, self.weight.dim(1), "qconv channel mismatch");
        let (kh, kw) = self.spec.kernel;
        let (oh, ow) = self.spec.output_hw(h, w);
        let k = c * kh * kw;
        let npix = oh * ow;

        let mut qx = scratch::take::<i8>(input.len());
        self.in_qp.quantize_slice_to(input.data(), &mut qx);
        // Padding is filled with the quantized representation of real zero.
        let pad_val = self.in_qp.quantize(0.0);

        // Per-output-channel weight sums for the zero-point correction,
        // and per-channel requantizers from the (possibly faulted) scales.
        let mut rowsum = vec![0i64; out_c];
        for (oc, row) in self.weight.data().chunks_exact(k).enumerate() {
            rowsum[oc] = row.iter().map(|&v| v as i64).sum();
        }
        let rqs: Vec<Requant> = self
            .w_scales
            .iter()
            .map(|&ws| Requant::from_scales(self.in_qp.scale, ws, self.out_qp.scale))
            .collect();
        let zp_in = self.in_qp.zero_point as i64;
        let zp_out = self.out_qp.zero_point;

        let img_len = c * h * w;
        let mut col = scratch::take::<i8>(k * npix);
        let mut acc = scratch::take::<i32>(out_c * npix);
        let mut y = Vec::with_capacity(n * out_c * npix);
        for img in 0..n {
            im2col_i8(
                &qx[img * img_len..(img + 1) * img_len],
                c,
                h,
                w,
                self.spec,
                pad_val,
                &mut col,
            );
            acc.iter_mut().for_each(|v| *v = 0);
            qgemm(out_c, npix, k, self.weight.data(), &col, &mut acc);
            for oc in 0..out_c {
                let corr = self.bias.data()[oc] as i64 - zp_in * rowsum[oc];
                requant_channel_into(
                    &acc[oc * npix..(oc + 1) * npix],
                    &rqs[oc],
                    corr,
                    zp_out,
                    self.out_qp.scale,
                    &mut y,
                );
            }
        }
        Tensor::from_vec(y, [n, out_c, oh, ow])
    }

    fn visit_sites(&self, path: &str, f: &mut dyn FnMut(&str, Repr, usize)) {
        f(&join(path, "weight"), Repr::I8, self.weight.len());
        f(&join(path, "bias"), Repr::I32Accum, self.bias.len());
        f(&join(path, "w_scale"), Repr::F32, self.w_scales.len());
        f(&join(path, "out_zp"), Repr::I32Accum, 1);
    }

    fn visit_slices(&mut self, path: &str, f: &mut dyn FnMut(&str, QSlice)) {
        f(&join(path, "weight"), QSlice::I8(self.weight.data_mut()));
        f(&join(path, "bias"), QSlice::I32(self.bias.data_mut()));
        f(&join(path, "w_scale"), QSlice::F32(&mut self.w_scales));
        f(
            &join(path, "out_zp"),
            QSlice::I32(std::slice::from_mut(&mut self.out_qp.zero_point)),
        );
    }
}

/// int8 im2col over one CHW image into a `(c·kh·kw, oh·ow)` row-major
/// matrix, mirroring the f32 layout in `bdlfi_tensor::ops::conv`. Padded
/// positions are filled with `pad_val` (the quantized zero).
fn im2col_i8(
    img: &[i8],
    c: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
    pad_val: i8,
    out: &mut [i8],
) {
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let (oh, ow) = spec.output_hw(h, w);
    let npix = oh * ow;
    debug_assert_eq!(out.len(), c * kh * kw * npix);
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let dst = &mut out[row * npix..(row + 1) * npix];
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * sh + ki) as isize - ph as isize;
                    if iy < 0 || iy >= h as isize {
                        dst[idx..idx + ow].fill(pad_val);
                        idx += ow;
                        continue;
                    }
                    let base = (ci * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * sw + kj) as isize - pw as isize;
                        dst[idx] = if ix < 0 || ix >= w as isize {
                            pad_val
                        } else {
                            img[base + ix as usize]
                        };
                        idx += 1;
                    }
                }
            }
        }
    }
}

fn relu_inplace(t: &mut Tensor) {
    for v in t.data_mut() {
        *v = v.max(0.0);
    }
}

/// A quantized ResNet basic block: both 3×3 convolutions carry their batch
/// norms folded in; the element-wise add and ReLUs run in f32 at op
/// boundaries (QDQ contract).
#[derive(Debug, Clone)]
pub struct QBlock {
    /// First folded convolution (`conv1`+`bn1`).
    pub conv1: QConv,
    /// Second folded convolution (`conv2`+`bn2`).
    pub conv2: QConv,
    /// Folded projection shortcut (`down_conv`+`down_bn`), if the block
    /// projects.
    pub down: Option<QConv>,
}

impl QBlock {
    /// Forward pass mirroring
    /// `relu(bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x))` with the batch
    /// norms folded into the integer convolutions.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let mut h = self.conv1.forward(input);
        relu_inplace(&mut h);
        let z = self.conv2.forward(&h);
        let shortcut = match &self.down {
            Some(d) => d.forward(input),
            None => input.clone(),
        };
        let mut out = z.add_t(&shortcut);
        relu_inplace(&mut out);
        out
    }

    fn visit_sites(&self, path: &str, f: &mut dyn FnMut(&str, Repr, usize)) {
        self.conv1.visit_sites(&join(path, "conv1"), f);
        self.conv2.visit_sites(&join(path, "conv2"), f);
        if let Some(d) = &self.down {
            d.visit_sites(&join(path, "down_conv"), f);
        }
    }

    fn visit_slices(&mut self, path: &str, f: &mut dyn FnMut(&str, QSlice)) {
        self.conv1.visit_slices(&join(path, "conv1"), f);
        self.conv2.visit_slices(&join(path, "conv2"), f);
        if let Some(d) = &mut self.down {
            d.visit_slices(&join(path, "down_conv"), f);
        }
    }
}

/// One pipeline stage of a [`crate::QuantModel`], mirroring the source
/// [`bdlfi_nn::Sequential`]'s top-level layers one-to-one so prefix-cache
/// cut indices line up between the f32 and int8 graphs.
pub enum QOp {
    /// Quantized dense layer.
    Dense(QDense),
    /// Quantized convolution (possibly with a folded batch norm).
    Conv(QConv),
    /// Quantized residual block.
    Block(Box<QBlock>),
    /// A batch norm that was folded into the preceding convolution: the
    /// stage passes its input through unchanged.
    Identity,
    /// A layer with no integer kernel (ReLU, pooling, flatten, softmax, …)
    /// running in f32 exactly as in the source model.
    Float(Box<dyn Layer>),
}

impl Clone for QOp {
    fn clone(&self) -> Self {
        match self {
            QOp::Dense(d) => QOp::Dense(d.clone()),
            QOp::Conv(c) => QOp::Conv(c.clone()),
            QOp::Block(b) => QOp::Block(b.clone()),
            QOp::Identity => QOp::Identity,
            QOp::Float(l) => QOp::Float(l.clone_box()),
        }
    }
}

impl std::fmt::Debug for QOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QOp::Dense(_) => write!(f, "QOp::Dense"),
            QOp::Conv(_) => write!(f, "QOp::Conv"),
            QOp::Block(b) => write!(f, "QOp::Block(projection={})", b.down.is_some()),
            QOp::Identity => write!(f, "QOp::Identity"),
            QOp::Float(l) => write!(f, "QOp::Float({})", l.kind()),
        }
    }
}

impl QOp {
    /// Short machine-readable stage kind.
    pub fn kind(&self) -> &'static str {
        match self {
            QOp::Dense(_) => "qdense",
            QOp::Conv(_) => "qconv",
            QOp::Block(_) => "qblock",
            QOp::Identity => "identity",
            QOp::Float(_) => "float",
        }
    }

    /// The stage as a quantized dense layer, when it is one — the only
    /// stage kind the sparse-delta evaluator handles natively (every other
    /// kind fans a single-site fault out across channels, so callers fall
    /// back to the exact full pass).
    pub fn as_dense(&self) -> Option<&QDense> {
        match self {
            QOp::Dense(d) => Some(d),
            _ => None,
        }
    }

    /// Runs the stage on an f32 boundary tensor.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        match self {
            QOp::Dense(d) => d.forward(input),
            QOp::Conv(c) => c.forward(input),
            QOp::Block(b) => b.forward(input),
            QOp::Identity => input.clone(),
            QOp::Float(l) => l.forward(input, &mut bdlfi_nn::ForwardCtx::new(bdlfi_nn::Mode::Eval)),
        }
    }

    /// Enumerates the stage's fault sites as `(path, repr, len)`.
    pub fn visit_sites(&self, path: &str, f: &mut dyn FnMut(&str, Repr, usize)) {
        match self {
            QOp::Dense(d) => d.visit_sites(path, f),
            QOp::Conv(c) => c.visit_sites(path, f),
            QOp::Block(b) => b.visit_sites(path, f),
            QOp::Identity | QOp::Float(_) => {}
        }
    }

    /// Visits the stage's mutable storage regions for fault application.
    pub fn visit_slices(&mut self, path: &str, f: &mut dyn FnMut(&str, QSlice)) {
        match self {
            QOp::Dense(d) => d.visit_slices(path, f),
            QOp::Conv(c) => c.visit_slices(path, f),
            QOp::Block(b) => b.visit_slices(path, f),
            QOp::Identity | QOp::Float(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdlfi_nn::layers::Relu;
    use bdlfi_nn::{ForwardCtx, Mode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn approx_qparams(t: &Tensor) -> QParams {
        let min = t.data().iter().cloned().fold(f32::INFINITY, f32::min);
        let max = t.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        QParams::from_range(min, max)
    }

    #[test]
    fn qdense_tracks_float_dense_within_quant_error() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(6, 4, &mut rng);
        let x = Tensor::rand_normal([8, 6], 0.0, 1.0, &mut rng);
        let want = d.forward(&x, &mut ForwardCtx::new(Mode::Eval));
        let qd = QDense::from_dense(&d, approx_qparams(&x), approx_qparams(&want));
        let got = qd.forward(&x);
        assert_eq!(got.dims(), want.dims());
        let span = {
            let min = want.data().iter().cloned().fold(f32::INFINITY, f32::min);
            let max = want
                .data()
                .iter()
                .cloned()
                .fold(f32::NEG_INFINITY, f32::max);
            max - min
        };
        for (g, w) in got.data().iter().zip(want.data()) {
            // Worst-case error of an 8-bit grid plus accumulation slack.
            assert!((g - w).abs() <= span * 0.05 + 0.05, "{g} vs {w}");
        }
    }

    #[test]
    fn qconv_tracks_float_conv_within_quant_error() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = Conv2d::new(3, 5, Conv2dSpec::new(3).with_padding(1), &mut rng);
        let x = Tensor::rand_normal([2, 3, 6, 6], 0.0, 1.0, &mut rng);
        let want = c.forward(&x, &mut ForwardCtx::new(Mode::Eval));
        let qc = QConv::from_conv(&c, None, approx_qparams(&x), approx_qparams(&want));
        let got = qc.forward(&x);
        assert_eq!(got.dims(), want.dims());
        let span = {
            let min = want.data().iter().cloned().fold(f32::INFINITY, f32::min);
            let max = want
                .data()
                .iter()
                .cloned()
                .fold(f32::NEG_INFINITY, f32::max);
            max - min
        };
        for (g, w) in got.data().iter().zip(want.data()) {
            assert!((g - w).abs() <= span * 0.05 + 0.05, "{g} vs {w}");
        }
    }

    #[test]
    fn bn_folding_matches_conv_then_bn() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = Conv2d::without_bias(2, 4, Conv2dSpec::new(3).with_padding(1), &mut rng);
        let mut bn = BatchNorm2d::new(4);
        // Give the batch norm non-trivial running statistics.
        let warm = Tensor::rand_normal([4, 4, 5, 5], 0.3, 1.5, &mut rng);
        bn.forward(&warm, &mut ForwardCtx::new(Mode::Train));
        let x = Tensor::rand_normal([2, 2, 5, 5], 0.0, 1.0, &mut rng);
        let mid = c.forward(&x, &mut ForwardCtx::new(Mode::Eval));
        let want = bn.forward(&mid, &mut ForwardCtx::new(Mode::Eval));
        let qc = QConv::from_conv(&c, Some(&bn), approx_qparams(&x), approx_qparams(&want));
        let got = qc.forward(&x);
        let span = {
            let min = want.data().iter().cloned().fold(f32::INFINITY, f32::min);
            let max = want
                .data()
                .iter()
                .cloned()
                .fold(f32::NEG_INFINITY, f32::max);
            max - min
        };
        for (g, w) in got.data().iter().zip(want.data()) {
            assert!((g - w).abs() <= span * 0.05 + 0.05, "{g} vs {w}");
        }
    }

    #[test]
    fn im2col_i8_matches_naive_gather() {
        let spec = Conv2dSpec::new(3).with_padding(1).with_stride(2);
        let (c, h, w) = (2usize, 5usize, 5usize);
        let img: Vec<i8> = (0..(c * h * w) as i32)
            .map(|v| (v % 120) as i8 - 50)
            .collect();
        let (oh, ow) = spec.output_hw(h, w);
        let k = c * 9;
        let mut col = vec![0i8; k * oh * ow];
        im2col_i8(&img, c, h, w, spec, -7, &mut col);
        for ci in 0..c {
            for ki in 0..3 {
                for kj in 0..3 {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let iy = (oy * 2 + ki) as isize - 1;
                            let ix = (ox * 2 + kj) as isize - 1;
                            let want = if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                -7
                            } else {
                                img[(ci * h + iy as usize) * w + ix as usize]
                            };
                            let row = (ci * 3 + ki) * 3 + kj;
                            let got = col[row * (oh * ow) + oy * ow + ox];
                            assert_eq!(got, want);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn qop_sites_enumerate_all_representations() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Dense::new(3, 2, &mut rng);
        let op = QOp::Dense(QDense::from_dense(&d, QParams::unit(), QParams::unit()));
        let mut sites = Vec::new();
        op.visit_sites("fc1", &mut |p, r, l| sites.push((p.to_string(), r, l)));
        assert_eq!(
            sites,
            vec![
                ("fc1.weight".into(), Repr::I8, 6),
                ("fc1.bias".into(), Repr::I32Accum, 2),
                // One weight scale per output column now.
                ("fc1.w_scale".into(), Repr::F32, 2),
                ("fc1.out_zp".into(), Repr::I32Accum, 1),
            ]
        );
    }

    #[test]
    fn per_channel_scales_follow_each_channels_magnitude() {
        // One huge column must not dilate the grid of the small column.
        let data = [10.0f32, 0.01, -20.0, 0.02, 5.0, -0.015];
        let (q, scales) = quantize_weights_grouped(&data, 2, |i| i % 2);
        assert_eq!(scales.len(), 2);
        assert!((scales[0] - 20.0 / 127.0).abs() < 1e-6);
        assert!((scales[1] - 0.02 / 127.0).abs() < 1e-7);
        // The small channel keeps full resolution on its own grid
        // (step ≈ 0.000157); per-tensor it would share the 20.0-channel's
        // grid (step ≈ 0.157) and collapse to 0.
        assert_eq!(q[1], 63); // 0.01 / (0.02/127) ≈ 63.5 (just under, in f32)
        assert_eq!(q[3], 127);
        assert_eq!(q[5], -95);
    }

    #[test]
    fn w_scale_fault_is_confined_to_its_column() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut d = Dense::new(6, 4, &mut rng);
        let x = Tensor::rand_normal([5, 6], 0.0, 1.0, &mut rng);
        let want = d.forward(&x, &mut ForwardCtx::new(Mode::Eval));
        let mut qd = QDense::from_dense(&d, approx_qparams(&x), approx_qparams(&want));
        let golden = qd.forward(&x);
        // Corrupt the scale of column 2 only.
        qd.visit_slices("fc", &mut |p, s| {
            if p == "fc.w_scale" {
                if let QSlice::F32(ws) = s {
                    ws[2] *= 64.0;
                }
            }
        });
        let faulted = qd.forward(&x);
        let mut changed = [false; 4];
        for (g, f) in golden.data().chunks(4).zip(faulted.data().chunks(4)) {
            for j in 0..4 {
                if g[j].to_bits() != f[j].to_bits() {
                    changed[j] = true;
                }
            }
        }
        assert!(changed[2], "the faulted column must actually change");
        assert_eq!(&changed[..2], &[false, false], "fault leaked to column");
        assert!(!changed[3], "fault leaked to column 3");
        // And forward_cols stays bit-identical per column under the fault.
        let sub = qd.forward_cols(&x, &[1, 2]);
        for i in 0..5 {
            assert_eq!(
                sub.data()[i * 2].to_bits(),
                faulted.data()[i * 4 + 1].to_bits()
            );
            assert_eq!(
                sub.data()[i * 2 + 1].to_bits(),
                faulted.data()[i * 4 + 2].to_bits()
            );
        }
    }

    #[test]
    fn float_op_wraps_unquantized_layers() {
        let mut op = QOp::Float(Box::new(Relu::new()));
        let x = Tensor::from_vec(vec![-1.0, 2.0], [1, 2]);
        assert_eq!(op.forward(&x).data(), &[0.0, 2.0]);
        let mut count = 0;
        op.visit_sites("r", &mut |_, _, _| count += 1);
        assert_eq!(count, 0);
    }
}
