//! Per-tensor affine quantization parameters and the fixed-point
//! requantization pipeline.
//!
//! The scheme is the standard deployment recipe (Jacob et al., "Quantization
//! and Training of Neural Networks for Efficient Integer-Arithmetic-Only
//! Inference", CVPR 2018): asymmetric int8 activations, symmetric int8
//! weights, i32 accumulators, and a per-layer fixed-point multiplier that
//! rescales accumulators back to the output's int8 grid without touching
//! floating point on the hot path.

use serde::{Deserialize, Serialize};

/// Quantized integer range for activations (full int8).
pub const QMIN: i32 = -128;
/// Upper end of the activation range.
pub const QMAX: i32 = 127;
/// Weights are clamped to the symmetric range `[-127, 127]` so that
/// `-w` is always representable.
pub const WMAX: i32 = 127;

/// Per-tensor affine quantization: `real ≈ (q - zero_point) * scale`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QParams {
    /// Step size of the integer grid.
    pub scale: f32,
    /// Integer representing real zero.
    pub zero_point: i32,
}

impl QParams {
    /// The identity-ish default used before calibration: unit scale, zero
    /// offset.
    pub fn unit() -> Self {
        QParams {
            scale: 1.0,
            zero_point: 0,
        }
    }

    /// Asymmetric activation parameters covering `[min, max]` with the full
    /// int8 range. The interval is widened to include zero so that padding
    /// and ReLU zeros are exactly representable.
    pub fn from_range(min: f32, max: f32) -> Self {
        let min = min.min(0.0);
        let max = max.max(0.0);
        let span = (max - min) as f64;
        if !(span.is_finite()) || span <= 0.0 {
            return QParams::unit();
        }
        let scale = span / (QMAX - QMIN) as f64;
        let zp = (QMIN as f64 - min as f64 / scale).round() as i64;
        QParams {
            scale: scale as f32,
            zero_point: zp.clamp(QMIN as i64, QMAX as i64) as i32,
        }
    }

    /// Symmetric weight parameters for a tensor with largest magnitude
    /// `max_abs`: zero point 0, scale `max_abs / 127`.
    pub fn symmetric(max_abs: f32) -> Self {
        if !max_abs.is_finite() || max_abs <= 0.0 {
            return QParams::unit();
        }
        QParams {
            scale: max_abs / WMAX as f32,
            zero_point: 0,
        }
    }

    /// Quantizes one real value onto the int8 grid (round-to-nearest,
    /// saturating). Non-finite inputs map through Rust's saturating `as`
    /// casts (`NaN → 0`), keeping faulted tensors well-defined.
    pub fn quantize(&self, x: f32) -> i8 {
        let q = (x as f64 / self.scale as f64).round() as i64;
        (q.saturating_add(self.zero_point as i64)).clamp(QMIN as i64, QMAX as i64) as i8
    }

    /// Reconstructs the real value of a quantized element.
    pub fn dequantize(&self, q: i8) -> f32 {
        ((q as i64 - self.zero_point as i64) as f64 * self.scale as f64) as f32
    }
}

/// Requantization of an i32/i64 accumulator onto an int8 output grid:
/// multiply by the effective scale `in_scale * w_scale / out_scale` and
/// round.
///
/// The deployment path is [`Requant::Fixed`]: the real multiplier `m ∈ (0,
/// 1]`-ish is decomposed as `m = f · 2^e` with `f ∈ [0.5, 1)`, stored as a
/// Q31 integer `mult = round(f · 2³¹)` and a right shift — the accumulator
/// product then needs only integer arithmetic. Degenerate multipliers (a
/// fault flipping a scale to `NaN`, `inf`, zero or negative, or an exponent
/// outside the shift range) fall back to [`Requant::Float`], which is
/// deterministic under Rust's saturating float→int casts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Requant {
    /// Fixed-point path: `round(acc * mult / 2³¹⁺ᵉ)` via a Q31 multiply and
    /// rounding right shift.
    Fixed {
        /// Q31 mantissa in `[2³⁰, 2³¹)`.
        mult: i32,
        /// Total rounding right shift (`31 - e`).
        rshift: u32,
    },
    /// Double-precision fallback for degenerate multipliers.
    Float(f64),
}

impl Requant {
    /// Builds the requantizer for effective multiplier
    /// `in_scale * w_scale / out_scale`.
    pub fn from_scales(in_scale: f32, w_scale: f32, out_scale: f32) -> Self {
        let m = in_scale as f64 * w_scale as f64 / out_scale as f64;
        Requant::from_multiplier(m)
    }

    /// Decomposes `m` into the Q31 fixed-point form, or falls back to the
    /// float path when `m` is not a positive normal number or its exponent
    /// cannot be expressed as a right shift.
    pub fn from_multiplier(m: f64) -> Self {
        if !m.is_finite() || m <= 0.0 {
            return Requant::Float(m);
        }
        let bits = m.to_bits();
        let exp_field = ((bits >> 52) & 0x7ff) as i32;
        if exp_field == 0 {
            // Subnormal: effectively zero at int8 precision.
            return Requant::Float(m);
        }
        // m = f · 2^e with f ∈ [0.5, 1): force the exponent field to
        // `1022` (the biased exponent of 0.5) keeping the mantissa bits.
        let e = exp_field - 1022;
        let f = f64::from_bits((bits & !(0x7ffu64 << 52)) | (1022u64 << 52));
        let mut mult = (f * (1u64 << 31) as f64).round() as i64;
        let mut e = e;
        if mult == 1i64 << 31 {
            // f rounded up to 1.0: renormalise.
            mult >>= 1;
            e += 1;
        }
        let rshift = 31 - e;
        if !(1..=62).contains(&rshift) {
            // Multiplier ≥ 2³⁰ or vanishingly small: outside the shift
            // budget of the integer path.
            return Requant::Float(m);
        }
        Requant::Fixed {
            mult: mult as i32,
            rshift: rshift as u32,
        }
    }

    /// Rescales an accumulator: `round(acc * m)`, saturating to `i32`.
    pub fn apply(&self, acc: i64) -> i32 {
        match *self {
            Requant::Fixed { mult, rshift } => {
                // Round half away from zero, matching `f64::round`.
                let prod = acc * mult as i64;
                let bias = 1i64 << (rshift - 1);
                let shifted = if prod >= 0 {
                    (prod + bias) >> rshift
                } else {
                    -((-prod + bias) >> rshift)
                };
                shifted.clamp(i32::MIN as i64, i32::MAX as i64) as i32
            }
            Requant::Float(m) => (acc as f64 * m).round() as i32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_range_covers_interval_and_zero() {
        let qp = QParams::from_range(-1.0, 3.0);
        assert_eq!(qp.quantize(0.0), qp.zero_point as i8);
        assert_eq!(qp.quantize(-1.0), QMIN as i8);
        assert_eq!(qp.quantize(3.0), QMAX as i8);
        // Round trip stays within half a step.
        for x in [-1.0f32, -0.3, 0.0, 0.7, 2.9] {
            let back = qp.dequantize(qp.quantize(x));
            assert!((back - x).abs() <= qp.scale / 2.0 + 1e-6, "{x} -> {back}");
        }
    }

    #[test]
    fn relu_style_range_keeps_zero_exact() {
        let qp = QParams::from_range(0.0, 6.0);
        assert_eq!(qp.zero_point, QMIN);
        assert_eq!(qp.dequantize(qp.quantize(0.0)), 0.0);
    }

    #[test]
    fn symmetric_weights_have_zero_zero_point() {
        let qp = QParams::symmetric(2.54);
        assert_eq!(qp.zero_point, 0);
        assert!((qp.scale - 2.54 / 127.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_ranges_fall_back_to_unit() {
        assert_eq!(QParams::from_range(0.0, 0.0), QParams::unit());
        // NaN endpoints collapse onto 0.0 (f32::min/max ignore NaN), so a
        // NaN min behaves like an all-positive range.
        assert_eq!(
            QParams::from_range(f32::NAN, 1.0),
            QParams::from_range(0.0, 1.0)
        );
        assert_eq!(QParams::from_range(f32::NAN, f32::NAN), QParams::unit());
        assert_eq!(QParams::symmetric(0.0), QParams::unit());
        assert_eq!(QParams::symmetric(f32::INFINITY), QParams::unit());
    }

    #[test]
    fn quantize_saturates_and_handles_nan() {
        let qp = QParams::from_range(-1.0, 1.0);
        assert_eq!(qp.quantize(1e30), QMAX as i8);
        assert_eq!(qp.quantize(-1e30), QMIN as i8);
        let _ = qp.quantize(f32::NAN); // must not panic
    }

    #[test]
    fn fixed_point_matches_float_reference() {
        for m in [0.5, 0.25, 0.0313725, 1.0 / 3.0, 0.9999, 1e-4, 2.5] {
            let r = Requant::from_multiplier(m);
            assert!(matches!(r, Requant::Fixed { .. }), "m={m} -> {r:?}");
            for acc in [-1_000_000i64, -12345, -1, 0, 1, 777, 2_000_003] {
                let want = (acc as f64 * m).round() as i64;
                let got = r.apply(acc) as i64;
                assert!((want - got).abs() <= 1, "m={m} acc={acc}: {want} vs {got}");
            }
        }
    }

    #[test]
    fn degenerate_multipliers_use_float_path() {
        assert!(matches!(
            Requant::from_multiplier(f64::NAN),
            Requant::Float(_)
        ));
        assert!(matches!(Requant::from_multiplier(0.0), Requant::Float(_)));
        assert!(matches!(Requant::from_multiplier(-1.0), Requant::Float(_)));
        assert!(matches!(
            Requant::from_multiplier(f64::INFINITY),
            Requant::Float(_)
        ));
        // Huge multiplier exceeds the shift budget but stays deterministic.
        let r = Requant::from_multiplier(1e30);
        assert_eq!(r.apply(2), i32::MAX); // saturating float→int cast
        let r = Requant::from_multiplier(f64::NAN);
        assert_eq!(r.apply(123), 0); // NaN casts to 0
    }

    #[test]
    fn rounding_is_half_away_from_zero_both_signs() {
        let r = Requant::from_multiplier(0.5);
        assert_eq!(r.apply(3), 2); // 1.5 -> 2
        assert_eq!(r.apply(-3), -2); // -1.5 -> -2 (away from zero)
        assert_eq!(r.apply(5), 3); // 2.5 -> 3
        assert_eq!(r.apply(-5), -3);
    }
}
