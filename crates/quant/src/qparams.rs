//! Per-tensor affine quantization parameters and the fixed-point
//! requantization pipeline.
//!
//! The scheme is the standard deployment recipe (Jacob et al., "Quantization
//! and Training of Neural Networks for Efficient Integer-Arithmetic-Only
//! Inference", CVPR 2018): asymmetric int8 activations, symmetric int8
//! weights, i32 accumulators, and a per-layer fixed-point multiplier that
//! rescales accumulators back to the output's int8 grid without touching
//! floating point on the hot path.

#[cfg(target_arch = "x86_64")]
use bdlfi_tensor::scratch;
use serde::{Deserialize, Serialize};

/// Quantized integer range for activations (full int8).
pub const QMIN: i32 = -128;
/// Upper end of the activation range.
pub const QMAX: i32 = 127;
/// Weights are clamped to the symmetric range `[-127, 127]` so that
/// `-w` is always representable.
pub const WMAX: i32 = 127;

/// Per-tensor affine quantization: `real ≈ (q - zero_point) * scale`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QParams {
    /// Step size of the integer grid.
    pub scale: f32,
    /// Integer representing real zero.
    pub zero_point: i32,
}

impl QParams {
    /// The identity-ish default used before calibration: unit scale, zero
    /// offset.
    pub fn unit() -> Self {
        QParams {
            scale: 1.0,
            zero_point: 0,
        }
    }

    /// Asymmetric activation parameters covering `[min, max]` with the full
    /// int8 range. The interval is widened to include zero so that padding
    /// and ReLU zeros are exactly representable.
    pub fn from_range(min: f32, max: f32) -> Self {
        let min = min.min(0.0);
        let max = max.max(0.0);
        let span = (max - min) as f64;
        if !(span.is_finite()) || span <= 0.0 {
            return QParams::unit();
        }
        let scale = span / (QMAX - QMIN) as f64;
        let zp = (QMIN as f64 - min as f64 / scale).round() as i64;
        QParams {
            scale: scale as f32,
            zero_point: zp.clamp(QMIN as i64, QMAX as i64) as i32,
        }
    }

    /// Symmetric weight parameters for a tensor with largest magnitude
    /// `max_abs`: zero point 0, scale `max_abs / 127`.
    pub fn symmetric(max_abs: f32) -> Self {
        if !max_abs.is_finite() || max_abs <= 0.0 {
            return QParams::unit();
        }
        QParams {
            scale: max_abs / WMAX as f32,
            zero_point: 0,
        }
    }

    /// Quantizes one real value onto the int8 grid (round-to-nearest,
    /// saturating). Non-finite inputs map through Rust's saturating `as`
    /// casts (`NaN → 0`), keeping faulted tensors well-defined.
    pub fn quantize(&self, x: f32) -> i8 {
        quantize_one(x, self.inv_scale(), self.zero_point as i64)
    }

    /// Quantizes a whole activation slice into `dst` (cleared and resized
    /// first), element-for-element identical to [`QParams::quantize`].
    pub fn quantize_slice_into(&self, src: &[f32], dst: &mut Vec<i8>) {
        dst.clear();
        dst.resize(src.len(), 0);
        self.quantize_slice_to(src, dst);
    }

    /// Quantizes a whole activation slice into a pre-sized buffer,
    /// element-for-element identical to [`QParams::quantize`]: the
    /// reciprocal scale and zero point are hoisted out of the loop — the
    /// single-element path uses the same reciprocal-multiply core, so the
    /// two can never disagree. This is the hot prologue of every quantized
    /// layer — per-element it would cost more than the int8 GEMM it feeds
    /// — so on AVX2 hosts it runs through a hand-vectorized kernel
    /// ([`quantize_slice_avx2`]) that is bit-identical to the scalar
    /// reference by the exactness argument in its docs.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() != src.len()`.
    pub fn quantize_slice_to(&self, src: &[f32], dst: &mut [i8]) {
        assert_eq!(dst.len(), src.len(), "quantize_slice_to length mismatch");
        let inv = self.inv_scale();
        let zp = self.zero_point as i64;
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: calling a `#[target_feature(enable = "avx2")]`
            // function is sound iff the CPU supports AVX2, which the
            // runtime `is_x86_feature_detected!` check on the line above
            // guarantees; the intrinsics inside index through safe slices
            // only, so feature availability is the only proof obligation.
            return unsafe { quantize_slice_avx2(src, inv, zp, dst) };
        }
        quantize_slice_reference(src, inv, zp, dst);
    }

    /// Reciprocal of the scale, in f64. Degenerate (faulted) scales stay
    /// deterministic: `1/0 → inf`, `1/inf → 0`, `1/NaN → NaN`, and every
    /// finite f32 scale — subnormals included — has a finite f64
    /// reciprocal, so no new degenerate cases appear versus division.
    fn inv_scale(&self) -> f64 {
        1.0 / self.scale as f64
    }

    /// Reconstructs the real value of a quantized element.
    pub fn dequantize(&self, q: i8) -> f32 {
        ((q as i64 - self.zero_point as i64) as f64 * self.scale as f64) as f32
    }
}

#[inline]
fn quantize_one(x: f32, inv_scale: f64, zp: i64) -> i8 {
    let q = (x as f64 * inv_scale).round() as i64;
    (q.saturating_add(zp)).clamp(QMIN as i64, QMAX as i64) as i8
}

/// Scalar reference loop for [`QParams::quantize_slice_to`]; the oracle
/// the AVX2 kernel below is checked against.
#[inline(always)]
fn quantize_slice_reference(src: &[f32], inv_scale: f64, zp: i64, dst: &mut [i8]) {
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = quantize_one(x, inv_scale, zp);
    }
}

/// Per-lane constants for the vectorized quantizer, built once per slice.
#[cfg(target_arch = "x86_64")]
struct QuantLanes {
    inv: std::arch::x86_64::__m256d,
    zp: std::arch::x86_64::__m256d,
    nan_res: std::arch::x86_64::__m256d,
    lim: std::arch::x86_64::__m256d,
    neg_lim: std::arch::x86_64::__m256d,
    sign_bit: std::arch::x86_64::__m256d,
    one: std::arch::x86_64::__m256d,
    half: std::arch::x86_64::__m256d,
    lo: std::arch::x86_64::__m256d,
    hi: std::arch::x86_64::__m256d,
}

/// Quantizes four activations to four i32 lanes, bit-identical to
/// [`quantize_one`] — `clamp(round(x·inv) as i64 ⊕ zp, −128, 127)` — by
/// the following exactness argument, which holds for *every* input,
/// faulted scales and zero points included:
///
/// * `v = x as f64 · inv` is the same correctly-rounded IEEE multiply as
///   the scalar path.
/// * Pre-clamping `v` to `±2⁴⁰` cannot change the result: any `|v| ≥ 2⁴⁰`
///   (infinities included) rounds to an integer of magnitude ≥ 2⁴⁰, which
///   after adding `|zp| ≤ 2³¹` still lies far outside `[−128, 127]`, so
///   both paths saturate to the same endpoint.
/// * Round-half-away-from-zero is emulated exactly: `t = trunc(v)` makes
///   `d = v − t` exact (Sterbenz: `t ≤ 2v` componentwise), so
///   `q = t + copysign(1, v)·[|d| ≥ ½]` equals `v.round()` for every
///   representable `v`.
/// * `q + zp` is exact (`|q| ≤ 2⁴⁰`, `|zp| ≤ 2³¹`: an integer sum below
///   `2⁴¹ < 2⁵³`), the final `[−128, 127]` clamp compares exact integers,
///   and truncating f64→i32 conversion of an in-range integer is exact.
/// * NaN lanes (NaN activation, or a faulted scale making `inv` NaN or
///   `0·inf` appear) are blended with the scalar result for NaN input,
///   `clamp(0 + zp)`, before conversion — `as i64` maps NaN to 0.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
fn quantize_quad_avx2(xs: &[f32; 4], c: &QuantLanes) -> std::arch::x86_64::__m128i {
    use std::arch::x86_64::*;
    // SAFETY: `xs` is a 4-element array, so 16 readable bytes.
    let v = _mm256_cvtps_pd(unsafe { _mm_loadu_ps(xs.as_ptr()) });
    let v = _mm256_mul_pd(v, c.inv);
    let nan = _mm256_cmp_pd::<_CMP_UNORD_Q>(v, v);
    // max/min return the second operand on NaN, so NaN lanes pass through
    // as −2⁴⁰ here; the `nan` blend below overrides them regardless.
    let vc = _mm256_min_pd(_mm256_max_pd(v, c.neg_lim), c.lim);
    let t = _mm256_round_pd::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(vc);
    let d = _mm256_sub_pd(vc, t);
    let absd = _mm256_andnot_pd(c.sign_bit, d);
    let ge_half = _mm256_cmp_pd::<_CMP_GE_OQ>(absd, c.half);
    let one_signed = _mm256_or_pd(_mm256_and_pd(vc, c.sign_bit), c.one);
    let q = _mm256_add_pd(t, _mm256_and_pd(ge_half, one_signed));
    let s = _mm256_add_pd(q, c.zp);
    let s = _mm256_min_pd(_mm256_max_pd(s, c.lo), c.hi);
    let s = _mm256_blendv_pd(s, c.nan_res, nan);
    _mm256_cvttpd_epi32(s)
}

/// Hand-vectorized [`quantize_slice_reference`]: 16 activations per
/// iteration through [`quantize_quad_avx2`], narrowed to int8 with
/// saturating packs that are no-ops because every lane is already clamped
/// to `[−128, 127]`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn quantize_slice_avx2(src: &[f32], inv_scale: f64, zp: i64, dst: &mut [i8]) {
    use std::arch::x86_64::*;
    let c = QuantLanes {
        inv: _mm256_set1_pd(inv_scale),
        zp: _mm256_set1_pd(zp as f64),
        nan_res: _mm256_set1_pd(zp.clamp(QMIN as i64, QMAX as i64) as f64),
        lim: _mm256_set1_pd((1u64 << 40) as f64),
        neg_lim: _mm256_set1_pd(-((1u64 << 40) as f64)),
        sign_bit: _mm256_set1_pd(-0.0),
        one: _mm256_set1_pd(1.0),
        half: _mm256_set1_pd(0.5),
        lo: _mm256_set1_pd(QMIN as f64),
        hi: _mm256_set1_pd(QMAX as f64),
    };
    let mut i = 0;
    while i + 16 <= src.len() {
        // bdlfi-lint: allow(BD010) -- infallible: the slice is exactly 4 bytes by the window arithmetic above
        let quad = |o: usize| quantize_quad_avx2((&src[o..o + 4]).try_into().unwrap(), &c);
        let ab = _mm_packs_epi32(quad(i), quad(i + 4));
        let cd = _mm_packs_epi32(quad(i + 8), quad(i + 12));
        let bytes = _mm_packs_epi16(ab, cd);
        // SAFETY: the loop condition guarantees 16 writable bytes at `i`.
        unsafe { _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), bytes) };
        i += 16;
    }
    quantize_slice_reference(&src[i..], inv_scale, zp, &mut dst[i..]);
}

/// Requantization of an i32/i64 accumulator onto an int8 output grid:
/// multiply by the effective scale `in_scale * w_scale / out_scale` and
/// round.
///
/// The deployment path is [`Requant::Fixed`]: the real multiplier `m ∈ (0,
/// 1]`-ish is decomposed as `m = f · 2^e` with `f ∈ [0.5, 1)`, stored as a
/// Q31 integer `mult = round(f · 2³¹)` and a right shift — the accumulator
/// product then needs only integer arithmetic. Degenerate multipliers (a
/// fault flipping a scale to `NaN`, `inf`, zero or negative, or an exponent
/// outside the shift range) fall back to [`Requant::Float`], which is
/// deterministic under Rust's saturating float→int casts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Requant {
    /// Fixed-point path: `round(acc * mult / 2³¹⁺ᵉ)` via a Q31 multiply and
    /// rounding right shift.
    Fixed {
        /// Q31 mantissa in `[2³⁰, 2³¹)`.
        mult: i32,
        /// Total rounding right shift (`31 - e`).
        rshift: u32,
    },
    /// Double-precision fallback for degenerate multipliers.
    Float(f64),
}

impl Requant {
    /// Builds the requantizer for effective multiplier
    /// `in_scale * w_scale / out_scale`.
    pub fn from_scales(in_scale: f32, w_scale: f32, out_scale: f32) -> Self {
        let m = in_scale as f64 * w_scale as f64 / out_scale as f64;
        Requant::from_multiplier(m)
    }

    /// Decomposes `m` into the Q31 fixed-point form, or falls back to the
    /// float path when `m` is not a positive normal number or its exponent
    /// cannot be expressed as a right shift.
    pub fn from_multiplier(m: f64) -> Self {
        if !m.is_finite() || m <= 0.0 {
            return Requant::Float(m);
        }
        let bits = m.to_bits();
        let exp_field = ((bits >> 52) & 0x7ff) as i32;
        if exp_field == 0 {
            // Subnormal: effectively zero at int8 precision.
            return Requant::Float(m);
        }
        // m = f · 2^e with f ∈ [0.5, 1): force the exponent field to
        // `1022` (the biased exponent of 0.5) keeping the mantissa bits.
        let e = exp_field - 1022;
        let f = f64::from_bits((bits & !(0x7ffu64 << 52)) | (1022u64 << 52));
        let mut mult = (f * (1u64 << 31) as f64).round() as i64;
        let mut e = e;
        if mult == 1i64 << 31 {
            // f rounded up to 1.0: renormalise.
            mult >>= 1;
            e += 1;
        }
        let rshift = 31 - e;
        if !(1..=62).contains(&rshift) {
            // Multiplier ≥ 2³⁰ or vanishingly small: outside the shift
            // budget of the integer path.
            return Requant::Float(m);
        }
        Requant::Fixed {
            mult: mult as i32,
            rshift: rshift as u32,
        }
    }

    /// Rescales an accumulator: `round(acc * m)`, saturating to `i32`.
    pub fn apply(&self, acc: i64) -> i32 {
        match *self {
            Requant::Fixed { mult, rshift } => {
                apply_fixed(acc, mult as i64, 1i64 << (rshift - 1), rshift)
            }
            Requant::Float(m) => (acc as f64 * m).round() as i32,
        }
    }
}

/// The [`Requant::Fixed`] arm: `round(acc · mult / 2^rshift)` rounding half
/// away from zero (matching `f64::round`), saturating to `i32`. Branchless
/// — requantization runs once per output element and accumulator signs are
/// data-dependent, so a sign branch here would mispredict half the time on
/// the campaign hot path. `(p ^ s) − s` with `s = p >> 63` is `|p|` for
/// every `p > i64::MIN`, and `i64::MIN` itself is unreachable: `|acc|`
/// is bounded by the i32 accumulator plus an i32 bias correction
/// (`< 2³³`) and `mult < 2³¹`.
#[inline(always)]
fn apply_fixed(acc: i64, mult: i64, bias: i64, rshift: u32) -> i32 {
    let prod = acc * mult;
    let sign = prod >> 63;
    let mag = (prod ^ sign) - sign;
    let shifted = (((mag + bias) >> rshift) ^ sign) - sign;
    shifted.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

/// Requantizes one corrected accumulator and dequantizes it to f32: the
/// op-boundary value `(clamp(requant(a) + zp_out) − zp_out) · out_scale`.
/// Shared by every batched helper below so the per-element semantics are
/// defined in exactly one place.
pub fn dequant_acc(requant: &Requant, a: i64, zp_out: i32, out_scale: f32) -> f32 {
    let q = (requant.apply(a) as i64 + zp_out as i64).clamp(-128, 127);
    ((q - zp_out as i64) as f64 * out_scale as f64) as f32
}

/// Batched requantization of a row-major `(rows, width)` accumulator block
/// with **per-output-channel** multipliers: column `j` is corrected by
/// `corrs[j]` (bias minus zero-point column sum, precomputed once per
/// pass) and requantized through `rqs[j]`. Appends `rows · width` f32
/// boundary values to `out`.
///
/// This is the one requant loop `QDense::forward`, the sparse-delta
/// `QDense::forward_cols` and the calibration sweep all share: per-column
/// faults on a weight scale stay confined to their column precisely
/// because nothing here mixes columns.
///
/// # Panics
///
/// Panics if `acc.len()` is not a multiple of `width`, or `rqs`/`corrs`
/// are shorter than `width`.
pub fn requant_rows_into(
    acc: &[i32],
    width: usize,
    rqs: &[Requant],
    corrs: &[i64],
    zp_out: i32,
    out_scale: f32,
    out: &mut Vec<f32>,
) {
    assert_eq!(acc.len() % width.max(1), 0, "accumulator not row-aligned");
    let rqs = &rqs[..width];
    let corrs = &corrs[..width];
    let start = out.len();
    out.resize(start + acc.len(), 0.0);
    let dst = &mut out[start..];
    #[cfg(target_arch = "x86_64")]
    if width >= 4
        && rqs
            .iter()
            .all(|rq| matches!(rq, Requant::Fixed { rshift, .. } if (1..=63).contains(rshift)))
        && std::arch::is_x86_feature_detected!("avx2")
    {
        // SAFETY: calling a `#[target_feature(enable = "avx2")]` function
        // is sound iff the CPU supports AVX2, which the runtime
        // `is_x86_feature_detected!` check on the line above guarantees;
        // the intrinsics inside assert their slice bounds before any raw
        // pointer arithmetic. The `all-Fixed, rshift ∈ 1..=63` gate
        // restricts the kernel to the domain where its lane arithmetic is
        // proven identical to the scalar reference (see its docs).
        return unsafe { requant_rows_avx2(acc, width, rqs, corrs, zp_out, out_scale, dst) };
    }
    requant_rows_reference(acc, width, rqs, corrs, zp_out, out_scale, dst);
}

/// Scalar reference for the batched requantization loop; the oracle the
/// AVX2 kernel is checked against.
///
/// Column-major traversal hoists each column's requantizer out of the row
/// loop: the common `Fixed` arm runs with its multiplier, bias and
/// correction in registers and no per-element enum dispatch. The dequant
/// step is one table entry per grid code instead of per element — the
/// output grid has only 256 codes and `zp_out`/`out_scale` are
/// tensor-wide, so entry `q + 128` precomputes exactly the
/// `((q − zp) · scale)` chain [`dequant_acc`] would run: same i64
/// difference, same f64 multiply. Columns never mix (each inner loop
/// strides by `width`), preserving the fault-confinement contract above.
fn requant_rows_reference(
    acc: &[i32],
    width: usize,
    rqs: &[Requant],
    corrs: &[i64],
    zp_out: i32,
    out_scale: f32,
    dst: &mut [f32],
) {
    let rows = acc.len() / width.max(1);
    let zp = zp_out as i64;
    let mut lut = [0.0f32; 256];
    for (i, y) in lut.iter_mut().enumerate() {
        *y = ((i as i64 - 128 - zp) as f64 * out_scale as f64) as f32;
    }
    for (j, (rq, &corr)) in rqs.iter().zip(corrs).enumerate() {
        match *rq {
            Requant::Fixed { mult, rshift } => {
                let mult = mult as i64;
                let bias = 1i64 << (rshift - 1);
                for r in 0..rows {
                    let a = acc[r * width + j] as i64 + corr;
                    let q = (apply_fixed(a, mult, bias, rshift) as i64 + zp).clamp(-128, 127);
                    dst[r * width + j] = lut[(q + 128) as usize];
                }
            }
            rq => {
                for r in 0..rows {
                    let a = acc[r * width + j] as i64 + corr;
                    dst[r * width + j] = dequant_acc(&rq, a, zp_out, out_scale);
                }
            }
        }
    }
}

/// `clamp` on signed i64 lanes (`vpcmpgtq` + byte blend; the compare masks
/// are uniform per lane, so the byte-granular blend selects whole lanes).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
fn clamp64(
    v: std::arch::x86_64::__m256i,
    lo: std::arch::x86_64::__m256i,
    hi: std::arch::x86_64::__m256i,
) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::{_mm256_blendv_epi8, _mm256_cmpgt_epi64};
    let v = _mm256_blendv_epi8(v, hi, _mm256_cmpgt_epi64(v, hi));
    _mm256_blendv_epi8(v, lo, _mm256_cmpgt_epi64(lo, v))
}

/// Hand-vectorized [`requant_rows_reference`] for the all-[`Requant::Fixed`]
/// case: four columns per group, the group's multipliers, rounding biases,
/// corrections and shifts held in i64 lanes across the row loop.
///
/// Lane-for-lane identity with the scalar chain
/// `clamp(clamp₃₂(apply_fixed) + zp) → (q − zp)·scale`:
///
/// * The 64×64→64 product is assembled from `vpmuludq` partial products
///   (`lo·lo + ((lo·hi + hi·lo) ≪ 32)`), which is the full wrapping
///   product mod 2⁶⁴ — the same value release-mode `a * mult` produces,
///   and well inside i64 for every reachable input (`|a| < 2³³`,
///   `mult < 2³¹`).
/// * `apply_fixed` is already branchless sign-magnitude arithmetic, so
///   its xor/sub/shift sequence transcribes lane-for-lane; the gate at
///   the dispatch site pins `rshift ∈ 1..=63`, where scalar `>>` and
///   `vpsrlvq` agree (the shifted magnitude is non-negative, so the
///   scalar arithmetic shift is a logical one).
/// * Both clamps compare exact i64 lane values ([`clamp64`]).
/// * The dequant step computes `(q as f64 − zp as f64) · scale`: `q` and
///   `zp` are exact in f64 and their difference (≤ 2³¹ + 128 < 2⁵³) is
///   exact, so it equals the scalar `(q − zp) as f64` to the last bit,
///   and `vcvtpd2ps` rounds exactly like `as f32`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn requant_rows_avx2(
    acc: &[i32],
    width: usize,
    rqs: &[Requant],
    corrs: &[i64],
    zp_out: i32,
    out_scale: f32,
    dst: &mut [f32],
) {
    use std::arch::x86_64::*;
    let rows = acc.len() / width;
    assert!(acc.len() >= rows * width && dst.len() >= rows * width);
    assert!(corrs.len() >= width);
    let mut mults = scratch::take::<i64>(width);
    let mut biases = scratch::take::<i64>(width);
    let mut shifts = scratch::take::<i64>(width);
    for (j, rq) in rqs[..width].iter().enumerate() {
        match *rq {
            Requant::Fixed { mult, rshift } => {
                mults[j] = mult as i64;
                biases[j] = 1i64 << (rshift - 1);
                shifts[j] = rshift as i64;
            }
            // Unreachable by the dispatch gate; keep the kernel total.
            // bdlfi-lint: allow(BD010) -- unreachable by the all-Fixed dispatch gate directly above
            Requant::Float(_) => unreachable!("requant_rows_avx2 requires all-Fixed columns"),
        }
    }
    let zero = _mm256_setzero_si256();
    let i32_lo = _mm256_set1_epi64x(i32::MIN as i64);
    let i32_hi = _mm256_set1_epi64x(i32::MAX as i64);
    let q_lo = _mm256_set1_epi64x(-128);
    let q_hi = _mm256_set1_epi64x(127);
    let zp = _mm256_set1_epi64x(zp_out as i64);
    let zp_f = _mm256_set1_pd(zp_out as f64);
    let scale = _mm256_set1_pd(out_scale as f64);
    let even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    for g in 0..width / 4 {
        let j = g * 4;
        // SAFETY: `j + 4 ≤ width` and every per-column array holds at
        // least `width` i64, so each 32-byte unaligned load is in bounds.
        let (mult, bias, corr, shift) = unsafe {
            (
                _mm256_loadu_si256(mults.as_ptr().add(j).cast()),
                _mm256_loadu_si256(biases.as_ptr().add(j).cast()),
                _mm256_loadu_si256(corrs.as_ptr().add(j).cast()),
                _mm256_loadu_si256(shifts.as_ptr().add(j).cast()),
            )
        };
        let mult_hi = _mm256_srli_epi64(mult, 32);
        for r in 0..rows {
            let o = r * width + j;
            // SAFETY: `o + 4 ≤ rows·width ≤ acc.len()`/`dst.len()`
            // (asserted above), so the 16-byte load and store are in
            // bounds.
            let a32 = unsafe { _mm_loadu_si128(acc.as_ptr().add(o).cast()) };
            let a = _mm256_add_epi64(_mm256_cvtepi32_epi64(a32), corr);
            let a_hi = _mm256_srli_epi64(a, 32);
            let lolo = _mm256_mul_epu32(a, mult);
            let cross =
                _mm256_add_epi64(_mm256_mul_epu32(a, mult_hi), _mm256_mul_epu32(a_hi, mult));
            let prod = _mm256_add_epi64(lolo, _mm256_slli_epi64(cross, 32));
            let sign = _mm256_cmpgt_epi64(zero, prod);
            let mag = _mm256_sub_epi64(_mm256_xor_si256(prod, sign), sign);
            let sh = _mm256_srlv_epi64(_mm256_add_epi64(mag, bias), shift);
            let shifted = _mm256_sub_epi64(_mm256_xor_si256(sh, sign), sign);
            let s = clamp64(shifted, i32_lo, i32_hi);
            let q = clamp64(_mm256_add_epi64(s, zp), q_lo, q_hi);
            let q32 = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(q, even));
            let y = _mm256_cvtpd_ps(_mm256_mul_pd(
                _mm256_sub_pd(_mm256_cvtepi32_pd(q32), zp_f),
                scale,
            ));
            // SAFETY: see the load above — same bound.
            unsafe { _mm_storeu_ps(dst.as_mut_ptr().add(o), y) };
        }
    }
    // Remainder columns (width mod 4) take the scalar reference chain.
    let zp_s = zp_out as i64;
    for j in (width / 4) * 4..width {
        let (mult, bias, rshift, corr) = (mults[j], biases[j], shifts[j] as u32, corrs[j]);
        for r in 0..rows {
            let a = acc[r * width + j] as i64 + corr;
            let q = (apply_fixed(a, mult, bias, rshift) as i64 + zp_s).clamp(-128, 127);
            dst[r * width + j] = ((q - zp_s) as f64 * out_scale as f64) as f32;
        }
    }
}

/// Batched requantization of one channel-major accumulator row (a conv
/// output channel over its pixels): every element shares the channel's
/// multiplier and correction. Appends `acc_row.len()` values to `out`.
pub fn requant_channel_into(
    acc_row: &[i32],
    rq: &Requant,
    corr: i64,
    zp_out: i32,
    out_scale: f32,
    out: &mut Vec<f32>,
) {
    for &a in acc_row {
        out.push(dequant_acc(rq, a as i64 + corr, zp_out, out_scale));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_range_covers_interval_and_zero() {
        let qp = QParams::from_range(-1.0, 3.0);
        assert_eq!(qp.quantize(0.0), qp.zero_point as i8);
        assert_eq!(qp.quantize(-1.0), QMIN as i8);
        assert_eq!(qp.quantize(3.0), QMAX as i8);
        // Round trip stays within half a step.
        for x in [-1.0f32, -0.3, 0.0, 0.7, 2.9] {
            let back = qp.dequantize(qp.quantize(x));
            assert!((back - x).abs() <= qp.scale / 2.0 + 1e-6, "{x} -> {back}");
        }
    }

    #[test]
    fn relu_style_range_keeps_zero_exact() {
        let qp = QParams::from_range(0.0, 6.0);
        assert_eq!(qp.zero_point, QMIN);
        assert_eq!(qp.dequantize(qp.quantize(0.0)), 0.0);
    }

    #[test]
    fn symmetric_weights_have_zero_zero_point() {
        let qp = QParams::symmetric(2.54);
        assert_eq!(qp.zero_point, 0);
        assert!((qp.scale - 2.54 / 127.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_ranges_fall_back_to_unit() {
        assert_eq!(QParams::from_range(0.0, 0.0), QParams::unit());
        // NaN endpoints collapse onto 0.0 (f32::min/max ignore NaN), so a
        // NaN min behaves like an all-positive range.
        assert_eq!(
            QParams::from_range(f32::NAN, 1.0),
            QParams::from_range(0.0, 1.0)
        );
        assert_eq!(QParams::from_range(f32::NAN, f32::NAN), QParams::unit());
        assert_eq!(QParams::symmetric(0.0), QParams::unit());
        assert_eq!(QParams::symmetric(f32::INFINITY), QParams::unit());
    }

    #[test]
    fn quantize_saturates_and_handles_nan() {
        let qp = QParams::from_range(-1.0, 1.0);
        assert_eq!(qp.quantize(1e30), QMAX as i8);
        assert_eq!(qp.quantize(-1e30), QMIN as i8);
        let _ = qp.quantize(f32::NAN); // must not panic
    }

    #[test]
    fn fixed_point_matches_float_reference() {
        for m in [0.5, 0.25, 0.0313725, 1.0 / 3.0, 0.9999, 1e-4, 2.5] {
            let r = Requant::from_multiplier(m);
            assert!(matches!(r, Requant::Fixed { .. }), "m={m} -> {r:?}");
            for acc in [-1_000_000i64, -12345, -1, 0, 1, 777, 2_000_003] {
                let want = (acc as f64 * m).round() as i64;
                let got = r.apply(acc) as i64;
                assert!((want - got).abs() <= 1, "m={m} acc={acc}: {want} vs {got}");
            }
        }
    }

    #[test]
    fn degenerate_multipliers_use_float_path() {
        assert!(matches!(
            Requant::from_multiplier(f64::NAN),
            Requant::Float(_)
        ));
        assert!(matches!(Requant::from_multiplier(0.0), Requant::Float(_)));
        assert!(matches!(Requant::from_multiplier(-1.0), Requant::Float(_)));
        assert!(matches!(
            Requant::from_multiplier(f64::INFINITY),
            Requant::Float(_)
        ));
        // Huge multiplier exceeds the shift budget but stays deterministic.
        let r = Requant::from_multiplier(1e30);
        assert_eq!(r.apply(2), i32::MAX); // saturating float→int cast
        let r = Requant::from_multiplier(f64::NAN);
        assert_eq!(r.apply(123), 0); // NaN casts to 0
    }

    #[test]
    fn quantize_slice_matches_per_element_quantize() {
        let qp = QParams::from_range(-2.3, 5.1);
        let xs: Vec<f32> = (-40..40)
            .map(|i| i as f32 * 0.173)
            .chain([0.0, -0.0, 1e30, -1e30, f32::NAN, f32::INFINITY])
            .collect();
        let mut dst = Vec::new();
        qp.quantize_slice_into(&xs, &mut dst);
        let want: Vec<i8> = xs.iter().map(|&x| qp.quantize(x)).collect();
        assert_eq!(dst, want);
        // Real zero must still quantize exactly to the zero point (padding
        // and ReLU zeros depend on it).
        assert_eq!(qp.quantize(0.0), qp.zero_point as i8);
    }

    /// The hand-vectorized quantizer against the scalar oracle, over the
    /// value classes its exactness proof enumerates: half-way ties both
    /// signs, signed zeros, subnormals, the ±2⁴⁰ pre-clamp boundary,
    /// infinities and NaN — crossed with degenerate (faulted) scales and
    /// zero points, and at lengths that cover remainder tails.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_quantizer_is_bit_identical_to_reference() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        let big = (1u64 << 40) as f32;
        let xs: Vec<f32> = [
            0.5f32,
            -0.5,
            1.5,
            -1.5,
            2.5,
            -2.5,
            0.49999997,
            -0.49999997,
            0.0,
            -0.0,
            1e-38,
            -1e-38,
            f32::MIN_POSITIVE,
            big,
            -big,
            big * 2.0,
            -big * 2.0,
            3.4e38,
            -3.4e38,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            127.0,
            -128.0,
            127.49,
            -128.49,
        ]
        .into_iter()
        .chain((-300..300).map(|i| i as f32 * 0.37))
        .collect();
        let invs = [
            1.0f64,
            0.013,
            1.0 / 3.0,
            1e12,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            0.0,
            -7.5,
        ];
        let zps = [0i64, -3, 117, i32::MAX as i64, i32::MIN as i64];
        for &inv in &invs {
            for &zp in &zps {
                for len in [0usize, 1, 15, 16, 17, 48, xs.len()] {
                    let src = &xs[..len];
                    let mut want = vec![0i8; len];
                    quantize_slice_reference(src, inv, zp, &mut want);
                    let mut got = vec![0i8; len];
                    // SAFETY: guarded by the `is_x86_feature_detected!`
                    // early-return at the top of the test.
                    unsafe { quantize_slice_avx2(src, inv, zp, &mut got) };
                    assert_eq!(got, want, "inv={inv} zp={zp} len={len}");
                }
            }
        }
    }

    #[test]
    fn requant_rows_matches_per_element_chain() {
        let rqs = [
            Requant::from_multiplier(0.031),
            Requant::from_multiplier(1.0 / 3.0),
            Requant::from_multiplier(0.9),
        ];
        let corrs = [5i64, -17, 0];
        let acc: Vec<i32> = (0..12).map(|i| i * 7919 - 40000).collect();
        let mut got = Vec::new();
        requant_rows_into(&acc, 3, &rqs, &corrs, -3, 0.05, &mut got);
        let mut want = Vec::new();
        for row in acc.chunks_exact(3) {
            for j in 0..3 {
                want.push(dequant_acc(&rqs[j], row[j] as i64 + corrs[j], -3, 0.05));
            }
        }
        assert_eq!(got, want);
        // The channel-major helper agrees with the row helper at width 1.
        let mut ch = Vec::new();
        requant_channel_into(&acc, &rqs[1], corrs[1], -3, 0.05, &mut ch);
        let mut ref1 = Vec::new();
        requant_rows_into(&acc, 1, &rqs[1..2], &corrs[1..2], -3, 0.05, &mut ref1);
        assert_eq!(ch, ref1);
    }

    #[test]
    fn rounding_is_half_away_from_zero_both_signs() {
        let r = Requant::from_multiplier(0.5);
        assert_eq!(r.apply(3), 2); // 1.5 -> 2
        assert_eq!(r.apply(-3), -2); // -1.5 -> -2 (away from zero)
        assert_eq!(r.apply(5), 3); // 2.5 -> 3
        assert_eq!(r.apply(-5), -3);
    }
}
