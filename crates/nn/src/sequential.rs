//! The [`Sequential`] container: an ordered pipeline of named layers, which
//! doubles as the model type for both evaluated networks.

use crate::layer::{ForwardCtx, Layer, Mode};
use crate::params::{join_path, Param};
use bdlfi_tensor::Tensor;

/// An ordered pipeline of named layers.
///
/// `Sequential` is itself a [`Layer`], so pipelines nest. Layer names become
/// path components for parameter addressing and activation taps:
/// a dense layer registered as `"fc1"` exposes `"fc1.weight"` and
/// `"fc1.bias"`.
///
/// # Examples
///
/// ```
/// use bdlfi_nn::{Sequential, layers::{Dense, Relu}};
/// use bdlfi_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut model = Sequential::new()
///     .with("fc1", Dense::new(2, 32, &mut rng))
///     .with("relu1", Relu::new())
///     .with("fc2", Dense::new(32, 3, &mut rng));
/// let logits = model.predict(&Tensor::zeros([4, 2]));
/// assert_eq!(logits.dims(), &[4, 3]);
/// ```
#[derive(Clone, Default)]
pub struct Sequential {
    layers: Vec<(String, Box<dyn Layer>)>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self
            .layers
            .iter()
            .map(|(n, l)| format!("{n}:{}", l.kind()))
            .collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .finish()
    }
}

impl Sequential {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a named layer, returning the pipeline (builder style).
    ///
    /// # Panics
    ///
    /// Panics if a layer with the same name is already registered or the
    /// name contains `'.'` (reserved as the path separator).
    pub fn with(mut self, name: impl Into<String>, layer: impl Layer + 'static) -> Self {
        self.push(name, layer);
        self
    }

    /// Appends a named layer in place.
    ///
    /// # Panics
    ///
    /// Panics if a layer with the same name is already registered or the
    /// name contains `'.'` (reserved as the path separator).
    pub fn push(&mut self, name: impl Into<String>, layer: impl Layer + 'static) {
        let name = name.into();
        assert!(
            !name.contains('.'),
            "layer name {name:?} must not contain '.'"
        );
        assert!(
            self.layers.iter().all(|(n, _)| *n != name),
            "duplicate layer name {name:?}"
        );
        self.layers.push((name, Box::new(layer)));
    }

    /// Number of registered layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the pipeline has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Names of the registered layers, in order.
    pub fn layer_names(&self) -> Vec<String> {
        self.layers.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Kinds of the registered layers, in order (e.g. `"conv2d"`).
    pub fn layer_kinds(&self) -> Vec<&'static str> {
        self.layers.iter().map(|(_, l)| l.kind()).collect()
    }

    /// The layer at top-level index `i` as `(name, layer)` — read access for
    /// consumers that walk the pipeline structurally (e.g. the quantizer).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn layer_at(&self, i: usize) -> (&str, &dyn Layer) {
        let (name, layer) = &self.layers[i];
        (name.as_str(), layer.as_ref())
    }

    /// Convenience inference: eval-mode forward with no tap.
    pub fn predict(&mut self, input: &Tensor) -> Tensor {
        self.forward(input, &mut ForwardCtx::new(Mode::Eval))
    }

    /// Index of the top-level layer owning the parameter at `path` (the
    /// first dotted component is matched against layer names), or `None`
    /// if no layer matches.
    ///
    /// This is the map from a fault site to the shallowest layer whose
    /// output it can change: a composite layer (e.g. a residual block)
    /// counts as one unit, so faults anywhere inside it dirty exactly that
    /// top-level index — the correct re-execution cut point, since a
    /// block's skip connection consumes the *block* input, never an
    /// activation internal to an earlier sibling.
    pub fn layer_index_of_param(&self, path: &str) -> Option<usize> {
        let head = path.split('.').next().unwrap_or(path);
        self.layers.iter().position(|(n, _)| n == head)
    }

    /// Forward pass resumed at top-level layer `start`: runs layers
    /// `start..` on `input`, which must be the activation a full forward
    /// pass would feed layer `start` (i.e. the output of layer
    /// `start - 1`, or the network input for `start == 0`).
    ///
    /// With `start == len()` this is the identity on `input` — the fully
    /// cached case. Layer computations are deterministic, so resuming from
    /// a cached prefix activation reproduces the cold run's outputs
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `start > len()`.
    pub fn forward_from(&mut self, start: usize, input: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        assert!(
            start <= self.layers.len(),
            "forward_from: start {start} beyond {} layers",
            self.layers.len()
        );
        let mut x = input.clone();
        for (name, layer) in &mut self.layers[start..] {
            ctx.push(name);
            let mut y = layer.forward(&x, ctx);
            ctx.fire(&mut y);
            ctx.pop();
            x = y;
        }
        x
    }

    /// Runs exactly one top-level layer on `input` — the per-layer building
    /// block the sparse-delta evaluator steps with. Shares the loop body of
    /// [`Sequential::forward_from`] (same push/fire discipline), so a chain
    /// of `forward_one` calls is bit-identical to the fused pass.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn forward_one(&mut self, i: usize, input: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let (name, layer) = &mut self.layers[i];
        ctx.push(name);
        let mut y = layer.forward(input, ctx);
        ctx.fire(&mut y);
        ctx.pop();
        y
    }

    /// Eval-mode forward pass that fires `tap` after every layer (including
    /// nested children) — the activation fault-injection hook.
    pub fn predict_with_tap(
        &mut self,
        input: &Tensor,
        tap: &mut dyn FnMut(&str, &mut Tensor),
    ) -> Tensor {
        self.forward(input, &mut ForwardCtx::with_tap(Mode::Eval, tap))
    }

    /// A human-readable table of the pipeline: layer names, kinds and
    /// parameter counts — handy in examples and experiment logs.
    pub fn describe(&self) -> String {
        let mut out = String::from("layer            kind             params\n");
        for (name, layer) in &self.layers {
            let mut count = 0usize;
            layer.visit_params("", &mut |_, p| count += p.len());
            out.push_str(&format!("{name:<16} {:<16} {count}\n", layer.kind()));
        }
        out.push_str(&format!("total parameters: {}\n", self.param_count()));
        out
    }

    /// All parameter paths, in visitation order.
    pub fn param_paths(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit_params("", &mut |p, _| out.push(p.to_string()));
        out
    }

    /// Total number of scalar parameters (trainable and frozen).
    pub fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit_params("", &mut |_, p| n += p.len());
        n
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grads(&mut self) {
        self.visit_params_mut("", &mut |_, p| p.zero_grad());
    }

    /// Runs `f` on the parameter at `path`, if present; returns whether the
    /// path matched.
    pub fn with_param_mut(&mut self, path: &str, f: &mut dyn FnMut(&mut Param)) -> bool {
        let mut found = false;
        self.visit_params_mut("", &mut |p, param| {
            if p == path {
                found = true;
                f(param);
            }
        });
        found
    }

    /// Clones the value tensor of the parameter at `path`, if present.
    pub fn param_value(&self, path: &str) -> Option<Tensor> {
        let mut out = None;
        self.visit_params("", &mut |p, param| {
            if p == path {
                out = Some(param.value.clone());
            }
        });
        out
    }
}

impl Layer for Sequential {
    fn kind(&self) -> &'static str {
        "sequential"
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        // Delegating to forward_from(0, ..) keeps the cold and resumed
        // paths on one code path, so they cannot drift apart numerically.
        self.forward_from(0, input, ctx)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for (_, layer) in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&self, path: &str, f: &mut dyn FnMut(&str, &Param)) {
        for (name, layer) in &self.layers {
            layer.visit_params(&join_path(path, name), f);
        }
    }

    fn visit_params_mut(&mut self, path: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        let base = path.to_string();
        for (name, layer) in &mut self.layers {
            layer.visit_params_mut(&join_path(&base, name), f);
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_mlp(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .with("fc1", Dense::new(2, 4, &mut rng))
            .with("relu1", Relu::new())
            .with("fc2", Dense::new(4, 3, &mut rng))
    }

    #[test]
    fn forward_chains_layers() {
        let mut m = tiny_mlp(1);
        let y = m.predict(&Tensor::zeros([5, 2]));
        assert_eq!(y.dims(), &[5, 3]);
    }

    #[test]
    #[should_panic(expected = "duplicate layer name")]
    fn duplicate_names_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = Sequential::new()
            .with("fc", Dense::new(2, 2, &mut rng))
            .with("fc", Relu::new());
    }

    #[test]
    #[should_panic(expected = "must not contain")]
    fn dotted_names_rejected() {
        let _ = Sequential::new().with("a.b", Relu::new());
    }

    #[test]
    fn param_paths_are_prefixed() {
        let m = tiny_mlp(2);
        assert_eq!(
            m.param_paths(),
            vec!["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]
        );
        assert_eq!(m.param_count(), 2 * 4 + 4 + 4 * 3 + 3);
    }

    #[test]
    fn with_param_mut_targets_one_param() {
        let mut m = tiny_mlp(3);
        assert!(m.with_param_mut("fc1.bias", &mut |p| p.value.fill(9.0)));
        assert!(!m.with_param_mut("nope.bias", &mut |_| ()));
        assert_eq!(m.param_value("fc1.bias").unwrap().data(), &[9.0; 4]);
    }

    #[test]
    fn tap_fires_for_each_layer_in_order() {
        let mut m = tiny_mlp(4);
        let mut paths = Vec::new();
        m.predict_with_tap(&Tensor::zeros([1, 2]), &mut |p, _| {
            paths.push(p.to_string())
        });
        assert_eq!(paths, vec!["fc1", "relu1", "fc2"]);
    }

    #[test]
    fn tap_can_corrupt_activations() {
        let mut m = tiny_mlp(5);
        let x = Tensor::ones([1, 2]);
        let clean = m.predict(&x);
        let corrupted = m.predict_with_tap(&x, &mut |p, t| {
            if p == "fc1" {
                t.fill(0.0);
            }
        });
        // Zeroing fc1's output changes the logits (fc2 bias only).
        assert!(!clean.approx_eq(&corrupted, 1e-9) || clean.max_abs_diff(&corrupted) == 0.0);
        let bias = m.param_value("fc2.bias").unwrap();
        assert!(corrupted.reshape([3]).approx_eq(&bias, 1e-6));
    }

    #[test]
    fn zero_grads_clears_all() {
        let mut m = tiny_mlp(6);
        let x = Tensor::ones([2, 2]);
        let mut ctx = ForwardCtx::new(Mode::Train);
        let y = m.forward(&x, &mut ctx);
        m.backward(&Tensor::ones(y.dims()));
        let mut total = 0.0;
        m.visit_params("", &mut |_, p| total += p.grad.map(f32::abs).sum());
        assert!(total > 0.0);
        m.zero_grads();
        let mut total = 0.0;
        m.visit_params("", &mut |_, p| total += p.grad.map(f32::abs).sum());
        assert_eq!(total, 0.0);
    }

    #[test]
    fn clone_is_independent() {
        let mut m = tiny_mlp(7);
        let mut m2 = m.clone();
        m2.with_param_mut("fc1.weight", &mut |p| p.value.fill(0.0));
        let a = m.param_value("fc1.weight").unwrap();
        let b = m2.param_value("fc1.weight").unwrap();
        assert!(a.map(f32::abs).sum() > 0.0);
        assert_eq!(b.map(f32::abs).sum(), 0.0);
        // Original still predicts with its own weights.
        let _ = m.predict(&Tensor::zeros([1, 2]));
    }

    #[test]
    fn layer_index_of_param_maps_to_top_level() {
        let m = tiny_mlp(10);
        assert_eq!(m.layer_index_of_param("fc1.weight"), Some(0));
        assert_eq!(m.layer_index_of_param("fc1.bias"), Some(0));
        assert_eq!(m.layer_index_of_param("fc2.weight"), Some(2));
        assert_eq!(m.layer_index_of_param("nope.weight"), None);
    }

    #[test]
    fn forward_from_resumes_bitwise_identically() {
        let mut m = tiny_mlp(11);
        let x = Tensor::from_fn([3, 2], |i| (i[0] * 2 + i[1]) as f32 * 0.3 - 0.5);

        // Record every boundary activation during a cold run.
        let mut boundaries = vec![x.clone()];
        let cold = m.predict_with_tap(&x, &mut |path, t| {
            if !path.contains('.') {
                boundaries.push(t.clone());
            }
        });
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();

        assert_eq!(boundaries.len(), m.len() + 1);
        for (start, boundary) in boundaries.clone().iter().enumerate() {
            let resumed = m.forward_from(start, boundary, &mut ForwardCtx::new(Mode::Eval));
            assert_eq!(bits(&cold), bits(&resumed), "resume at layer {start}");
        }
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn forward_from_past_end_panics() {
        let mut m = tiny_mlp(12);
        m.forward_from(4, &Tensor::zeros([1, 3]), &mut ForwardCtx::new(Mode::Eval));
    }

    #[test]
    fn describe_tabulates_layers() {
        let m = tiny_mlp(9);
        let d = m.describe();
        assert!(d.contains("fc1"));
        assert!(d.contains("dense"));
        assert!(d.contains(&format!("total parameters: {}", m.param_count())));
    }

    #[test]
    fn debug_lists_layer_kinds() {
        let m = tiny_mlp(8);
        let s = format!("{m:?}");
        assert!(s.contains("fc1:dense"));
        assert!(s.contains("relu1:relu"));
    }
}
