//! Builder for the paper's multi-layer perceptron (Fig. 1 ①).
//!
//! The network is `input → Dense(hidden) → ReLU → … → Dense(classes)`; the
//! softmax lives in the loss (training) or in the campaign statistic
//! (inference), matching the paper's "FC layer → Softmax" diagram.

use crate::layers::{Dense, Relu};
use crate::sequential::Sequential;
use rand::Rng;

/// Builds an MLP as a [`Sequential`]: one `Dense`+`ReLU` pair per hidden
/// width, then a final `Dense` to `classes` logits.
///
/// The paper's MLP is `mlp(2, &[32], classes)` — a 32-unit hidden layer over
/// a 2-D input space, which is what makes the Fig. 1 ③ decision-boundary
/// visualisation possible.
///
/// # Panics
///
/// Panics if `in_dim == 0`, `classes == 0`, or any hidden width is 0.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut model = bdlfi_nn::mlp(2, &[32], 3, &mut rng);
/// assert_eq!(model.layer_names(), vec!["fc1", "relu1", "fc2"]);
/// ```
pub fn mlp<R: Rng + ?Sized>(
    in_dim: usize,
    hidden: &[usize],
    classes: usize,
    rng: &mut R,
) -> Sequential {
    assert!(in_dim > 0, "mlp requires in_dim > 0");
    assert!(classes > 0, "mlp requires classes > 0");
    assert!(
        hidden.iter().all(|&h| h > 0),
        "mlp hidden widths must be positive"
    );

    let mut model = Sequential::new();
    let mut prev = in_dim;
    for (i, &h) in hidden.iter().enumerate() {
        model.push(format!("fc{}", i + 1), Dense::new(prev, h, rng));
        model.push(format!("relu{}", i + 1), Relu::new());
        prev = h;
    }
    model.push(
        format!("fc{}", hidden.len() + 1),
        Dense::new(prev, classes, rng),
    );
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdlfi_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_mlp_structure() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = mlp(2, &[32], 3, &mut rng);
        assert_eq!(m.layer_kinds(), vec!["dense", "relu", "dense"]);
        assert_eq!(m.param_count(), 2 * 32 + 32 + 32 * 3 + 3);
        let y = m.predict(&Tensor::zeros([7, 2]));
        assert_eq!(y.dims(), &[7, 3]);
    }

    #[test]
    fn deep_mlp_stacks_pairs() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = mlp(10, &[16, 8, 4], 2, &mut rng);
        assert_eq!(m.len(), 7);
        assert_eq!(
            m.layer_names(),
            vec!["fc1", "relu1", "fc2", "relu2", "fc3", "relu3", "fc4"]
        );
    }

    #[test]
    #[should_panic(expected = "in_dim > 0")]
    fn zero_input_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        mlp(0, &[4], 2, &mut rng);
    }
}
