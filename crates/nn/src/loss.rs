//! Loss functions: softmax cross-entropy (classification) and mean squared
//! error.

use bdlfi_tensor::Tensor;

/// Softmax cross-entropy over logits.
///
/// Given logits `(n, k)` and integer labels, returns the mean negative
/// log-likelihood and the gradient `∂L/∂logits = (softmax − onehot) / n`.
///
/// # Panics
///
/// Panics if `logits` is not rank 2, `labels.len() != n`, or any label is
/// out of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(
        logits.rank(),
        2,
        "cross_entropy expects (batch, classes) logits"
    );
    let (n, k) = (logits.dim(0), logits.dim(1));
    assert_eq!(labels.len(), n, "label count must match batch size");
    assert!(labels.iter().all(|&l| l < k), "label out of range");

    let log_probs = logits.log_softmax_rows();
    let mut loss = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        loss -= log_probs.at(&[i, label]) as f64;
    }
    let loss = (loss / n as f64) as f32;

    let mut grad = log_probs.map(f32::exp);
    for (i, &label) in labels.iter().enumerate() {
        *grad.at_mut(&[i, label]) -= 1.0;
    }
    grad.scale_inplace(1.0 / n as f32);
    (loss, grad)
}

/// Mean squared error `mean((pred − target)²)` and its gradient
/// `2 (pred − target) / n_elements`.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(
        pred.shape(),
        target.shape(),
        "mse requires identical shapes"
    );
    let diff = pred.sub_t(target);
    let loss = diff.squared_norm() / pred.len() as f32;
    let grad = diff.scale(2.0 / pred.len() as f32);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, -10.0, 10.0, -10.0], [2, 3]);
        let (loss, _) = cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-6, "loss = {loss}");
    }

    #[test]
    fn cross_entropy_of_uniform_is_log_k() {
        let logits = Tensor::zeros([4, 5]);
        let (loss, _) = cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - (5.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(vec![0.5, -0.3, 0.2, 1.0, 0.0, -1.0], [2, 3]);
        let labels = [2usize, 0];
        let (_, grad) = cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let fd = (cross_entropy(&lp, &labels).0 - cross_entropy(&lm, &labels).0) / (2.0 * eps);
            assert!(
                (fd - grad.data()[idx]).abs() < 1e-3,
                "d[{idx}] fd={fd} got={}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.5, 0.0], [2, 3]);
        let (_, grad) = cross_entropy(&logits, &[1, 2]);
        for i in 0..2 {
            let s: f32 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        cross_entropy(&Tensor::zeros([1, 3]), &[3]);
    }

    #[test]
    fn mse_basics() {
        let pred = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let target = Tensor::from_vec(vec![0.0, 0.0], [2]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }
}
