//! The [`Layer`] trait, forward-pass context and activation taps.
//!
//! BDLFI injects faults not only into stored weights but also into
//! intermediate activations (paper Section II: "transient faults in the
//! memory units for storing NN parameters, inputs, intermediate activations
//! and outputs"). Activations never rest in a parameter store, so the
//! forward pass exposes them through a *tap*: a callback invoked with every
//! layer's output tensor and its structural path, free to mutate it in
//! place. The fault crates use this hook; training ignores it.

use crate::params::Param;
use bdlfi_tensor::Tensor;

/// Whether a forward pass is a training step (batch statistics, caches for
/// backward) or pure inference (running statistics, still caching nothing
/// extra).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: normalisation layers use batch statistics and update
    /// running averages; caches for the backward pass are recorded.
    Train,
    /// Inference: normalisation layers use running statistics.
    Eval,
}

/// Mutable callback applied to each layer output during a forward pass.
///
/// Arguments are the layer's structural path (e.g. `"layer1.block0.conv1"`)
/// and its freshly computed output, which may be mutated in place.
pub type ActivationTap<'a> = &'a mut dyn FnMut(&str, &mut Tensor);

/// Per-call state threaded through a forward pass: the [`Mode`], the current
/// structural path and an optional [`ActivationTap`].
pub struct ForwardCtx<'a> {
    mode: Mode,
    tap: Option<ActivationTap<'a>>,
    path: Vec<String>,
}

impl<'a> ForwardCtx<'a> {
    /// Context for a plain forward pass in the given mode, without a tap.
    pub fn new(mode: Mode) -> Self {
        ForwardCtx {
            mode,
            tap: None,
            path: Vec::new(),
        }
    }

    /// Context that additionally fires `tap` after every layer.
    pub fn with_tap(mode: Mode, tap: ActivationTap<'a>) -> Self {
        ForwardCtx {
            mode,
            tap: Some(tap),
            path: Vec::new(),
        }
    }

    /// The pass mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Enters a child scope (composite layers call this around children).
    pub fn push(&mut self, name: &str) {
        self.path.push(name.to_string());
    }

    /// Leaves the current child scope.
    ///
    /// # Panics
    ///
    /// Panics if the scope stack is empty (unbalanced `push`/`pop`).
    pub fn pop(&mut self) {
        self.path
            .pop()
            // bdlfi-lint: allow(BD010) -- documented `# Panics` contract: unbalanced push/pop is a Layer-impl bug, not campaign input
            .expect("ForwardCtx::pop without matching push");
    }

    /// The current structural path, components joined with `.`.
    pub fn current_path(&self) -> String {
        self.path.join(".")
    }

    /// Fires the activation tap (if any) on `output` at the current path.
    pub fn fire(&mut self, output: &mut Tensor) {
        if let Some(tap) = self.tap.as_mut() {
            let path = self.path.join(".");
            tap(&path, output);
        }
    }
}

/// A differentiable network component.
///
/// Layers own their parameters and the caches needed to run a backward pass
/// for the most recent forward pass. Composite layers (e.g.
/// [`crate::Sequential`], [`crate::layers::BasicBlock`]) contain children and
/// forward the parameter visitors with extended paths.
pub trait Layer: Send + Sync {
    /// Short machine-readable layer kind, e.g. `"dense"`.
    fn kind(&self) -> &'static str;

    /// Computes the layer output, caching whatever the backward pass needs.
    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx) -> Tensor;

    /// Propagates `grad_out = ∂L/∂output` to `∂L/∂input`, accumulating
    /// parameter gradients.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before any [`Layer::forward`] in
    /// [`Mode::Train`].
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every parameter with its full dotted path under `path`.
    fn visit_params(&self, path: &str, f: &mut dyn FnMut(&str, &Param)) {
        let _ = (path, f);
    }

    /// Visits every parameter mutably with its full dotted path under
    /// `path`.
    fn visit_params_mut(&mut self, path: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        let _ = (path, f);
    }

    /// Clones the layer into a boxed trait object.
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Downcasting hook for consumers that need concrete-layer access
    /// (the post-training quantizer walks a trained [`crate::Sequential`]
    /// and extracts Dense/Conv2d/BatchNorm2d/BasicBlock internals).
    ///
    /// Returns `None` by default; layers with quantizable structure
    /// override it to return `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_tracks_paths() {
        let mut ctx = ForwardCtx::new(Mode::Eval);
        assert_eq!(ctx.current_path(), "");
        ctx.push("layer1");
        ctx.push("block0");
        assert_eq!(ctx.current_path(), "layer1.block0");
        ctx.pop();
        assert_eq!(ctx.current_path(), "layer1");
    }

    #[test]
    #[should_panic(expected = "without matching push")]
    fn unbalanced_pop_panics() {
        ForwardCtx::new(Mode::Eval).pop();
    }

    #[test]
    fn tap_fires_with_path_and_can_mutate() {
        let mut seen = Vec::new();
        let mut tap = |path: &str, t: &mut Tensor| {
            seen.push(path.to_string());
            t.scale_inplace(2.0);
        };
        let mut ctx = ForwardCtx::with_tap(Mode::Eval, &mut tap);
        ctx.push("fc");
        let mut out = Tensor::ones([2]);
        ctx.fire(&mut out);
        ctx.pop();
        drop(ctx);
        assert_eq!(seen, vec!["fc".to_string()]);
        assert_eq!(out.data(), &[2.0, 2.0]);
    }

    #[test]
    fn ctx_without_tap_fires_nothing() {
        let mut ctx = ForwardCtx::new(Mode::Train);
        let mut out = Tensor::ones([2]);
        ctx.fire(&mut out);
        assert_eq!(out.data(), &[1.0, 1.0]);
        assert_eq!(ctx.mode(), Mode::Train);
    }
}
