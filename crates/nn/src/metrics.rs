//! Classification metrics — including the statistic the whole reproduction
//! revolves around: classification error under fault injection.

use bdlfi_tensor::Tensor;

/// Fraction of rows whose argmax matches the label, in `[0, 1]`.
///
/// # Panics
///
/// Panics if `logits` is not rank 2 or `labels.len()` differs from the batch
/// size.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    assert_eq!(logits.rank(), 2, "accuracy expects (batch, classes) logits");
    assert_eq!(
        logits.dim(0),
        labels.len(),
        "label count must match batch size"
    );
    if labels.is_empty() {
        return f64::NAN;
    }
    let preds = logits.argmax_rows();
    let correct = preds
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / labels.len() as f64
}

/// Classification error `1 − accuracy`, in `[0, 1]` — the y-axis of the
/// paper's Fig. 2 and Fig. 4 (reported there as a percentage).
///
/// # Panics
///
/// Panics under the same conditions as [`accuracy`].
pub fn classification_error(logits: &Tensor, labels: &[usize]) -> f64 {
    1.0 - accuracy(logits, labels)
}

/// Per-class confusion matrix: `counts[true][pred]`.
///
/// # Panics
///
/// Panics if `logits` is not rank 2, the batch sizes differ, or a label is
/// `>= classes`.
pub fn confusion_matrix(logits: &Tensor, labels: &[usize], classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(
        logits.rank(),
        2,
        "confusion_matrix expects (batch, classes) logits"
    );
    assert_eq!(
        logits.dim(0),
        labels.len(),
        "label count must match batch size"
    );
    let mut m = vec![vec![0usize; classes]; classes];
    for (&pred, &truth) in logits.argmax_rows().iter().zip(labels.iter()) {
        assert!(
            truth < classes,
            "label {truth} out of range for {classes} classes"
        );
        let pred = pred.min(classes - 1);
        m[truth][pred] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec(
            vec![
                2.0, 1.0, 0.0, // pred 0
                0.0, 5.0, 1.0, // pred 1
                0.0, 0.0, 9.0, // pred 2
                1.0, 0.0, 0.5, // pred 0
            ],
            [4, 3],
        );
        assert_eq!(accuracy(&logits, &[0, 1, 2, 2]), 0.75);
        assert_eq!(classification_error(&logits, &[0, 1, 2, 2]), 0.25);
    }

    #[test]
    fn empty_batch_gives_nan() {
        assert!(accuracy(&Tensor::zeros([0, 3]), &[]).is_nan());
    }

    #[test]
    fn confusion_matrix_counts() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], [3, 2]);
        let m = confusion_matrix(&logits, &[0, 1, 1], 2);
        assert_eq!(m[0][0], 1); // true 0 predicted 0
        assert_eq!(m[1][1], 1); // true 1 predicted 1
        assert_eq!(m[1][0], 1); // true 1 predicted 0
        assert_eq!(m[0][1], 0);
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn mismatched_labels_panic() {
        accuracy(&Tensor::zeros([2, 2]), &[0]);
    }
}
