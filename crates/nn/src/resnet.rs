//! Builder for the paper's second evaluated network: ResNet-18 (Fig. 3).
//!
//! Topology (CIFAR variant, as used by the paper's CIFAR-10 evaluation):
//! a 3×3 stem convolution, four stages of two [`BasicBlock`]s with channel
//! widths `[w, 2w, 4w, 8w]` and stride-2 downsampling at the start of stages
//! 2–4, global average pooling and a final dense classifier — 18 weighted
//! layers in total (1 stem + 2·2·4 block convs + 1 fc).
//!
//! The paper runs the standard width `w = 64`. This reproduction defaults to
//! a narrower `w` for CPU-tractable campaigns; the topology — which is what
//! the per-layer injection experiment (Fig. 3) measures — is identical, and
//! `w = 64` is one argument away (see DESIGN.md §4).

use crate::layers::{BasicBlock, BatchNorm2d, Conv2d, Dense, GlobalAvgPool, Relu};
use crate::sequential::Sequential;
use bdlfi_tensor::Conv2dSpec;
use rand::Rng;

/// Configuration for [`resnet18`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResNetConfig {
    /// Input image channels (3 for RGB).
    pub in_channels: usize,
    /// Base width `w` (the paper's network uses 64).
    pub base_width: usize,
    /// Number of output classes.
    pub classes: usize,
}

impl Default for ResNetConfig {
    /// CPU-tractable default: RGB input, base width 8, 10 classes.
    fn default() -> Self {
        ResNetConfig {
            in_channels: 3,
            base_width: 8,
            classes: 10,
        }
    }
}

/// Builds a CIFAR-style ResNet-18 as a [`Sequential`].
///
/// Layer names follow the torchvision convention (`conv1`, `bn1`, `relu`,
/// `layer1_0` … `layer4_1`, `avgpool`, `fc`), so per-layer fault campaigns
/// report recognisable positions.
///
/// # Panics
///
/// Panics if any configuration field is zero.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let cfg = bdlfi_nn::ResNetConfig { in_channels: 3, base_width: 4, classes: 10 };
/// let mut net = bdlfi_nn::resnet18(cfg, &mut rng);
/// let logits = net.predict(&bdlfi_tensor::Tensor::zeros([1, 3, 32, 32]));
/// assert_eq!(logits.dims(), &[1, 10]);
/// ```
pub fn resnet18<R: Rng + ?Sized>(cfg: ResNetConfig, rng: &mut R) -> Sequential {
    assert!(cfg.in_channels > 0, "resnet18 requires in_channels > 0");
    assert!(cfg.base_width > 0, "resnet18 requires base_width > 0");
    assert!(cfg.classes > 0, "resnet18 requires classes > 0");

    let w = cfg.base_width;
    let mut net = Sequential::new()
        .with(
            "conv1",
            Conv2d::without_bias(cfg.in_channels, w, Conv2dSpec::new(3).with_padding(1), rng),
        )
        .with("bn1", BatchNorm2d::new(w))
        .with("relu", Relu::new());

    let stage_widths = [w, 2 * w, 4 * w, 8 * w];
    let mut in_c = w;
    for (stage, &out_c) in stage_widths.iter().enumerate() {
        let stride = if stage == 0 { 1 } else { 2 };
        net.push(
            format!("layer{}_0", stage + 1),
            BasicBlock::new(in_c, out_c, stride, rng),
        );
        net.push(
            format!("layer{}_1", stage + 1),
            BasicBlock::new(out_c, out_c, 1, rng),
        );
        in_c = out_c;
    }

    net.push("avgpool", GlobalAvgPool::new());
    net.push("fc", Dense::new(8 * w, cfg.classes, rng));
    net
}

/// The injectable "layer positions" of a ResNet-18 built by [`resnet18`],
/// ordered by depth: the stem, the eight basic blocks and the classifier.
///
/// This is the x-axis of the paper's Fig. 3 (layer-by-layer injection).
pub fn resnet18_layer_positions() -> Vec<&'static str> {
    vec![
        "conv1", "layer1_0", "layer1_1", "layer2_0", "layer2_1", "layer3_0", "layer3_1",
        "layer4_0", "layer4_1", "fc",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use bdlfi_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> (Sequential, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let net = resnet18(
            ResNetConfig {
                in_channels: 3,
                base_width: 2,
                classes: 10,
            },
            &mut rng,
        );
        (net, rng)
    }

    #[test]
    fn forward_shape_is_logits() {
        let (mut net, mut rng) = tiny();
        let x = Tensor::rand_normal([2, 3, 32, 32], 0.0, 1.0, &mut rng);
        let y = net.predict(&x);
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn has_eighteen_weighted_layers() {
        let (net, _) = tiny();
        // Count conv + dense weights (the "18" in ResNet-18 counts these,
        // excluding the three projection shortcuts).
        let mut weighted = 0;
        net.visit_params("", &mut |p, _| {
            if p.ends_with(".weight") && !p.contains("bn") && !p.contains("down_bn") {
                weighted += 1;
            }
        });
        // 1 stem + 16 block convs + 3 projection convs + 1 fc = 21 weights;
        // canonical count excludes projections: 21 - 3 = 18.
        assert_eq!(weighted, 21);
        let mut projections = 0;
        net.visit_params("", &mut |p, _| {
            if p.contains("down_conv") && p.ends_with(".weight") {
                projections += 1;
            }
        });
        assert_eq!(projections, 3);
        assert_eq!(weighted - projections, 18);
    }

    #[test]
    fn layer_positions_match_structure() {
        let (net, _) = tiny();
        let names = net.layer_names();
        for pos in resnet18_layer_positions() {
            assert!(names.contains(&pos.to_string()), "missing {pos}");
        }
    }

    #[test]
    fn spatial_downsampling_by_eight() {
        let (mut net, mut rng) = tiny();
        // 32x32 -> stage strides 1,2,2,2 -> 4x4 before GAP. Check via tap.
        let x = Tensor::rand_normal([1, 3, 32, 32], 0.0, 1.0, &mut rng);
        let mut last_spatial = None;
        net.predict_with_tap(&x, &mut |p, t| {
            if p == "layer4_1" {
                last_spatial = Some(t.dims().to_vec());
            }
        });
        assert_eq!(last_spatial.unwrap(), vec![1, 16, 4, 4]);
    }

    #[test]
    fn width_scales_parameter_count_quadratically() {
        let mut rng = StdRng::seed_from_u64(1);
        let small = resnet18(
            ResNetConfig {
                in_channels: 3,
                base_width: 2,
                classes: 10,
            },
            &mut rng,
        );
        let big = resnet18(
            ResNetConfig {
                in_channels: 3,
                base_width: 4,
                classes: 10,
            },
            &mut rng,
        );
        let (s, b) = (small.param_count(), big.param_count());
        assert!(b > 3 * s, "expected roughly quadratic growth: {s} -> {b}");
    }

    #[test]
    fn train_mode_forward_backward_runs() {
        use crate::layer::{ForwardCtx, Mode};
        let (mut net, mut rng) = tiny();
        let x = Tensor::rand_normal([2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let mut ctx = ForwardCtx::new(Mode::Train);
        let y = crate::layer::Layer::forward(&mut net, &x, &mut ctx);
        let g = Tensor::ones(y.dims());
        let gx = crate::layer::Layer::backward(&mut net, &g);
        assert_eq!(gx.dims(), x.dims());
    }
}
