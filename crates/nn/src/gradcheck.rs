//! Finite-difference gradient checking for layers and whole models —
//! the correctness tool every hand-written backward pass in this workspace
//! is validated against.

use crate::layer::{ForwardCtx, Layer, Mode};
use bdlfi_tensor::Tensor;

/// Result of one gradient check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheck {
    /// Largest absolute difference between analytic and finite-difference
    /// gradients over the checked coordinates.
    pub max_abs_err: f32,
    /// Number of coordinates checked.
    pub checked: usize,
}

impl GradCheck {
    /// Whether the check passed at tolerance `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err <= tol
    }
}

/// Checks a layer's *input* gradient against central finite differences of
/// the scalar loss `L = <forward(x), probe>`.
///
/// Checks every input coordinate when `x.len() <= max_coords`, otherwise a
/// deterministic stride of them.
///
/// # Panics
///
/// Panics if the layer's forward output shape changes between calls.
pub fn check_input_gradient(
    layer: &mut dyn Layer,
    x: &Tensor,
    probe: &Tensor,
    eps: f32,
    max_coords: usize,
) -> GradCheck {
    let loss = |l: &mut dyn Layer, x: &Tensor| -> f32 {
        l.forward(x, &mut ForwardCtx::new(Mode::Train)).dot(probe)
    };
    let _ = loss(layer, x);
    let analytic = layer.backward(probe);

    let stride = (x.len() / max_coords.max(1)).max(1);
    let mut max_abs_err = 0.0f32;
    let mut checked = 0;
    let mut idx = 0;
    while idx < x.len() {
        let mut xp = x.clone();
        xp.data_mut()[idx] += eps;
        let mut xm = x.clone();
        xm.data_mut()[idx] -= eps;
        let fd = (loss(layer, &xp) - loss(layer, &xm)) / (2.0 * eps);
        max_abs_err = max_abs_err.max((fd - analytic.data()[idx]).abs());
        checked += 1;
        idx += stride;
    }
    GradCheck {
        max_abs_err,
        checked,
    }
}

/// Checks a layer's *parameter* gradients against central finite
/// differences, visiting up to `max_coords` coordinates per parameter.
pub fn check_param_gradients(
    layer: &mut dyn Layer,
    x: &Tensor,
    probe: &Tensor,
    eps: f32,
    max_coords: usize,
) -> GradCheck {
    // Zero accumulators, then one backward to populate analytic gradients.
    layer.visit_params_mut("", &mut |_, p| p.zero_grad());
    let _ = layer
        .forward(x, &mut ForwardCtx::new(Mode::Train))
        .dot(probe);
    layer.backward(probe);

    // Snapshot analytic grads.
    let mut grads: Vec<(String, Vec<f32>)> = Vec::new();
    layer.visit_params("", &mut |path, p| {
        grads.push((path.to_string(), p.grad.data().to_vec()));
    });

    let mut max_abs_err = 0.0f32;
    let mut checked = 0;
    for (path, grad) in &grads {
        let len = grad.len();
        let stride = (len / max_coords.max(1)).max(1);
        let mut idx = 0;
        while idx < len {
            let perturb = |delta: f32, layer: &mut dyn Layer| -> f32 {
                let mut orig = 0.0;
                layer.visit_params_mut("", &mut |p, param| {
                    if p == path {
                        orig = param.value.data()[idx];
                        param.value.data_mut()[idx] = orig + delta;
                    }
                });
                let out = layer
                    .forward(x, &mut ForwardCtx::new(Mode::Eval))
                    .dot(probe);
                layer.visit_params_mut("", &mut |p, param| {
                    if p == path {
                        param.value.data_mut()[idx] = orig;
                    }
                });
                out
            };
            let fd = (perturb(eps, layer) - perturb(-eps, layer)) / (2.0 * eps);
            max_abs_err = max_abs_err.max((fd - grad[idx]).abs());
            checked += 1;
            idx += stride;
        }
    }
    GradCheck {
        max_abs_err,
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BasicBlock, BatchNorm2d, Conv2d, Dense, Sigmoid, Softmax, Tanh};
    use bdlfi_tensor::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn probe_like(t: &Tensor) -> Tensor {
        Tensor::from_fn(t.dims(), |i| {
            ((i.iter().sum::<usize>() * 7) % 5) as f32 * 0.3 - 0.6
        })
    }

    #[test]
    fn every_parametric_layer_passes_gradcheck() {
        let mut rng = StdRng::seed_from_u64(0);
        let x2d = Tensor::rand_normal([3, 4], 0.0, 1.0, &mut rng);
        let x4d = Tensor::rand_normal([2, 3, 6, 6], 0.0, 1.0, &mut rng);

        // Dense.
        let mut dense = Dense::new(4, 5, &mut rng);
        let y = dense.forward(&x2d, &mut ForwardCtx::new(Mode::Eval));
        let probe = probe_like(&y);
        assert!(check_input_gradient(&mut dense, &x2d, &probe, 1e-2, 16).passes(2e-2));
        assert!(check_param_gradients(&mut dense, &x2d, &probe, 1e-2, 8).passes(5e-2));

        // Conv2d.
        let mut conv = Conv2d::new(3, 4, Conv2dSpec::new(3).with_padding(1), &mut rng);
        let y = conv.forward(&x4d, &mut ForwardCtx::new(Mode::Eval));
        let probe = probe_like(&y);
        assert!(check_input_gradient(&mut conv, &x4d, &probe, 1e-2, 12).passes(5e-2));
        assert!(check_param_gradients(&mut conv, &x4d, &probe, 1e-2, 6).passes(1e-1));

        // BatchNorm2d.
        let mut bn = BatchNorm2d::new(3);
        let y = bn.forward(&x4d, &mut ForwardCtx::new(Mode::Train));
        let probe = probe_like(&y);
        assert!(check_input_gradient(&mut bn, &x4d, &probe, 1e-2, 12).passes(5e-2));

        // Residual block.
        let mut block = BasicBlock::new(3, 3, 1, &mut rng);
        let y = block.forward(&x4d, &mut ForwardCtx::new(Mode::Train));
        let probe = probe_like(&y);
        assert!(check_input_gradient(&mut block, &x4d, &probe, 1e-2, 10).passes(1e-1));
    }

    #[test]
    fn smooth_activations_pass_tightly() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::rand_normal([4, 6], 0.0, 1.0, &mut rng);
        for layer in [
            &mut Sigmoid::new() as &mut dyn Layer,
            &mut Tanh::new(),
            &mut Softmax::new(),
        ] {
            let y = layer.forward(&x, &mut ForwardCtx::new(Mode::Eval));
            let probe = probe_like(&y);
            let check = check_input_gradient(layer, &x, &probe, 1e-3, 24);
            assert!(check.passes(5e-3), "{}: {:?}", layer.kind(), check);
        }
    }

    #[test]
    fn stride_limits_checked_coordinates() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut dense = Dense::new(8, 2, &mut rng);
        let x = Tensor::rand_normal([4, 8], 0.0, 1.0, &mut rng);
        let y = dense.forward(&x, &mut ForwardCtx::new(Mode::Eval));
        let probe = probe_like(&y);
        let check = check_input_gradient(&mut dense, &x, &probe, 1e-2, 4);
        assert!(check.checked <= 8, "{}", check.checked);
    }
}
