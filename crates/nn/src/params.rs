//! Learnable (and fault-injectable) parameters with stable path addressing.
//!
//! Every tensor a network keeps in memory — weights, biases, batch-norm
//! scales and running statistics — is a [`Param`]. Fault injection targets
//! parameters by *path* (e.g. `"layer1.block0.conv1.weight"`), so paths must
//! be stable across clones and (de)serialisation; they are derived purely
//! from model structure.

use bdlfi_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// One named tensor owned by a layer: its value, its gradient accumulator
/// and whether the optimizer updates it.
///
/// Non-trainable parameters (batch-norm running statistics) still live in
/// device memory at inference time and are therefore legitimate fault sites;
/// they are enumerated by the same visitors as trainable weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Local name within the owning layer, e.g. `"weight"`.
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulator, same shape as `value`.
    pub grad: Tensor,
    /// Whether the optimizer should update this parameter.
    pub trainable: bool,
}

impl Param {
    /// Creates a trainable parameter with a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param {
            name: name.into(),
            value,
            grad,
            trainable: true,
        }
    }

    /// Creates a non-trainable parameter (e.g. a running statistic).
    pub fn frozen(name: impl Into<String>, value: Tensor) -> Self {
        let mut p = Param::new(name, value);
        p.trainable = false;
        p
    }

    /// Zeroes the gradient accumulator in place.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar elements in the parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// Joins a parent path and a child component with `.` (no leading dot for an
/// empty parent).
pub fn join_path(parent: &str, child: &str) -> String {
    if parent.is_empty() {
        child.to_string()
    } else {
        format!("{parent}.{child}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_of_same_shape() {
        let p = Param::new("weight", Tensor::ones([2, 3]));
        assert_eq!(p.grad.dims(), &[2, 3]);
        assert_eq!(p.grad.sum(), 0.0);
        assert!(p.trainable);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn frozen_param_is_not_trainable() {
        let p = Param::frozen("running_mean", Tensor::zeros([4]));
        assert!(!p.trainable);
    }

    #[test]
    fn zero_grad_clears_accumulator() {
        let mut p = Param::new("b", Tensor::zeros([3]));
        p.grad.fill(5.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn join_path_handles_empty_parent() {
        assert_eq!(join_path("", "weight"), "weight");
        assert_eq!(join_path("fc", "weight"), "fc.weight");
        assert_eq!(join_path("layer1.block0", "conv1"), "layer1.block0.conv1");
    }
}
