//! Weight persistence: save trained "golden run" networks to JSON and load
//! them back, so figure benches and examples can reuse a network instead of
//! retraining.
//!
//! Only parameter *values* are persisted (not gradients or optimizer
//! state), keyed by parameter path. Loading validates that every saved path
//! exists with the right shape and that no model parameter is missing.

use crate::error::NnError;
use crate::layer::Layer;
use crate::sequential::Sequential;
use bdlfi_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// On-disk representation of a model's weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeightFile {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Parameter values keyed by path.
    pub params: BTreeMap<String, Tensor>,
}

/// Extracts a model's weights as a [`WeightFile`].
pub fn export_weights(model: &Sequential) -> WeightFile {
    let mut params = BTreeMap::new();
    model.visit_params("", &mut |path, p| {
        params.insert(path.to_string(), p.value.clone());
    });
    WeightFile { version: 1, params }
}

/// Installs weights into a structurally matching model.
///
/// # Errors
///
/// Returns [`NnError::WeightMismatch`] if a model parameter is missing from
/// the file, a file entry has no matching model parameter, or shapes differ.
pub fn import_weights(model: &mut Sequential, weights: &WeightFile) -> Result<(), NnError> {
    // Every model param must be present with the right shape.
    let mut error: Option<NnError> = None;
    let mut used = 0usize;
    model.visit_params_mut("", &mut |path, p| {
        if error.is_some() {
            return;
        }
        match weights.params.get(path) {
            None => {
                error = Some(NnError::WeightMismatch {
                    path: path.to_string(),
                    detail: "missing from weight file".into(),
                });
            }
            Some(t) if t.dims() != p.value.dims() => {
                error = Some(NnError::WeightMismatch {
                    path: path.to_string(),
                    detail: format!("shape {:?} != model shape {:?}", t.dims(), p.value.dims()),
                });
            }
            Some(t) => {
                p.value = t.clone();
                used += 1;
            }
        }
    });
    if let Some(e) = error {
        return Err(e);
    }
    if used != weights.params.len() {
        let model_paths: std::collections::BTreeSet<String> =
            model.param_paths().into_iter().collect();
        let orphan = weights
            .params
            .keys()
            .find(|k| !model_paths.contains(*k))
            .cloned()
            .unwrap_or_default();
        return Err(NnError::WeightMismatch {
            path: orphan,
            detail: "present in weight file but not in model".into(),
        });
    }
    Ok(())
}

/// Saves a model's weights to a JSON file.
///
/// # Errors
///
/// Returns an error if the file cannot be written or serialisation fails.
pub fn save_weights(model: &Sequential, path: impl AsRef<Path>) -> Result<(), NnError> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer(std::io::BufWriter::new(file), &export_weights(model))?;
    Ok(())
}

/// Loads weights from a JSON file into a structurally matching model.
///
/// # Errors
///
/// Returns an error if the file cannot be read, parsed, or does not match
/// the model structure.
pub fn load_weights(model: &mut Sequential, path: impl AsRef<Path>) -> Result<(), NnError> {
    let file = std::fs::File::open(path)?;
    let weights: WeightFile = serde_json::from_reader(std::io::BufReader::new(file))?;
    import_weights(model, &weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn export_import_roundtrip() {
        let mut rng = StdRng::seed_from_u64(50);
        let mut a = mlp(2, &[4], 2, &mut rng);
        let mut b = mlp(2, &[4], 2, &mut rng); // different init
        let wf = export_weights(&a);
        import_weights(&mut b, &wf).unwrap();

        let x = Tensor::rand_normal([3, 2], 0.0, 1.0, &mut rng);
        assert!(a.predict(&x).approx_eq(&b.predict(&x), 1e-7));
    }

    #[test]
    fn import_rejects_shape_mismatch() {
        let mut rng = StdRng::seed_from_u64(51);
        let a = mlp(2, &[4], 2, &mut rng);
        let mut b = mlp(2, &[8], 2, &mut rng);
        let err = import_weights(&mut b, &export_weights(&a)).unwrap_err();
        assert!(err.to_string().contains("shape"));
    }

    #[test]
    fn import_rejects_orphan_params() {
        let mut rng = StdRng::seed_from_u64(52);
        let a = mlp(2, &[4, 4], 2, &mut rng); // has fc3.*
        let mut b = mlp(2, &[4], 2, &mut rng);
        let err = import_weights(&mut b, &export_weights(&a)).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("not in model") || msg.contains("shape"),
            "unexpected error: {msg}"
        );
    }

    #[test]
    fn save_load_file_roundtrip() {
        // Unique per process: concurrent test invocations must not collide.
        let dir =
            std::env::temp_dir().join(format!("bdlfi_nn_serialize_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.json");

        let mut rng = StdRng::seed_from_u64(53);
        let a = mlp(3, &[5], 4, &mut rng);
        save_weights(&a, &path).unwrap();
        let mut b = mlp(3, &[5], 4, &mut rng);
        load_weights(&mut b, &path).unwrap();
        assert_eq!(export_weights(&a).params, export_weights(&b).params);

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let mut rng = StdRng::seed_from_u64(54);
        let mut m = mlp(2, &[2], 2, &mut rng);
        let err = load_weights(&mut m, "/nonexistent/weights.json").unwrap_err();
        assert!(matches!(err, NnError::Io(_)));
    }
}
