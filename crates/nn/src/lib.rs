//! # bdlfi-nn
//!
//! Neural-network substrate for the BDLFI reproduction ("Towards a Bayesian
//! Approach for Assessing Fault Tolerance of Deep Neural Networks",
//! DSN 2019).
//!
//! The paper evaluates two networks — an MLP (2 → 32 ReLU → softmax) and a
//! ResNet-18 trained on CIFAR-10 — and injects transient faults into their
//! parameters and activations. This crate provides:
//!
//! * a [`Layer`] trait with manual reverse-mode backprop and an
//!   **activation tap** ([`ForwardCtx`]) that lets fault injectors mutate
//!   intermediate activations in flight;
//! * concrete layers ([`layers`]): dense, conv2d, batch norm, ReLU, pooling,
//!   flatten and the residual [`layers::BasicBlock`];
//! * the [`Sequential`] container with stable, dotted **parameter paths**
//!   (`"layer1_0.conv1.weight"`) used by the fault crates to address
//!   injection sites;
//! * model builders [`mlp`] and [`resnet18`];
//! * losses ([`loss`]), optimizers ([`optim`]), a mini-batch [`Trainer`] and
//!   evaluation helpers ([`metrics`]);
//! * weight persistence ([`serialize`]) so the "golden run" networks are
//!   trained once and reused by every experiment.
//!
//! # Examples
//!
//! Train the paper's MLP on a toy task:
//!
//! ```
//! use bdlfi_nn::{mlp, Trainer, TrainConfig, optim::Sgd, evaluate};
//! use bdlfi_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let x = Tensor::rand_normal([64, 2], 0.0, 1.0, &mut rng);
//! let y: Vec<usize> = x.data().chunks(2).map(|p| usize::from(p[0] > 0.0)).collect();
//!
//! let mut model = mlp(2, &[32], 2, &mut rng);
//! let mut trainer = Trainer::new(
//!     Sgd::new(0.1).with_momentum(0.9),
//!     TrainConfig { epochs: 20, batch_size: 16, ..TrainConfig::default() },
//! );
//! trainer.fit(&mut model, &x, &y, &mut rng);
//! assert!(evaluate(&mut model, &x, &y, 32) > 0.8);
//! ```

#![warn(missing_docs)]

mod error;
pub mod gradcheck;
mod infer;
mod layer;
pub mod layers;
pub mod loss;
pub mod metrics;
mod mlp;
pub mod optim;
mod params;
mod resnet;
mod sequential;
pub mod serialize;
mod trainer;

pub use error::NnError;
pub use infer::{predict_all, predict_batched, PrefixCache};
pub use layer::{ActivationTap, ForwardCtx, Layer, Mode};
pub use mlp::mlp;
pub use params::{join_path, Param};
pub use resnet::{resnet18, resnet18_layer_positions, ResNetConfig};
pub use sequential::Sequential;
pub use trainer::{evaluate, EpochStats, TrainConfig, Trainer};
