//! The Adam optimizer (Kingma & Ba, 2015) with bias correction.

use crate::layer::Layer;
use crate::optim::Optimizer;
use crate::sequential::Sequential;
use bdlfi_tensor::Tensor;
use std::collections::HashMap;

/// Adam: per-parameter adaptive learning rates from first/second moment
/// estimates.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    moments: HashMap<String, (Tensor, Tensor)>,
}

impl Adam {
    /// Creates Adam with the conventional defaults
    /// (`β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: HashMap::new(),
        }
    }

    /// Overrides the moment decay rates, returning the optimizer.
    ///
    /// # Panics
    ///
    /// Panics unless both betas are in `[0, 1)`.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2),
            "betas must be in [0, 1)"
        );
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut Sequential) {
        self.t += 1;
        let (lr, b1, b2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        let bias1 = 1.0 - b1.powi(t as i32);
        let bias2 = 1.0 - b2.powi(t as i32);
        let moments = &mut self.moments;
        model.visit_params_mut("", &mut |path, p| {
            if !p.trainable {
                return;
            }
            let (m, v) = moments
                .entry(path.to_string())
                .or_insert_with(|| (Tensor::zeros(p.value.dims()), Tensor::zeros(p.value.dims())));
            // m ← β₁ m + (1-β₁) g ; v ← β₂ v + (1-β₂) g².
            m.scale_inplace(b1);
            m.axpy(1.0 - b1, &p.grad);
            v.scale_inplace(b2);
            v.axpy(1.0 - b2, &p.grad.mul_t(&p.grad));
            // w ← w − lr · m̂ / (√v̂ + ε)
            for ((w, &mi), &vi) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(m.data().iter())
                .zip(v.data().iter())
            {
                let m_hat = mi / bias1;
                let v_hat = vi / bias2;
                *w -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use bdlfi_tensor::Tensor;

    fn model_with_grad(grad: f32) -> Sequential {
        let mut m = Sequential::new().with(
            "fc",
            Dense::from_weights(Tensor::ones([1, 1]), Tensor::zeros([1])),
        );
        m.with_param_mut("fc.weight", &mut |p| p.grad.fill(grad));
        m
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        // With bias correction, the first Adam step has magnitude ≈ lr
        // regardless of gradient scale.
        for g in [0.001f32, 1.0, 1000.0] {
            let mut m = model_with_grad(g);
            Adam::new(0.1).step(&mut m);
            let w = m.param_value("fc.weight").unwrap().data()[0];
            assert!((1.0 - w - 0.1).abs() < 1e-3, "g={g}, step={}", 1.0 - w);
        }
    }

    #[test]
    fn step_direction_follows_gradient_sign() {
        let mut m = model_with_grad(-1.0);
        Adam::new(0.05).step(&mut m);
        assert!(m.param_value("fc.weight").unwrap().data()[0] > 1.0);
    }

    #[test]
    fn converges_on_quadratic() {
        // Minimise (w - 3)^2 by feeding grad = 2(w - 3).
        let mut m = Sequential::new().with(
            "fc",
            Dense::from_weights(Tensor::zeros([1, 1]), Tensor::zeros([1])),
        );
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let w = m.param_value("fc.weight").unwrap().data()[0];
            m.with_param_mut("fc.weight", &mut |p| p.grad.fill(2.0 * (w - 3.0)));
            opt.step(&mut m);
        }
        let w = m.param_value("fc.weight").unwrap().data()[0];
        assert!((w - 3.0).abs() < 0.05, "w = {w}");
    }

    #[test]
    fn frozen_params_are_skipped() {
        use crate::layers::BatchNorm2d;
        let mut m = Sequential::new().with("bn", BatchNorm2d::new(1));
        m.with_param_mut("bn.running_var", &mut |p| p.grad.fill(5.0));
        Adam::new(0.5).step(&mut m);
        assert_eq!(m.param_value("bn.running_var").unwrap().data(), &[1.0]);
    }
}
