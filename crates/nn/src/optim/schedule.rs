//! Learning-rate schedules: step decay, cosine annealing and linear
//! warmup, applied per epoch on top of any [`crate::optim::Optimizer`].

use serde::{Deserialize, Serialize};

/// A learning-rate schedule: base learning rate → per-epoch learning rate.
pub trait Schedule: Send + Sync {
    /// The learning rate to use for `epoch` (0-based) given the base rate.
    fn rate(&self, base: f32, epoch: usize) -> f32;
}

/// Multiplies the rate by `gamma` at each listed milestone epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepDecay {
    /// Epochs (0-based) at whose start the decay applies.
    pub milestones: Vec<usize>,
    /// Multiplicative decay per milestone.
    pub gamma: f32,
}

impl Schedule for StepDecay {
    fn rate(&self, base: f32, epoch: usize) -> f32 {
        let hits = self.milestones.iter().filter(|&&m| m <= epoch).count() as i32;
        base * self.gamma.powi(hits)
    }
}

/// Cosine annealing from the base rate to `min_rate` over `total_epochs`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CosineAnnealing {
    /// Length of the annealing horizon.
    pub total_epochs: usize,
    /// Floor rate at the end of the horizon.
    pub min_rate: f32,
}

impl Schedule for CosineAnnealing {
    fn rate(&self, base: f32, epoch: usize) -> f32 {
        if self.total_epochs <= 1 {
            return self.min_rate;
        }
        let t = (epoch.min(self.total_epochs - 1)) as f32 / (self.total_epochs - 1) as f32;
        let cos = (std::f32::consts::PI * t).cos();
        self.min_rate + 0.5 * (base - self.min_rate) * (1.0 + cos)
    }
}

/// Linear warmup over the first `warmup_epochs`, then an inner schedule.
pub struct Warmup<S: Schedule> {
    /// Number of warmup epochs (rate ramps from `base / warmup_epochs`).
    pub warmup_epochs: usize,
    /// Schedule applied after warmup (epoch indices are shifted).
    pub inner: S,
}

impl<S: Schedule> Schedule for Warmup<S> {
    fn rate(&self, base: f32, epoch: usize) -> f32 {
        if self.warmup_epochs > 0 && epoch < self.warmup_epochs {
            base * (epoch + 1) as f32 / self.warmup_epochs as f32
        } else {
            self.inner.rate(base, epoch - self.warmup_epochs)
        }
    }
}

/// The identity schedule (constant rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Constant;

impl Schedule for Constant {
    fn rate(&self, base: f32, _epoch: usize) -> f32 {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_decay_applies_per_milestone() {
        let s = StepDecay {
            milestones: vec![2, 4],
            gamma: 0.1,
        };
        assert_eq!(s.rate(1.0, 0), 1.0);
        assert_eq!(s.rate(1.0, 1), 1.0);
        assert!((s.rate(1.0, 2) - 0.1).abs() < 1e-7);
        assert!((s.rate(1.0, 3) - 0.1).abs() < 1e-7);
        assert!((s.rate(1.0, 4) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn cosine_endpoints_and_monotonicity() {
        let s = CosineAnnealing {
            total_epochs: 11,
            min_rate: 0.01,
        };
        assert!((s.rate(1.0, 0) - 1.0).abs() < 1e-6);
        assert!((s.rate(1.0, 10) - 0.01).abs() < 1e-6);
        // Beyond the horizon stays at the floor.
        assert!((s.rate(1.0, 50) - 0.01).abs() < 1e-6);
        // Monotone decreasing on the horizon.
        let mut prev = f32::INFINITY;
        for e in 0..11 {
            let r = s.rate(1.0, e);
            assert!(r <= prev + 1e-7);
            prev = r;
        }
    }

    #[test]
    fn warmup_ramps_then_delegates() {
        let s = Warmup {
            warmup_epochs: 4,
            inner: Constant,
        };
        assert!((s.rate(1.0, 0) - 0.25).abs() < 1e-7);
        assert!((s.rate(1.0, 3) - 1.0).abs() < 1e-7);
        assert_eq!(s.rate(1.0, 9), 1.0);
    }

    #[test]
    fn warmup_shifts_inner_epochs() {
        let s = Warmup {
            warmup_epochs: 2,
            inner: StepDecay {
                milestones: vec![1],
                gamma: 0.5,
            },
        };
        // Epoch 2 maps to inner epoch 0 (no decay yet), epoch 3 to inner 1.
        assert_eq!(s.rate(1.0, 2), 1.0);
        assert!((s.rate(1.0, 3) - 0.5).abs() < 1e-7);
    }
}
