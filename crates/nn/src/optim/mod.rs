//! Optimizers: stochastic gradient descent with momentum and Adam.
//!
//! Optimizers keep per-parameter state keyed by parameter *path*, so they
//! work with any model structure and survive parameter visitation order
//! changes.

mod adam;
mod schedule;
mod sgd;

pub use adam::Adam;
pub use schedule::{Constant, CosineAnnealing, Schedule, StepDecay, Warmup};
pub use sgd::Sgd;

use crate::sequential::Sequential;

/// A gradient-based parameter updater.
pub trait Optimizer {
    /// Applies one update step from the gradients currently accumulated in
    /// the model, then leaves the gradients untouched (call
    /// [`Sequential::zero_grads`] before the next accumulation).
    fn step(&mut self, model: &mut Sequential);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);
}
