//! Stochastic gradient descent with classical momentum and decoupled weight
//! decay.

use crate::layer::Layer;
use crate::optim::Optimizer;
use crate::sequential::Sequential;
use bdlfi_tensor::Tensor;
use std::collections::HashMap;

/// SGD with momentum: `v ← μ v + g + λ w`, `w ← w − lr · v`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<String, Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate (no momentum, no decay).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// Sets the momentum coefficient, returning the optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is not in `[0, 1)`.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
        self
    }

    /// Sets L2 weight decay, returning the optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `weight_decay < 0`.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = weight_decay;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut Sequential) {
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        model.visit_params_mut("", &mut |path, p| {
            if !p.trainable {
                return;
            }
            let mut update = p.grad.clone();
            if wd > 0.0 {
                update.axpy(wd, &p.value);
            }
            if momentum > 0.0 {
                let v = velocity
                    .entry(path.to_string())
                    .or_insert_with(|| Tensor::zeros(p.value.dims()));
                v.scale_inplace(momentum);
                v.add_assign_t(&update);
                update = v.clone();
            }
            p.value.axpy(-lr, &update);
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use bdlfi_tensor::Tensor;

    fn model_with_grad(grad: f32) -> Sequential {
        let mut m = Sequential::new().with(
            "fc",
            Dense::from_weights(Tensor::ones([1, 1]), Tensor::zeros([1])),
        );
        m.with_param_mut("fc.weight", &mut |p| p.grad.fill(grad));
        m
    }

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let mut m = model_with_grad(2.0);
        Sgd::new(0.1).step(&mut m);
        let w = m.param_value("fc.weight").unwrap();
        assert!((w.data()[0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn momentum_accelerates_repeated_steps() {
        let mut m = model_with_grad(1.0);
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        opt.step(&mut m);
        let w1 = m.param_value("fc.weight").unwrap().data()[0];
        m.with_param_mut("fc.weight", &mut |p| p.grad.fill(1.0));
        opt.step(&mut m);
        let w2 = m.param_value("fc.weight").unwrap().data()[0];
        // Second step is bigger: v2 = 0.9*1 + 1 = 1.9 > v1 = 1.
        assert!((1.0 - w1) < (w1 - w2));
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut m = model_with_grad(0.0);
        Sgd::new(0.1).with_weight_decay(0.5).step(&mut m);
        let w = m.param_value("fc.weight").unwrap().data()[0];
        assert!((w - 0.95).abs() < 1e-6);
    }

    #[test]
    fn frozen_params_are_not_updated() {
        use crate::layers::BatchNorm2d;
        let mut m = Sequential::new().with("bn", BatchNorm2d::new(2));
        m.with_param_mut("bn.running_mean", &mut |p| p.grad.fill(10.0));
        Sgd::new(1.0).step(&mut m);
        assert_eq!(
            m.param_value("bn.running_mean").unwrap().data(),
            &[0.0, 0.0]
        );
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Sgd::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
