//! 2-D convolution layer over NCHW batches (ResNet-18 substrate).

use crate::layer::{ForwardCtx, Layer, Mode};
use crate::params::{join_path, Param};
use bdlfi_tensor::{conv2d, conv2d_backward, Conv2dSpec, Tensor};
use rand::Rng;

/// A 2-D convolution with weight `(out_c, in_c, kh, kw)` and optional bias.
///
/// ResNet convolutions are conventionally bias-free (batch norm follows);
/// use [`Conv2d::without_bias`] for those.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    spec: Conv2dSpec,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(in_c: usize, out_c: usize, spec: Conv2dSpec, rng: &mut R) -> Self {
        let (kh, kw) = spec.kernel;
        let fan_in = in_c * kh * kw;
        Conv2d {
            weight: Param::new(
                "weight",
                Tensor::kaiming_uniform([out_c, in_c, kh, kw], fan_in, rng),
            ),
            bias: Some(Param::new("bias", Tensor::zeros([out_c]))),
            spec,
            cached_input: None,
        }
    }

    /// Creates a bias-free convolution (the ResNet convention before batch
    /// norm).
    pub fn without_bias<R: Rng + ?Sized>(
        in_c: usize,
        out_c: usize,
        spec: Conv2dSpec,
        rng: &mut R,
    ) -> Self {
        let mut c = Conv2d::new(in_c, out_c, spec, rng);
        c.bias = None;
        c
    }

    /// The convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weight.value.dim(0)
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.weight.value.dim(1)
    }

    /// The weight tensor `(out_c, in_c, kh, kw)` — read access for the
    /// quantizer.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// The bias tensor `(out_c,)`, if the convolution has one.
    pub fn bias_value(&self) -> Option<&Tensor> {
        self.bias.as_ref().map(|b| &b.value)
    }
}

impl Layer for Conv2d {
    fn kind(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        if ctx.mode() == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        conv2d(
            input,
            &self.weight.value,
            self.bias.as_ref().map(|b| &b.value),
            self.spec,
        )
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            // bdlfi-lint: allow(BD010) -- train-mode contract: Trainer::fit always runs forward before backward; the message names the missing cache
            .expect("conv2d backward before train-mode forward");
        let (gi, gw, gb) = conv2d_backward(input, &self.weight.value, grad_out, self.spec);
        self.weight.grad.add_assign_t(&gw);
        if let Some(b) = self.bias.as_mut() {
            b.grad.add_assign_t(&gb);
        }
        gi
    }

    fn visit_params(&self, path: &str, f: &mut dyn FnMut(&str, &Param)) {
        f(&join_path(path, "weight"), &self.weight);
        if let Some(b) = &self.bias {
            f(&join_path(path, "bias"), b);
        }
    }

    fn visit_params_mut(&mut self, path: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&join_path(path, "weight"), &mut self.weight);
        if let Some(b) = self.bias.as_mut() {
            f(&join_path(path, "bias"), b);
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_geometry() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = Conv2d::new(3, 8, Conv2dSpec::new(3).with_padding(1), &mut rng);
        let x = Tensor::rand_normal([2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let y = c.forward(&x, &mut ForwardCtx::new(Mode::Eval));
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
        assert_eq!(c.out_channels(), 8);
        assert_eq!(c.in_channels(), 3);
    }

    #[test]
    fn strided_conv_downsamples() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut c = Conv2d::without_bias(
            4,
            4,
            Conv2dSpec::new(3).with_stride(2).with_padding(1),
            &mut rng,
        );
        let x = Tensor::rand_normal([1, 4, 16, 16], 0.0, 1.0, &mut rng);
        let y = c.forward(&x, &mut ForwardCtx::new(Mode::Eval));
        assert_eq!(y.dims(), &[1, 4, 8, 8]);
    }

    #[test]
    fn without_bias_exposes_only_weight() {
        let mut rng = StdRng::seed_from_u64(7);
        let c = Conv2d::without_bias(2, 2, Conv2dSpec::new(3), &mut rng);
        let mut names = Vec::new();
        c.visit_params("conv1", &mut |p, _| names.push(p.to_string()));
        assert_eq!(names, vec!["conv1.weight"]);
    }

    #[test]
    fn backward_matches_finite_differences_on_weight() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut c = Conv2d::new(2, 3, Conv2dSpec::new(3).with_padding(1), &mut rng);
        let x = Tensor::rand_normal([1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let mut ctx = ForwardCtx::new(Mode::Train);
        let y = c.forward(&x, &mut ctx);
        c.backward(&Tensor::ones(y.dims()));
        let gw = c.weight.grad.clone();

        let eps = 1e-2f32;
        for idx in [0usize, 10, 33] {
            let orig = c.weight.value.data()[idx];
            c.weight.value.data_mut()[idx] = orig + eps;
            let lp = c.forward(&x, &mut ForwardCtx::new(Mode::Eval)).sum();
            c.weight.value.data_mut()[idx] = orig - eps;
            let lm = c.forward(&x, &mut ForwardCtx::new(Mode::Eval)).sum();
            c.weight.value.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gw.data()[idx]).abs() < 0.05,
                "fd={fd} got={}",
                gw.data()[idx]
            );
        }
    }
}
