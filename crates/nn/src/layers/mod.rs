//! Concrete layer implementations.

mod activation;
mod batchnorm;
mod block;
mod conv2d;
mod dense;
mod dropout;
mod flatten;
mod pool;
mod relu;
mod softmax;

pub use activation::{Sigmoid, Tanh};
pub use batchnorm::BatchNorm2d;
pub use block::BasicBlock;
pub use conv2d::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use relu::Relu;
pub use softmax::Softmax;
