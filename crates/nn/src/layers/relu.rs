//! Rectified linear unit layer.

use crate::layer::{ForwardCtx, Layer, Mode};
use bdlfi_tensor::Tensor;

/// Element-wise `max(0, x)` with the standard subgradient (0 at 0).
#[derive(Debug, Clone, Default)]
pub struct Relu {
    // 1.0 where the input was positive, 0.0 elsewhere.
    mask: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn kind(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        if ctx.mode() == Mode::Train {
            self.mask = Some(input.map(|x| if x > 0.0 { 1.0 } else { 0.0 }));
        }
        input.relu()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            // bdlfi-lint: allow(BD010) -- train-mode contract: Trainer::fit always runs forward before backward; the message names the missing cache
            .expect("relu backward before train-mode forward");
        grad_out.mul_t(mask)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_and_backward_masks() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0, -3.0], [2, 2]);
        let y = r.forward(&x, &mut ForwardCtx::new(Mode::Train));
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = r.backward(&Tensor::ones([2, 2]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn gradient_at_zero_is_zero() {
        let mut r = Relu::new();
        r.forward(&Tensor::zeros([1, 1]), &mut ForwardCtx::new(Mode::Train));
        assert_eq!(r.backward(&Tensor::ones([1, 1])).data(), &[0.0]);
    }

    #[test]
    fn has_no_params() {
        let r = Relu::new();
        let mut count = 0;
        r.visit_params("", &mut |_, _| count += 1);
        assert_eq!(count, 0);
    }
}
