//! Fully connected (dense) layer — the layer type of the paper's MLP
//! (Fig. 1 ①: `y₀ = max(0, W₀ᵀ x + b₀)` is [`Dense`] followed by
//! [`crate::layers::Relu`]).

use crate::layer::{ForwardCtx, Layer};
use crate::params::{join_path, Param};
use bdlfi_tensor::Tensor;
use rand::Rng;

/// A fully connected layer computing `y = x · W + b` over row-major batches:
/// input `(n, in)`, weight `(in, out)`, bias `(out,)`, output `(n, out)`.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Kaiming-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Dense {
            weight: Param::new(
                "weight",
                Tensor::kaiming_uniform([in_dim, out_dim], in_dim, rng),
            ),
            bias: Param::new("bias", Tensor::zeros([out_dim])),
            cached_input: None,
        }
    }

    /// Creates a dense layer from explicit weight `(in, out)` and bias
    /// `(out,)` tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent.
    pub fn from_weights(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.rank(), 2, "dense weight must be rank 2");
        assert_eq!(
            bias.dims(),
            &[weight.dim(1)],
            "dense bias must match weight columns"
        );
        Dense {
            weight: Param::new("weight", weight),
            bias: Param::new("bias", bias),
            cached_input: None,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.weight.value.dim(0)
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.weight.value.dim(1)
    }

    /// The weight tensor `(in, out)` — read access for the quantizer.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// The bias tensor `(out,)`.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }

    /// Recomputes only the output columns `cols` of `y = x · W + b`,
    /// returning an `(n, cols.len())` tensor whose column `c` is
    /// bit-identical to column `cols[c]` of a full [`Layer::forward`] on
    /// the same input.
    ///
    /// This is the sparse-delta evaluator's building block: a fault
    /// confined to weight column `j` (or bias element `j`) perturbs only
    /// output column `j`, so the faulty layer output is the golden output
    /// with the touched columns recomputed. Bit-identity holds because the
    /// blocked GEMM reduces every output element over `k` in a fixed order
    /// that does not depend on which rows or columns share a call.
    ///
    /// # Panics
    ///
    /// Panics if the input width mismatches or a column index is out of
    /// range.
    pub fn forward_cols(&self, input: &Tensor, cols: &[usize]) -> Tensor {
        assert_eq!(input.rank(), 2, "dense expects a (batch, features) input");
        let (in_dim, out_dim) = (self.in_dim(), self.out_dim());
        assert_eq!(input.dim(1), in_dim, "dense input width mismatch");
        assert!(
            cols.iter().all(|&c| c < out_dim),
            "column index out of range"
        );
        let w = self.weight.value.data();
        let mut wsub = Vec::with_capacity(in_dim * cols.len());
        for r in 0..in_dim {
            let row = &w[r * out_dim..(r + 1) * out_dim];
            wsub.extend(cols.iter().map(|&c| row[c]));
        }
        let b = self.bias.value.data();
        let bsub: Vec<f32> = cols.iter().map(|&c| b[c]).collect();
        input
            .matmul(&Tensor::from_vec(wsub, [in_dim, cols.len()]))
            .add_row_broadcast(&Tensor::from_vec(bsub, [cols.len()]))
    }
}

impl Layer for Dense {
    fn kind(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        assert_eq!(input.rank(), 2, "dense expects a (batch, features) input");
        assert_eq!(
            input.dim(1),
            self.in_dim(),
            "dense input width {} does not match weight {}",
            input.dim(1),
            self.in_dim()
        );
        if ctx.mode() == crate::layer::Mode::Train {
            self.cached_input = Some(input.clone());
        }
        input
            .matmul(&self.weight.value)
            .add_row_broadcast(&self.bias.value)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            // bdlfi-lint: allow(BD010) -- train-mode contract: Trainer::fit always runs forward before backward; the message names the missing cache
            .expect("dense backward before train-mode forward");
        // dW += xᵀ · dY ; db += column sums of dY ; dX = dY · Wᵀ
        self.weight.grad.add_assign_t(&input.matmul_tn(grad_out));
        self.bias.grad.add_assign_t(&grad_out.sum_axis0());
        grad_out.matmul_nt(&self.weight.value)
    }

    fn visit_params(&self, path: &str, f: &mut dyn FnMut(&str, &Param)) {
        f(&join_path(path, "weight"), &self.weight);
        f(&join_path(path, "bias"), &self.bias);
    }

    fn visit_params_mut(&mut self, path: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&join_path(path, "weight"), &mut self.weight);
        f(&join_path(path, "bias"), &mut self.bias);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixed_dense() -> Dense {
        Dense::from_weights(
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]),
            Tensor::from_vec(vec![0.1, 0.2, 0.3], [3]),
        )
    }

    #[test]
    fn forward_matches_manual_affine() {
        let mut d = fixed_dense();
        let x = Tensor::from_vec(vec![1.0, -1.0], [1, 2]);
        let y = d.forward(&x, &mut ForwardCtx::new(Mode::Eval));
        // y = [1*1 + (-1)*4, 1*2 + (-1)*5, 1*3 + (-1)*6] + bias
        assert_eq!(y.data(), &[-2.9, -2.8, -2.7]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Tensor::rand_normal([4, 3], 0.0, 1.0, &mut rng);
        let mut ctx = ForwardCtx::new(Mode::Train);
        let y = d.forward(&x, &mut ctx);
        let grad_out = Tensor::ones(y.dims());
        let gx = d.backward(&grad_out);

        let eps = 1e-2f32;
        let loss = |d: &mut Dense, x: &Tensor| d.forward(x, &mut ForwardCtx::new(Mode::Eval)).sum();
        // Input gradient.
        for idx in [0usize, 5, 11] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&mut d, &xp) - loss(&mut d, &xm)) / (2.0 * eps);
            assert!(
                (fd - gx.data()[idx]).abs() < 1e-2,
                "dx[{idx}] fd={fd} got={}",
                gx.data()[idx]
            );
        }
        // Weight gradient.
        let gw = d.weight.grad.clone();
        for idx in [0usize, 3, 5] {
            let orig = d.weight.value.data()[idx];
            d.weight.value.data_mut()[idx] = orig + eps;
            let lp = loss(&mut d, &x);
            d.weight.value.data_mut()[idx] = orig - eps;
            let lm = loss(&mut d, &x);
            d.weight.value.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gw.data()[idx]).abs() < 5e-2,
                "dw[{idx}] fd={fd} got={}",
                gw.data()[idx]
            );
        }
        // Bias gradient: dL/db_j = batch size for sum loss.
        assert!(d.bias.grad.approx_eq(&Tensor::full([2], 4.0), 1e-4));
    }

    #[test]
    fn eval_mode_does_not_cache() {
        let mut d = fixed_dense();
        let x = Tensor::zeros([1, 2]);
        d.forward(&x, &mut ForwardCtx::new(Mode::Eval));
        assert!(d.cached_input.is_none());
    }

    #[test]
    #[should_panic(expected = "backward before train-mode forward")]
    fn backward_without_forward_panics() {
        fixed_dense().backward(&Tensor::zeros([1, 3]));
    }

    #[test]
    fn visit_params_yields_weight_and_bias() {
        let d = fixed_dense();
        let mut names = Vec::new();
        d.visit_params("fc", &mut |p, _| names.push(p.to_string()));
        assert_eq!(names, vec!["fc.weight", "fc.bias"]);
    }

    #[test]
    #[should_panic(expected = "input width")]
    fn forward_rejects_wrong_width() {
        fixed_dense().forward(&Tensor::zeros([1, 5]), &mut ForwardCtx::new(Mode::Eval));
    }

    #[test]
    fn forward_cols_is_bitwise_identical_to_full_forward() {
        let mut rng = StdRng::seed_from_u64(17);
        // Wide enough to span several GEMM column panels.
        let mut d = Dense::new(33, 70, &mut rng);
        let x = Tensor::rand_normal([19, 33], 0.0, 1.0, &mut rng);
        let full = d.forward(&x, &mut ForwardCtx::new(Mode::Eval));
        for cols in [vec![0usize], vec![69], vec![3, 17, 64], (0..70).collect()] {
            let sub = d.forward_cols(&x, &cols);
            assert_eq!(sub.dims(), &[19, cols.len()]);
            for i in 0..19 {
                for (c, &col) in cols.iter().enumerate() {
                    assert_eq!(
                        sub.data()[i * cols.len() + c].to_bits(),
                        full.data()[i * 70 + col].to_bits(),
                        "row {i} col {col}"
                    );
                }
            }
        }
    }

    #[test]
    fn gradients_accumulate_across_backwards() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Dense::new(2, 2, &mut rng);
        let x = Tensor::ones([1, 2]);
        let mut ctx = ForwardCtx::new(Mode::Train);
        let y = d.forward(&x, &mut ctx);
        let g = Tensor::ones(y.dims());
        d.backward(&g);
        let after_one = d.weight.grad.clone();
        d.forward(&x, &mut ctx);
        d.backward(&g);
        assert!(d.weight.grad.approx_eq(&after_one.scale(2.0), 1e-6));
    }
}
