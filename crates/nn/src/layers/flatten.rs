//! Flatten layer: `(n, d1, d2, ...) -> (n, d1*d2*...)`.

use crate::layer::{ForwardCtx, Layer, Mode};
use bdlfi_tensor::Tensor;

/// Flattens all trailing dimensions into one feature axis, preserving the
/// batch dimension.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten {
            cached_input_dims: None,
        }
    }
}

impl Layer for Flatten {
    fn kind(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        assert!(input.rank() >= 1, "flatten expects a batched tensor");
        if ctx.mode() == Mode::Train {
            self.cached_input_dims = Some(input.dims().to_vec());
        }
        let n = input.dim(0);
        let features = input.len() / n.max(1);
        input.reshape([n, features])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dims = self
            .cached_input_dims
            .as_ref()
            // bdlfi-lint: allow(BD010) -- train-mode contract: Trainer::fit always runs forward before backward; the message names the missing cache
            .expect("flatten backward before train-mode forward");
        grad_out.reshape(dims.clone())
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_shape() {
        let mut f = Flatten::new();
        let x = Tensor::from_fn([2, 3, 2, 2], |i| i[0] as f32);
        let y = f.forward(&x, &mut ForwardCtx::new(Mode::Train));
        assert_eq!(y.dims(), &[2, 12]);
        let gx = f.backward(&y);
        assert_eq!(gx.dims(), x.dims());
        assert_eq!(gx.data(), x.data());
    }
}
