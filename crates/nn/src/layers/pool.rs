//! Pooling layers: max pooling and the global-average-pool head.

use crate::layer::{ForwardCtx, Layer, Mode};
use bdlfi_tensor::{
    global_avg_pool, global_avg_pool_backward, maxpool2d, maxpool2d_backward, Pool2dSpec, Tensor,
};

/// Max pooling over NCHW batches.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    spec: Pool2dSpec,
    cached_argmax: Option<Vec<usize>>,
    cached_input_dims: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given window geometry.
    pub fn new(spec: Pool2dSpec) -> Self {
        MaxPool2d {
            spec,
            cached_argmax: None,
            cached_input_dims: None,
        }
    }

    /// The pooling geometry.
    pub fn spec(&self) -> Pool2dSpec {
        self.spec
    }
}

impl Layer for MaxPool2d {
    fn kind(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let (out, argmax) = maxpool2d(input, self.spec);
        if ctx.mode() == Mode::Train {
            self.cached_argmax = Some(argmax);
            self.cached_input_dims = Some(input.dims().to_vec());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self
            .cached_argmax
            .as_ref()
            // bdlfi-lint: allow(BD010) -- train-mode contract: Trainer::fit always runs forward before backward; the message names the missing cache
            .expect("maxpool backward before train-mode forward");
        // bdlfi-lint: allow(BD010) -- same forward-first contract as the line above, for the argmax cache
        let dims = self.cached_input_dims.as_ref().unwrap();
        maxpool2d_backward(grad_out, argmax, dims)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Global average pooling `(n, c, h, w) -> (n, c)` — the ResNet-18 head.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    cached_input_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global-average-pool layer.
    pub fn new() -> Self {
        GlobalAvgPool {
            cached_input_dims: None,
        }
    }
}

impl Layer for GlobalAvgPool {
    fn kind(&self) -> &'static str {
        "global_avg_pool"
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        if ctx.mode() == Mode::Train {
            self.cached_input_dims = Some(input.dims().to_vec());
        }
        global_avg_pool(input)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dims = self
            .cached_input_dims
            .as_ref()
            // bdlfi-lint: allow(BD010) -- train-mode contract: Trainer::fit always runs forward before backward; the message names the missing cache
            .expect("global_avg_pool backward before train-mode forward");
        global_avg_pool_backward(grad_out, dims)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_roundtrip() {
        let mut mp = MaxPool2d::new(Pool2dSpec::new(2));
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 2, 2]);
        let y = mp.forward(&x, &mut ForwardCtx::new(Mode::Train));
        assert_eq!(y.data(), &[4.0]);
        let gx = mp.backward(&Tensor::from_vec(vec![7.0], [1, 1, 1, 1]));
        assert_eq!(gx.data(), &[0.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn gap_forward_and_backward_shapes() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::ones([2, 3, 4, 4]);
        let y = gap.forward(&x, &mut ForwardCtx::new(Mode::Train));
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(y.data(), &[1.0; 6]);
        let gx = gap.backward(&Tensor::ones([2, 3]));
        assert_eq!(gx.dims(), &[2, 3, 4, 4]);
        assert!((gx.data()[0] - 1.0 / 16.0).abs() < 1e-7);
    }

    #[test]
    fn pool_layers_have_no_params() {
        let mut count = 0;
        MaxPool2d::new(Pool2dSpec::new(2)).visit_params("", &mut |_, _| count += 1);
        GlobalAvgPool::new().visit_params("", &mut |_, _| count += 1);
        assert_eq!(count, 0);
    }
}
