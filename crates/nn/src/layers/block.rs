//! The ResNet basic residual block (two 3×3 convolutions with a skip
//! connection), matching the topology of the paper's ResNet-18 (Fig. 3).

use crate::layer::{ForwardCtx, Layer};
use crate::layers::{BatchNorm2d, Conv2d, Relu};
use bdlfi_tensor::{Conv2dSpec, Tensor};
use rand::Rng;

/// A basic residual block: `out = relu(bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x))`.
///
/// When `stride > 1` or the channel count changes, the shortcut is a
/// 1×1 strided convolution followed by batch norm (the standard projection
/// shortcut); otherwise it is the identity.
#[derive(Clone)]
pub struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    relu2: Relu,
    downsample: Option<(Conv2d, BatchNorm2d)>,
    cached_shortcut_identity: bool,
}

impl std::fmt::Debug for BasicBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BasicBlock")
            .field("in_channels", &self.conv1.in_channels())
            .field("out_channels", &self.conv2.out_channels())
            .field("projection_shortcut", &self.downsample.is_some())
            .finish()
    }
}

impl BasicBlock {
    /// Creates a basic block mapping `in_c` channels to `out_c` channels
    /// with the given stride on the first convolution.
    pub fn new<R: Rng + ?Sized>(in_c: usize, out_c: usize, stride: usize, rng: &mut R) -> Self {
        let conv1 = Conv2d::without_bias(
            in_c,
            out_c,
            Conv2dSpec::new(3).with_stride(stride).with_padding(1),
            rng,
        );
        let conv2 = Conv2d::without_bias(out_c, out_c, Conv2dSpec::new(3).with_padding(1), rng);
        let downsample = if stride != 1 || in_c != out_c {
            Some((
                Conv2d::without_bias(in_c, out_c, Conv2dSpec::new(1).with_stride(stride), rng),
                BatchNorm2d::new(out_c),
            ))
        } else {
            None
        };
        BasicBlock {
            conv1,
            bn1: BatchNorm2d::new(out_c),
            relu1: Relu::new(),
            conv2,
            bn2: BatchNorm2d::new(out_c),
            relu2: Relu::new(),
            downsample,
            cached_shortcut_identity: true,
        }
    }

    /// Whether the block uses a projection (1×1 conv) shortcut.
    pub fn has_projection(&self) -> bool {
        self.downsample.is_some()
    }

    /// The first 3×3 convolution.
    pub fn conv1(&self) -> &Conv2d {
        &self.conv1
    }

    /// The batch norm after [`BasicBlock::conv1`].
    pub fn bn1(&self) -> &BatchNorm2d {
        &self.bn1
    }

    /// The second 3×3 convolution.
    pub fn conv2(&self) -> &Conv2d {
        &self.conv2
    }

    /// The batch norm after [`BasicBlock::conv2`].
    pub fn bn2(&self) -> &BatchNorm2d {
        &self.bn2
    }

    /// The projection shortcut (1×1 conv + batch norm), if present.
    pub fn downsample(&self) -> Option<(&Conv2d, &BatchNorm2d)> {
        self.downsample.as_ref().map(|(c, b)| (c, b))
    }

    fn run_child(child: &mut dyn Layer, name: &str, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        ctx.push(name);
        let mut y = child.forward(x, ctx);
        ctx.fire(&mut y);
        ctx.pop();
        y
    }
}

impl Layer for BasicBlock {
    fn kind(&self) -> &'static str {
        "basic_block"
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let h = Self::run_child(&mut self.conv1, "conv1", input, ctx);
        let h = Self::run_child(&mut self.bn1, "bn1", &h, ctx);
        let h = Self::run_child(&mut self.relu1, "relu1", &h, ctx);
        let h = Self::run_child(&mut self.conv2, "conv2", &h, ctx);
        let z = Self::run_child(&mut self.bn2, "bn2", &h, ctx);

        let shortcut = match self.downsample.as_mut() {
            Some((conv, bn)) => {
                self.cached_shortcut_identity = false;
                let s = Self::run_child(conv, "down_conv", input, ctx);
                Self::run_child(bn, "down_bn", &s, ctx)
            }
            None => {
                self.cached_shortcut_identity = true;
                input.clone()
            }
        };

        let sum = z.add_t(&shortcut);
        let mut out = self.relu2.forward(&sum, ctx);
        ctx.push("relu2");
        ctx.fire(&mut out);
        ctx.pop();
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // Through the final ReLU; the gradient then splits across the sum.
        let d_sum = self.relu2.backward(grad_out);

        // Main path.
        let d = self.bn2.backward(&d_sum);
        let d = self.conv2.backward(&d);
        let d = self.relu1.backward(&d);
        let d = self.bn1.backward(&d);
        let d_main = self.conv1.backward(&d);

        // Shortcut path.
        let d_short = match self.downsample.as_mut() {
            Some((conv, bn)) => {
                let d = bn.backward(&d_sum);
                conv.backward(&d)
            }
            None => d_sum,
        };

        d_main.add_t(&d_short)
    }

    fn visit_params(&self, path: &str, f: &mut dyn FnMut(&str, &crate::params::Param)) {
        let p = |c: &str| crate::params::join_path(path, c);
        self.conv1.visit_params(&p("conv1"), f);
        self.bn1.visit_params(&p("bn1"), f);
        self.conv2.visit_params(&p("conv2"), f);
        self.bn2.visit_params(&p("bn2"), f);
        if let Some((conv, bn)) = &self.downsample {
            conv.visit_params(&p("down_conv"), f);
            bn.visit_params(&p("down_bn"), f);
        }
    }

    fn visit_params_mut(&mut self, path: &str, f: &mut dyn FnMut(&str, &mut crate::params::Param)) {
        let base = path.to_string();
        let p = |c: &str| crate::params::join_path(&base, c);
        self.conv1.visit_params_mut(&p("conv1"), f);
        self.bn1.visit_params_mut(&p("bn1"), f);
        self.conv2.visit_params_mut(&p("conv2"), f);
        self.bn2.visit_params_mut(&p("bn2"), f);
        if let Some((conv, bn)) = self.downsample.as_mut() {
            conv.visit_params_mut(&p("down_conv"), f);
            bn.visit_params_mut(&p("down_bn"), f);
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_block_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut b = BasicBlock::new(4, 4, 1, &mut rng);
        assert!(!b.has_projection());
        let x = Tensor::rand_normal([2, 4, 8, 8], 0.0, 1.0, &mut rng);
        let y = b.forward(&x, &mut ForwardCtx::new(Mode::Eval));
        assert_eq!(y.dims(), x.dims());
    }

    #[test]
    fn strided_block_downsamples_and_projects() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut b = BasicBlock::new(4, 8, 2, &mut rng);
        assert!(b.has_projection());
        let x = Tensor::rand_normal([2, 4, 8, 8], 0.0, 1.0, &mut rng);
        let y = b.forward(&x, &mut ForwardCtx::new(Mode::Eval));
        assert_eq!(y.dims(), &[2, 8, 4, 4]);
    }

    #[test]
    fn tap_sees_all_child_activations() {
        let mut rng = StdRng::seed_from_u64(43);
        let mut b = BasicBlock::new(2, 4, 2, &mut rng);
        let x = Tensor::rand_normal([1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let mut paths = Vec::new();
        let mut tap = |p: &str, _t: &mut Tensor| paths.push(p.to_string());
        let mut ctx = ForwardCtx::with_tap(Mode::Train, &mut tap);
        b.forward(&x, &mut ctx);
        drop(ctx);
        assert_eq!(
            paths,
            vec![
                "conv1",
                "bn1",
                "relu1",
                "conv2",
                "bn2",
                "down_conv",
                "down_bn",
                "relu2"
            ]
        );
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(44);
        let mut b = BasicBlock::new(2, 2, 1, &mut rng);
        let x = Tensor::rand_normal([2, 2, 4, 4], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal([2, 2, 4, 4], 0.0, 1.0, &mut rng);
        let loss = |b: &mut BasicBlock, x: &Tensor| {
            b.forward(x, &mut ForwardCtx::new(Mode::Train)).dot(&w)
        };
        let _ = loss(&mut b, &x);
        let gx = b.backward(&w);

        let eps = 1e-2f32;
        for idx in [0usize, 17, 31, 63] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&mut b, &xp) - loss(&mut b, &xm)) / (2.0 * eps);
            assert!(
                (fd - gx.data()[idx]).abs() < 0.1,
                "dx[{idx}] fd={fd} got={}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn param_paths_are_structured() {
        let mut rng = StdRng::seed_from_u64(45);
        let b = BasicBlock::new(2, 4, 2, &mut rng);
        let mut paths = Vec::new();
        b.visit_params("block0", &mut |p, _| paths.push(p.to_string()));
        assert!(paths.contains(&"block0.conv1.weight".to_string()));
        assert!(paths.contains(&"block0.down_conv.weight".to_string()));
        assert!(paths.contains(&"block0.bn2.running_var".to_string()));
    }
}
