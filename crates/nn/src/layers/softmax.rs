//! Explicit softmax layer — the paper's output stage (Fig. 1 ①:
//! "FC Layer → Softmax").
//!
//! Training pipelines normally fold the softmax into the cross-entropy
//! loss for numerical stability; this explicit layer exists so inference
//! pipelines can expose the softmax *output* as a fault site (the paper
//! injects into "outputs" too) and so campaigns can read calibrated
//! probabilities directly.

use crate::layer::{ForwardCtx, Layer, Mode};
use bdlfi_tensor::Tensor;

/// Row-wise softmax over `(batch, classes)` logits.
#[derive(Debug, Clone, Default)]
pub struct Softmax {
    cached_output: Option<Tensor>,
}

impl Softmax {
    /// Creates a softmax layer.
    pub fn new() -> Self {
        Softmax {
            cached_output: None,
        }
    }
}

impl Layer for Softmax {
    fn kind(&self) -> &'static str {
        "softmax"
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let out = input.softmax_rows();
        if ctx.mode() == Mode::Train {
            self.cached_output = Some(out.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // dL/dx_i = y_i * (g_i - sum_j g_j y_j) per row.
        let y = self
            .cached_output
            .as_ref()
            // bdlfi-lint: allow(BD010) -- train-mode contract: Trainer::fit always runs forward before backward; the message names the missing cache
            .expect("softmax backward before train-mode forward");
        let (n, k) = (y.dim(0), y.dim(1));
        let mut grad_in = y.clone();
        for i in 0..n {
            let yr = y.row(i);
            let gr = grad_out.row(i);
            let dot: f32 = yr.iter().zip(gr.iter()).map(|(a, b)| a * b).sum();
            let out = grad_in.row_mut(i);
            for j in 0..k {
                out[j] = yr[j] * (gr[j] - dot);
            }
        }
        grad_in
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_produces_distributions() {
        let mut s = Softmax::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], [2, 3]);
        let y = s.forward(&x, &mut ForwardCtx::new(Mode::Eval));
        for i in 0..2 {
            let sum: f32 = y.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut s = Softmax::new();
        let x = Tensor::from_vec(vec![0.2, -0.7, 1.1, 0.4], [1, 4]);
        let w = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], [1, 4]);
        let loss =
            |s: &mut Softmax, x: &Tensor| s.forward(x, &mut ForwardCtx::new(Mode::Train)).dot(&w);
        let _ = loss(&mut s, &x);
        let gx = s.backward(&w);

        let eps = 1e-3f32;
        for idx in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&mut s, &xp) - loss(&mut s, &xm)) / (2.0 * eps);
            assert!(
                (fd - gx.data()[idx]).abs() < 1e-3,
                "d[{idx}] fd={fd} got={}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        // Softmax outputs are constrained to the simplex, so the input
        // gradient has zero row sums.
        let mut s = Softmax::new();
        let x = Tensor::from_vec(vec![0.5, 1.5, -0.5], [1, 3]);
        s.forward(&x, &mut ForwardCtx::new(Mode::Train));
        let g = s.backward(&Tensor::from_vec(vec![1.0, 2.0, 3.0], [1, 3]));
        let sum: f32 = g.data().iter().sum();
        assert!(sum.abs() < 1e-6);
    }
}
