//! 2-D batch normalisation over NCHW batches.
//!
//! The running statistics are exposed as *frozen* parameters: they are not
//! updated by the optimizer, but they are resident in memory at inference
//! time, which makes them fault sites for BDLFI just like weights.

use crate::layer::{ForwardCtx, Layer, Mode};
use crate::params::{join_path, Param};
use bdlfi_tensor::Tensor;

/// Batch normalisation with learned per-channel scale (`weight`) and shift
/// (`bias`), tracking running statistics for inference.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Param,
    running_var: Param,
    eps: f32,
    momentum: f32,
    // Caches for backward (train-mode forward only).
    cached_xhat: Option<Tensor>,
    cached_std_inv: Option<Tensor>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps with the
    /// conventional defaults (`eps = 1e-5`, `momentum = 0.1`).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new("weight", Tensor::ones([channels])),
            beta: Param::new("bias", Tensor::zeros([channels])),
            running_mean: Param::frozen("running_mean", Tensor::zeros([channels])),
            running_var: Param::frozen("running_var", Tensor::ones([channels])),
            eps: 1e-5,
            momentum: 0.1,
            cached_xhat: None,
            cached_std_inv: None,
        }
    }

    /// Number of normalised channels.
    pub fn channels(&self) -> usize {
        self.gamma.value.dim(0)
    }

    /// Per-channel `(scale, shift)` of the eval-mode affine transform
    /// `y = scale * x + shift`, for folding this layer into a preceding
    /// convolution: `scale = gamma / sqrt(running_var + eps)`,
    /// `shift = beta - running_mean * scale`.
    pub fn fold_params(&self) -> Vec<(f32, f32)> {
        let g = self.gamma.value.data();
        let b = self.beta.value.data();
        let mu = self.running_mean.value.data();
        let var = self.running_var.value.data();
        (0..self.channels())
            .map(|ch| {
                let scale = g[ch] / (var[ch] + self.eps).sqrt();
                (scale, b[ch] - mu[ch] * scale)
            })
            .collect()
    }

    fn normalize(&self, input: &Tensor, mean: &Tensor, std_inv: &Tensor) -> Tensor {
        let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        let plane = h * w;
        let mut out = input.clone();
        let g = self.gamma.value.data();
        let b = self.beta.value.data();
        for img in 0..n {
            for ch in 0..c {
                let mu = mean.data()[ch];
                let si = std_inv.data()[ch];
                let (gc, bc) = (g[ch], b[ch]);
                let base = (img * c + ch) * plane;
                for x in &mut out.data_mut()[base..base + plane] {
                    *x = gc * (*x - mu) * si + bc;
                }
            }
        }
        out
    }
}

impl Layer for BatchNorm2d {
    fn kind(&self) -> &'static str {
        "batchnorm2d"
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        assert_eq!(input.rank(), 4, "batchnorm2d expects an NCHW tensor");
        assert_eq!(input.dim(1), self.channels(), "channel count mismatch");
        match ctx.mode() {
            Mode::Train => {
                let mean = input.mean_per_channel();
                let var = input.var_per_channel(&mean);
                let std_inv = var.map(|v| 1.0 / (v + self.eps).sqrt());

                // Update running statistics with the EMA convention.
                let m = self.momentum;
                self.running_mean.value =
                    self.running_mean.value.scale(1.0 - m).add_t(&mean.scale(m));
                self.running_var.value = self.running_var.value.scale(1.0 - m).add_t(&var.scale(m));

                // Cache normalised activations for backward.
                let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
                let plane = h * w;
                let mut xhat = input.clone();
                for img in 0..n {
                    for ch in 0..c {
                        let mu = mean.data()[ch];
                        let si = std_inv.data()[ch];
                        let base = (img * c + ch) * plane;
                        for x in &mut xhat.data_mut()[base..base + plane] {
                            *x = (*x - mu) * si;
                        }
                    }
                }
                // y = gamma * xhat + beta
                let mut out = xhat.clone();
                let g = self.gamma.value.data();
                let b = self.beta.value.data();
                for img in 0..n {
                    for ch in 0..c {
                        let base = (img * c + ch) * plane;
                        for x in &mut out.data_mut()[base..base + plane] {
                            *x = g[ch] * *x + b[ch];
                        }
                    }
                }
                self.cached_xhat = Some(xhat);
                self.cached_std_inv = Some(std_inv);
                out
            }
            Mode::Eval => {
                let std_inv = self.running_var.value.map(|v| 1.0 / (v + self.eps).sqrt());
                self.normalize(input, &self.running_mean.value, &std_inv)
            }
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let xhat = self
            .cached_xhat
            .as_ref()
            // bdlfi-lint: allow(BD010) -- train-mode contract: Trainer::fit always runs forward before backward; the message names the missing cache
            .expect("batchnorm backward before train-mode forward");
        // bdlfi-lint: allow(BD010) -- same forward-first contract as the line above, for the batch statistics cache
        let std_inv = self.cached_std_inv.as_ref().unwrap();
        let (n, c, h, w) = (xhat.dim(0), xhat.dim(1), xhat.dim(2), xhat.dim(3));
        let plane = h * w;
        let count = (n * plane) as f32;

        // Per-channel reductions: sum(dy), sum(dy * xhat).
        let mut sum_dy = vec![0.0f64; c];
        let mut sum_dy_xhat = vec![0.0f64; c];
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * plane;
                let dy = &grad_out.data()[base..base + plane];
                let xh = &xhat.data()[base..base + plane];
                for (&d, &x) in dy.iter().zip(xh.iter()) {
                    sum_dy[ch] += d as f64;
                    sum_dy_xhat[ch] += (d * x) as f64;
                }
            }
        }
        for ch in 0..c {
            self.beta.grad.data_mut()[ch] += sum_dy[ch] as f32;
            self.gamma.grad.data_mut()[ch] += sum_dy_xhat[ch] as f32;
        }

        // dx = gamma * std_inv / m * (m*dy - sum_dy - xhat * sum_dy_xhat)
        let mut grad_in = grad_out.clone();
        let g = self.gamma.value.data();
        for img in 0..n {
            for ch in 0..c {
                let k = g[ch] * std_inv.data()[ch] / count;
                let sd = sum_dy[ch] as f32;
                let sdx = sum_dy_xhat[ch] as f32;
                let base = (img * c + ch) * plane;
                let xh = &xhat.data()[base..base + plane];
                let gi = &mut grad_in.data_mut()[base..base + plane];
                for (d, &x) in gi.iter_mut().zip(xh.iter()) {
                    *d = k * (count * *d - sd - x * sdx);
                }
            }
        }
        grad_in
    }

    fn visit_params(&self, path: &str, f: &mut dyn FnMut(&str, &Param)) {
        f(&join_path(path, "weight"), &self.gamma);
        f(&join_path(path, "bias"), &self.beta);
        f(&join_path(path, "running_mean"), &self.running_mean);
        f(&join_path(path, "running_var"), &self.running_var);
    }

    fn visit_params_mut(&mut self, path: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&join_path(path, "weight"), &mut self.gamma);
        f(&join_path(path, "bias"), &mut self.beta);
        f(&join_path(path, "running_mean"), &mut self.running_mean);
        f(&join_path(path, "running_var"), &mut self.running_var);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn train_forward_normalizes_batch() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = StdRng::seed_from_u64(21);
        let x = Tensor::rand_normal([4, 2, 3, 3], 5.0, 2.0, &mut rng);
        let y = bn.forward(&x, &mut ForwardCtx::new(Mode::Train));
        // With gamma=1, beta=0 the output per channel is ~N(0,1).
        let mu = y.mean_per_channel();
        let var = y.var_per_channel(&mu);
        for ch in 0..2 {
            assert!(mu.data()[ch].abs() < 1e-4, "mean {}", mu.data()[ch]);
            assert!(
                (var.data()[ch] - 1.0).abs() < 1e-3,
                "var {}",
                var.data()[ch]
            );
        }
    }

    #[test]
    fn running_stats_track_batch_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::full([2, 1, 2, 2], 10.0);
        for _ in 0..200 {
            bn.forward(&x, &mut ForwardCtx::new(Mode::Train));
        }
        // Constant input: batch mean = 10, var = 0.
        assert!((bn.running_mean.value.data()[0] - 10.0).abs() < 1e-3);
        assert!(bn.running_var.value.data()[0] < 1e-3);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        bn.running_mean.value = Tensor::from_vec(vec![3.0], [1]);
        bn.running_var.value = Tensor::from_vec(vec![4.0], [1]);
        let x = Tensor::full([1, 1, 1, 2], 7.0);
        let y = bn.forward(&x, &mut ForwardCtx::new(Mode::Eval));
        // (7 - 3)/sqrt(4 + eps) ≈ 2.
        assert!((y.data()[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut bn = BatchNorm2d::new(2);
        bn.gamma.value = Tensor::from_vec(vec![1.5, 0.5], [2]);
        bn.beta.value = Tensor::from_vec(vec![0.1, -0.1], [2]);
        let x = Tensor::rand_normal([3, 2, 2, 2], 0.0, 1.0, &mut rng);

        // Weighted-sum loss to get nontrivial gradients.
        let wsum = Tensor::rand_normal([3, 2, 2, 2], 0.0, 1.0, &mut rng);
        let loss = |bn: &mut BatchNorm2d, x: &Tensor| {
            bn.forward(x, &mut ForwardCtx::new(Mode::Train)).dot(&wsum)
        };

        let _ = loss(&mut bn, &x);
        let gx = bn.backward(&wsum);

        let eps = 1e-2f32;
        for idx in [0usize, 7, 13, 23] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&mut bn, &xp) - loss(&mut bn, &xm)) / (2.0 * eps);
            assert!(
                (fd - gx.data()[idx]).abs() < 0.05,
                "dx[{idx}] fd={fd} got={}",
                gx.data()[idx]
            );
        }
        // Gamma/beta gradients.
        let _ = loss(&mut bn, &x);
        for ch in 0..2 {
            let orig = bn.gamma.value.data()[ch];
            bn.gamma.grad.fill(0.0);
            bn.gamma.value.data_mut()[ch] = orig + eps;
            let lp = loss(&mut bn, &x);
            bn.gamma.value.data_mut()[ch] = orig - eps;
            let lm = loss(&mut bn, &x);
            bn.gamma.value.data_mut()[ch] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            // Recompute analytic gradient fresh.
            bn.gamma.grad.fill(0.0);
            bn.beta.grad.fill(0.0);
            let _ = loss(&mut bn, &x);
            bn.backward(&wsum);
            let got = bn.gamma.grad.data()[ch];
            assert!((fd - got).abs() < 0.05, "dgamma[{ch}] fd={fd} got={got}");
        }
    }

    #[test]
    fn visit_params_exposes_running_stats_as_frozen() {
        let bn = BatchNorm2d::new(3);
        let mut frozen = Vec::new();
        bn.visit_params("bn1", &mut |p, param| {
            if !param.trainable {
                frozen.push(p.to_string());
            }
        });
        assert_eq!(frozen, vec!["bn1.running_mean", "bn1.running_var"]);
    }
}
