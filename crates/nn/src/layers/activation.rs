//! Smooth activations (sigmoid, tanh) — BDLFI only assumes end-to-end
//! differentiability ("BFI can be used to inject faults into programs
//! other than neural networks, with the only assumption being that of
//! end-to-end differentiability"), so the layer menu is not ReLU-only.

use crate::layer::{ForwardCtx, Layer, Mode};
use bdlfi_tensor::Tensor;

/// Element-wise logistic sigmoid `1 / (1 + e^{-x})`.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid {
            cached_output: None,
        }
    }
}

impl Layer for Sigmoid {
    fn kind(&self) -> &'static str {
        "sigmoid"
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let out = input.map(|x| 1.0 / (1.0 + (-x).exp()));
        if ctx.mode() == Mode::Train {
            self.cached_output = Some(out.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self
            .cached_output
            .as_ref()
            // bdlfi-lint: allow(BD010) -- train-mode contract: Trainer::fit always runs forward before backward; the message names the missing cache
            .expect("sigmoid backward before train-mode forward");
        // dy/dx = y (1 - y)
        grad_out.zip_map(y, |g, y| g * y * (1.0 - y))
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Element-wise hyperbolic tangent.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh {
            cached_output: None,
        }
    }
}

impl Layer for Tanh {
    fn kind(&self) -> &'static str {
        "tanh"
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let out = input.map(f32::tanh);
        if ctx.mode() == Mode::Train {
            self.cached_output = Some(out.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self
            .cached_output
            .as_ref()
            // bdlfi-lint: allow(BD010) -- train-mode contract: Trainer::fit always runs forward before backward; the message names the missing cache
            .expect("tanh backward before train-mode forward");
        // dy/dx = 1 - y^2
        grad_out.zip_map(y, |g, y| g * (1.0 - y * y))
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradcheck(layer: &mut dyn Layer, x: &Tensor) {
        let w = Tensor::from_fn(x.dims(), |i| (i.iter().sum::<usize>() % 3) as f32 - 1.0);
        let loss =
            |l: &mut dyn Layer, x: &Tensor| l.forward(x, &mut ForwardCtx::new(Mode::Train)).dot(&w);
        let _ = loss(layer, x);
        let gx = layer.backward(&w);
        let eps = 1e-3f32;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(layer, &xp) - loss(layer, &xm)) / (2.0 * eps);
            assert!(
                (fd - gx.data()[idx]).abs() < 1e-2,
                "d[{idx}] fd={fd} got={}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![-100.0, 0.0, 100.0], [1, 3]);
        let y = s.forward(&x, &mut ForwardCtx::new(Mode::Eval));
        assert!(y.data()[0] < 1e-6);
        assert!((y.data()[1] - 0.5).abs() < 1e-7);
        assert!(y.data()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn tanh_is_odd_and_bounded() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![-2.0, 0.0, 2.0], [1, 3]);
        let y = t.forward(&x, &mut ForwardCtx::new(Mode::Eval));
        assert!((y.data()[0] + y.data()[2]).abs() < 1e-7);
        assert_eq!(y.data()[1], 0.0);
        assert!(y.data().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn sigmoid_gradcheck() {
        let x = Tensor::from_vec(vec![0.3, -1.2, 2.0, 0.0, -0.5, 0.9], [2, 3]);
        gradcheck(&mut Sigmoid::new(), &x);
    }

    #[test]
    fn tanh_gradcheck() {
        let x = Tensor::from_vec(vec![0.3, -1.2, 2.0, 0.0, -0.5, 0.9], [2, 3]);
        gradcheck(&mut Tanh::new(), &x);
    }

    #[test]
    fn activations_have_no_params() {
        let mut count = 0;
        Sigmoid::new().visit_params("", &mut |_, _| count += 1);
        Tanh::new().visit_params("", &mut |_, _| count += 1);
        assert_eq!(count, 0);
    }
}
