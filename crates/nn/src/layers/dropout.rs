//! Inverted dropout — standard regularisation for the golden-run training
//! of the paper's networks.

use crate::layer::{ForwardCtx, Layer, Mode};
use bdlfi_tensor::Tensor;

/// Tiny cloneable PRNG (SplitMix64): `StdRng` is deliberately not `Clone`
/// in recent `rand`, but dropout layers must clone with their model (one
/// copy per MCMC chain) without sharing state.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and the survivors are scaled by `1/(1-p)`; at inference
/// the layer is the identity.
///
/// The layer owns its RNG (seeded at construction) so that cloned models —
/// one per MCMC chain — do not share mutable randomness.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: SplitMix64,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        Dropout {
            p,
            rng: SplitMix64(seed),
            mask: None,
        }
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn kind(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        match ctx.mode() {
            Mode::Eval => input.clone(),
            Mode::Train => {
                if self.p == 0.0 {
                    self.mask = Some(Tensor::ones(input.dims()));
                    return input.clone();
                }
                let keep = 1.0 - self.p;
                let scale = 1.0 / keep;
                let rng = &mut self.rng;
                let mask = Tensor::from_vec(
                    (0..input.len())
                        .map(|_| if rng.next_f32() < keep { scale } else { 0.0 })
                        .collect(),
                    input.dims(),
                );
                let out = input.mul_t(&mask);
                self.mask = Some(mask);
                out
            }
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            // bdlfi-lint: allow(BD010) -- train-mode contract: Trainer::fit always runs forward before backward; the message names the missing cache
            .expect("dropout backward before train-mode forward");
        grad_out.mul_t(mask)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], [1, 3]);
        let y = d.forward(&x, &mut ForwardCtx::new(Mode::Eval));
        assert_eq!(y, x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::ones([1, 20_000]);
        let y = d.forward(&x, &mut ForwardCtx::new(Mode::Train));
        // Inverted dropout: E[y] = x.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Roughly 30% of entries are zero.
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!((zeros as f64 / 20_000.0 - 0.3).abs() < 0.03);
    }

    #[test]
    fn backward_masks_like_forward() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones([1, 100]);
        let y = d.forward(&x, &mut ForwardCtx::new(Mode::Train));
        let g = d.backward(&Tensor::ones([1, 100]));
        // Gradient flows exactly where activations survived.
        for (a, b) in y.data().iter().zip(g.data().iter()) {
            assert_eq!(a == &0.0, b == &0.0);
        }
    }

    #[test]
    fn zero_probability_is_identity_in_train() {
        let mut d = Dropout::new(0.0, 4);
        let x = Tensor::from_vec(vec![1.0, -2.0], [1, 2]);
        let y = d.forward(&x, &mut ForwardCtx::new(Mode::Train));
        assert_eq!(y, x);
    }

    #[test]
    fn clones_do_not_share_rng_state() {
        let mut a = Dropout::new(0.5, 5);
        let mut b = a.clone();
        let x = Tensor::ones([1, 64]);
        let ya = a.forward(&x, &mut ForwardCtx::new(Mode::Train));
        let yb = b.forward(&x, &mut ForwardCtx::new(Mode::Train));
        // Same seed state at clone time -> same mask; advancing one does
        // not advance the other.
        assert_eq!(ya, yb);
        let ya2 = a.forward(&x, &mut ForwardCtx::new(Mode::Train));
        assert_ne!(ya2, yb);
        let yb2 = b.forward(&x, &mut ForwardCtx::new(Mode::Train));
        assert_eq!(ya2, yb2);
    }
}
