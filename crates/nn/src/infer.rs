//! Batched eval-mode inference — the campaign inner loop.
//!
//! One implementation shared by the trainer, the BDLFI core and the
//! traditional-FI baseline, so every tool measures exactly the same
//! forward semantics.

use crate::layer::ActivationTap;
use crate::sequential::Sequential;
use bdlfi_tensor::Tensor;

/// Runs eval-mode inference over `inputs` (batched on axis 0) in chunks of
/// `batch_size`, concatenating the logits into one `(n, classes)` tensor.
///
/// The `tap` fires once per batch with an **empty path** on the batch input
/// tensor itself (the hook for input fault sites), then with each layer's
/// structural path on its output — both may mutate the tensor in place.
///
/// # Panics
///
/// Panics if `inputs` has no examples or `batch_size == 0`.
pub fn predict_batched(
    model: &mut Sequential,
    inputs: &Tensor,
    batch_size: usize,
    tap: ActivationTap<'_>,
) -> Tensor {
    let n = inputs.dim(0);
    assert!(n > 0, "predict_batched needs at least one example");
    assert!(batch_size > 0, "batch size must be positive");
    let example_len = inputs.len() / n;
    let mut out: Vec<f32> = Vec::new();
    let mut classes = None;
    let mut i = 0usize;
    while i < n {
        let end = (i + batch_size).min(n);
        let mut dims = inputs.dims().to_vec();
        dims[0] = end - i;
        let mut bx = Tensor::from_vec(
            inputs.data()[i * example_len..end * example_len].to_vec(),
            dims,
        );
        tap("", &mut bx);
        let logits = model.predict_with_tap(&bx, tap);
        if classes.is_none() {
            classes = Some(logits.dim(1));
        }
        out.extend_from_slice(logits.data());
        i = end;
    }
    // `classes` is unset only when `inputs` had zero rows, and then
    // `out` is empty too — `[0, 0]` is the right empty logits shape.
    Tensor::from_vec(out, [n, classes.unwrap_or(0)])
}

/// [`predict_batched`] without a tap.
pub fn predict_all(model: &mut Sequential, inputs: &Tensor, batch_size: usize) -> Tensor {
    predict_batched(model, inputs, batch_size, &mut |_, _| {})
}

/// Golden boundary activations for a fixed evaluation set, enabling
/// incremental suffix re-inference.
///
/// Every top-level layer before the first fault-dirtied one computes on
/// clean weights, so its outputs are bit-identical to the golden run. The
/// cache therefore stores the *golden* activation at every top-level layer
/// boundary (per batch), built once; evaluating a fault configuration then
/// costs only the suffix from its first dirty layer —
/// [`PrefixCache::predict_from`] — instead of the whole depth.
///
/// Resumed runs are bitwise identical to cold runs because
/// [`Sequential::forward_from`] shares the cold path's code and every layer
/// computes each example independently of the rest of its batch
/// (eval-mode batch norm uses running statistics; the blocked matmul
/// reduces each output row in a fixed, batch-independent order).
///
/// The cache holds clean-model activations only; it is immutable after
/// construction and safe to share across MCMC chains evaluating different
/// fault configurations on clones of the same golden model.
pub struct PrefixCache {
    /// `batches[b][l]` = golden output of top-level layer `l - 1` for batch
    /// `b` (`batches[b][0]` is the batch input), so index `l` is exactly
    /// what a forward pass resumed at layer `l` consumes. The last entry is
    /// the golden logits.
    batches: Vec<Vec<Tensor>>,
    layers: usize,
    examples: usize,
    classes: usize,
}

impl std::fmt::Debug for PrefixCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefixCache")
            .field("batches", &self.batches.len())
            .field("layers", &self.layers)
            .field("examples", &self.examples)
            .field("classes", &self.classes)
            .finish()
    }
}

impl PrefixCache {
    /// Runs the (clean) model over `inputs` in chunks of `batch_size`,
    /// recording the activation at every top-level layer boundary.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has no examples or `batch_size == 0`.
    pub fn build(model: &mut Sequential, inputs: &Tensor, batch_size: usize) -> Self {
        let n = inputs.dim(0);
        assert!(n > 0, "PrefixCache needs at least one example");
        assert!(batch_size > 0, "batch size must be positive");
        let layers = model.len();
        let example_len = inputs.len() / n;
        let mut batches = Vec::new();
        let mut classes = 0;
        let mut i = 0usize;
        while i < n {
            let end = (i + batch_size).min(n);
            let mut dims = inputs.dims().to_vec();
            dims[0] = end - i;
            let bx = Tensor::from_vec(
                inputs.data()[i * example_len..end * example_len].to_vec(),
                dims,
            );
            let mut boundary = Vec::with_capacity(layers + 1);
            boundary.push(bx.clone());
            let logits = model.predict_with_tap(&bx, &mut |path, t| {
                // Top-level boundaries only; nested children carry a dot.
                if !path.contains('.') {
                    boundary.push(t.clone());
                }
            });
            debug_assert_eq!(boundary.len(), layers + 1);
            classes = logits.dim(1);
            batches.push(boundary);
            i = end;
        }
        PrefixCache {
            batches,
            layers,
            examples: n,
            classes,
        }
    }

    /// Number of cached evaluation examples.
    pub fn examples(&self) -> usize {
        self.examples
    }

    /// Number of logit columns of the cached model.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of cached batches.
    pub fn num_batches(&self) -> usize {
        self.batches.len()
    }

    /// The golden boundary activation feeding top-level layer `l` of batch
    /// `b` (`l == 0` is the batch input; `l == layers` the golden logits) —
    /// read access for the sparse-delta evaluator.
    ///
    /// # Panics
    ///
    /// Panics if `b` or `l` is out of range.
    pub fn boundary(&self, b: usize, l: usize) -> &Tensor {
        &self.batches[b][l]
    }

    /// The golden logits over the whole evaluation set, assembled from the
    /// cached final boundaries without touching the model.
    pub fn golden_logits(&self) -> Tensor {
        let mut out = Vec::with_capacity(self.examples * self.classes);
        for boundary in &self.batches {
            out.extend_from_slice(boundary[self.layers].data());
        }
        Tensor::from_vec(out, [self.examples, self.classes])
    }

    /// Evaluates `model` (typically with faults applied) over the cached
    /// evaluation set, re-running only layers `start..` on the cached
    /// golden activations.
    ///
    /// `start` must be at most the first layer whose parameters differ
    /// from the golden model, otherwise stale prefix activations are
    /// reused; `start == model.len()` returns the golden logits outright
    /// (the clean-configuration fast path).
    ///
    /// # Panics
    ///
    /// Panics if `model` has a different layer count than the cached one
    /// or `start > model.len()`.
    pub fn predict_from(&self, model: &mut Sequential, start: usize) -> Tensor {
        assert_eq!(
            model.len(),
            self.layers,
            "model shape differs from cached model"
        );
        if start == self.layers {
            return self.golden_logits();
        }
        let mut out = Vec::with_capacity(self.examples * self.classes);
        for boundary in &self.batches {
            let logits = model.forward_from(
                start,
                &boundary[start],
                &mut crate::layer::ForwardCtx::new(crate::layer::Mode::Eval),
            );
            out.extend_from_slice(logits.data());
        }
        Tensor::from_vec(out, [self.examples, self.classes])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batched_matches_single_batch() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = mlp(3, &[5], 2, &mut rng);
        let x = Tensor::rand_normal([11, 3], 0.0, 1.0, &mut rng);
        let full = m.predict(&x);
        for bs in [1, 3, 11, 64] {
            let batched = predict_all(&mut m, &x, bs);
            assert!(full.approx_eq(&batched, 1e-6), "batch size {bs}");
        }
    }

    #[test]
    fn tap_sees_input_with_empty_path_once_per_batch() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = mlp(2, &[4], 2, &mut rng);
        let x = Tensor::zeros([5, 2]);
        let mut input_fires = 0;
        let mut layer_fires = 0;
        predict_batched(&mut m, &x, 2, &mut |path, _| {
            if path.is_empty() {
                input_fires += 1;
            } else {
                layer_fires += 1;
            }
        });
        assert_eq!(input_fires, 3); // batches of 2, 2, 1
        assert_eq!(layer_fires, 3 * 3); // 3 layers per batch
    }

    #[test]
    fn tap_can_corrupt_the_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = mlp(2, &[4], 2, &mut rng);
        let x = Tensor::ones([4, 2]);
        let clean = predict_all(&mut m, &x, 4);
        let corrupted = predict_batched(&mut m, &x, 4, &mut |path, t| {
            if path.is_empty() {
                t.fill(0.0);
            }
        });
        assert!(!clean.approx_eq(&corrupted, 1e-9));
    }

    #[test]
    #[should_panic(expected = "at least one example")]
    fn empty_input_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = mlp(2, &[4], 2, &mut rng);
        predict_all(&mut m, &Tensor::zeros([0, 2]), 4);
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    /// XORs one mantissa bit into the first element of the parameter at
    /// `path` — a representative weight fault.
    fn flip_param(m: &mut Sequential, path: &str) {
        use crate::layer::Layer;
        let mut hit = false;
        m.visit_params_mut("", &mut |p, param| {
            if p == path {
                hit = true;
                let d = param.value.data_mut();
                d[0] = f32::from_bits(d[0].to_bits() ^ (1 << 20));
            }
        });
        assert!(hit, "no parameter {path}");
    }

    #[test]
    fn cached_resume_is_bitwise_identical_on_mlp() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = mlp(3, &[8, 6], 2, &mut rng);
        let x = Tensor::rand_normal([9, 3], 0.0, 1.0, &mut rng);
        let cache = PrefixCache::build(&mut m, &x, 4);
        assert_eq!(
            bits(&cache.golden_logits()),
            bits(&predict_all(&mut m, &x, 4))
        );

        // For each dense layer: corrupt it, compare a cold batched run with
        // the resumed run from the layer's own index — every cut point.
        for path in ["fc1.weight", "fc2.bias", "fc3.weight"] {
            let mut faulty = m.clone();
            flip_param(&mut faulty, path);
            let start = faulty.layer_index_of_param(path).unwrap();
            let cold = predict_all(&mut faulty, &x, 4);
            let warm = cache.predict_from(&mut faulty, start);
            assert_eq!(bits(&cold), bits(&warm), "cut at {path} (layer {start})");
            // Resuming even earlier must also agree (start is an upper
            // bound on what is reusable, not an exact requirement).
            let warm0 = cache.predict_from(&mut faulty, 0);
            assert_eq!(bits(&cold), bits(&warm0));
        }
    }

    #[test]
    fn cached_resume_is_bitwise_identical_on_resnet18() {
        use crate::{resnet18, ResNetConfig};
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = resnet18(
            ResNetConfig {
                in_channels: 3,
                base_width: 2,
                classes: 10,
            },
            &mut rng,
        );
        let x = Tensor::rand_normal([3, 3, 8, 8], 0.0, 1.0, &mut rng);
        let cache = PrefixCache::build(&mut m, &x, 2);

        // One representative parameter per top-level position, including
        // residual-block internals (conv2 sits after the block's skip
        // branch point, so this exercises the block-boundary cut rule).
        for path in [
            "conv1.weight",
            "bn1.weight",
            "layer1_0.conv1.weight",
            "layer2_0.down_conv.weight",
            "layer3_1.conv2.weight",
            "layer4_1.bn2.bias",
            "fc.weight",
        ] {
            let mut faulty = m.clone();
            flip_param(&mut faulty, path);
            let start = faulty.layer_index_of_param(path).unwrap();
            let cold = predict_all(&mut faulty, &x, 2);
            let warm = cache.predict_from(&mut faulty, start);
            assert_eq!(bits(&cold), bits(&warm), "cut at {path} (layer {start})");
        }

        // And the full sweep of cut indices on the clean model.
        for start in 0..=m.len() {
            let warm = cache.predict_from(&mut m, start);
            assert_eq!(
                bits(&cache.golden_logits()),
                bits(&warm),
                "clean cut {start}"
            );
        }
    }

    #[test]
    fn clean_fast_path_skips_the_model_entirely() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = mlp(2, &[4], 2, &mut rng);
        let x = Tensor::rand_normal([5, 2], 0.0, 1.0, &mut rng);
        let cache = PrefixCache::build(&mut m, &x, 5);
        // Corrupt the model arbitrarily: start == len must ignore it.
        flip_param(&mut m, "fc1.weight");
        let len = m.len();
        let out = cache.predict_from(&mut m, len);
        assert_eq!(bits(&out), bits(&cache.golden_logits()));
    }

    #[test]
    #[should_panic(expected = "differs from cached")]
    fn mismatched_model_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = mlp(2, &[4], 2, &mut rng);
        let cache = PrefixCache::build(&mut m, &Tensor::zeros([2, 2]), 2);
        let mut other = mlp(2, &[4, 4], 2, &mut rng);
        cache.predict_from(&mut other, 0);
    }
}
