//! Batched eval-mode inference — the campaign inner loop.
//!
//! One implementation shared by the trainer, the BDLFI core and the
//! traditional-FI baseline, so every tool measures exactly the same
//! forward semantics.

use crate::layer::ActivationTap;
use crate::sequential::Sequential;
use bdlfi_tensor::Tensor;

/// Runs eval-mode inference over `inputs` (batched on axis 0) in chunks of
/// `batch_size`, concatenating the logits into one `(n, classes)` tensor.
///
/// The `tap` fires once per batch with an **empty path** on the batch input
/// tensor itself (the hook for input fault sites), then with each layer's
/// structural path on its output — both may mutate the tensor in place.
///
/// # Panics
///
/// Panics if `inputs` has no examples or `batch_size == 0`.
pub fn predict_batched(
    model: &mut Sequential,
    inputs: &Tensor,
    batch_size: usize,
    tap: ActivationTap<'_>,
) -> Tensor {
    let n = inputs.dim(0);
    assert!(n > 0, "predict_batched needs at least one example");
    assert!(batch_size > 0, "batch size must be positive");
    let example_len = inputs.len() / n;
    let mut out: Vec<f32> = Vec::new();
    let mut classes = None;
    let mut i = 0usize;
    while i < n {
        let end = (i + batch_size).min(n);
        let mut dims = inputs.dims().to_vec();
        dims[0] = end - i;
        let mut bx = Tensor::from_vec(
            inputs.data()[i * example_len..end * example_len].to_vec(),
            dims,
        );
        tap("", &mut bx);
        let logits = model.predict_with_tap(&bx, tap);
        if classes.is_none() {
            classes = Some(logits.dim(1));
        }
        out.extend_from_slice(logits.data());
        i = end;
    }
    Tensor::from_vec(out, [n, classes.expect("non-empty input")])
}

/// [`predict_batched`] without a tap.
pub fn predict_all(model: &mut Sequential, inputs: &Tensor, batch_size: usize) -> Tensor {
    predict_batched(model, inputs, batch_size, &mut |_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batched_matches_single_batch() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = mlp(3, &[5], 2, &mut rng);
        let x = Tensor::rand_normal([11, 3], 0.0, 1.0, &mut rng);
        let full = m.predict(&x);
        for bs in [1, 3, 11, 64] {
            let batched = predict_all(&mut m, &x, bs);
            assert!(full.approx_eq(&batched, 1e-6), "batch size {bs}");
        }
    }

    #[test]
    fn tap_sees_input_with_empty_path_once_per_batch() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = mlp(2, &[4], 2, &mut rng);
        let x = Tensor::zeros([5, 2]);
        let mut input_fires = 0;
        let mut layer_fires = 0;
        predict_batched(&mut m, &x, 2, &mut |path, _| {
            if path.is_empty() {
                input_fires += 1;
            } else {
                layer_fires += 1;
            }
        });
        assert_eq!(input_fires, 3); // batches of 2, 2, 1
        assert_eq!(layer_fires, 3 * 3); // 3 layers per batch
    }

    #[test]
    fn tap_can_corrupt_the_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = mlp(2, &[4], 2, &mut rng);
        let x = Tensor::ones([4, 2]);
        let clean = predict_all(&mut m, &x, 4);
        let corrupted = predict_batched(&mut m, &x, 4, &mut |path, t| {
            if path.is_empty() {
                t.fill(0.0);
            }
        });
        assert!(!clean.approx_eq(&corrupted, 1e-9));
    }

    #[test]
    #[should_panic(expected = "at least one example")]
    fn empty_input_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = mlp(2, &[4], 2, &mut rng);
        predict_all(&mut m, &Tensor::zeros([0, 2]), 4);
    }
}
