//! Error types for model construction, serialisation and training.

use std::error::Error;
use std::fmt;

/// Error produced by fallible network operations.
#[derive(Debug)]
pub enum NnError {
    /// A parameter referenced by path does not exist in the model.
    UnknownParam {
        /// The offending parameter path, e.g. `"layer1.block0.conv1.weight"`.
        path: String,
    },
    /// Saved weights do not match the model they are being loaded into.
    WeightMismatch {
        /// The parameter path with the mismatch.
        path: String,
        /// Explanation (missing, shape differs, ...).
        detail: String,
    },
    /// An I/O error while saving or loading weights.
    Io(std::io::Error),
    /// A (de)serialisation error while saving or loading weights.
    Serde(serde_json::Error),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::UnknownParam { path } => write!(f, "unknown parameter path {path:?}"),
            NnError::WeightMismatch { path, detail } => {
                write!(f, "weight mismatch at {path:?}: {detail}")
            }
            NnError::Io(e) => write!(f, "i/o error: {e}"),
            NnError::Serde(e) => write!(f, "serialisation error: {e}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Io(e) => Some(e),
            NnError::Serde(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NnError {
    fn from(e: std::io::Error) -> Self {
        NnError::Io(e)
    }
}

impl From<serde_json::Error> for NnError {
    fn from(e: serde_json::Error) -> Self {
        NnError::Serde(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_path() {
        let e = NnError::UnknownParam {
            path: "fc.weight".into(),
        };
        assert!(e.to_string().contains("fc.weight"));
        let e = NnError::WeightMismatch {
            path: "conv1.bias".into(),
            detail: "missing".into(),
        };
        assert!(e.to_string().contains("conv1.bias"));
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn io_errors_convert() {
        let e: NnError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, NnError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
