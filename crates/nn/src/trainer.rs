//! Mini-batch training loop producing the "golden run" networks the paper's
//! fault-injection campaigns compare against.

use crate::layer::{ForwardCtx, Layer, Mode};
use crate::loss::cross_entropy;
use crate::metrics::accuracy;
use crate::optim::Optimizer;
use crate::sequential::Sequential;
use bdlfi_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index, starting at 0.
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f64,
    /// Training accuracy over the epoch (computed on the fly per batch).
    pub train_accuracy: f64,
}

/// Configuration for [`Trainer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (the final batch of an epoch may be smaller).
    pub batch_size: usize,
    /// Learning-rate decay factor applied at each milestone.
    pub lr_decay: f32,
    /// Epochs (0-based) at whose *start* the learning rate is decayed.
    pub lr_milestones: &'static [usize],
    /// Print one progress line per epoch.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            lr_decay: 0.1,
            lr_milestones: &[],
            verbose: false,
        }
    }
}

/// Mini-batch supervised trainer for classification models.
#[derive(Debug)]
pub struct Trainer<O: Optimizer> {
    optimizer: O,
    config: TrainConfig,
}

impl<O: Optimizer> Trainer<O> {
    /// Creates a trainer from an optimizer and configuration.
    pub fn new(optimizer: O, config: TrainConfig) -> Self {
        Trainer { optimizer, config }
    }

    /// Trains `model` on `(inputs, labels)` classification data.
    ///
    /// `inputs` must be batched on axis 0 (`(n, ...)`), `labels` are class
    /// indices. Returns per-epoch statistics.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.dim(0) != labels.len()`, the dataset is empty, or
    /// `batch_size == 0`.
    pub fn fit<R: Rng + ?Sized>(
        &mut self,
        model: &mut Sequential,
        inputs: &Tensor,
        labels: &[usize],
        rng: &mut R,
    ) -> Vec<EpochStats> {
        let n = inputs.dim(0);
        assert_eq!(n, labels.len(), "input batch and label count must match");
        assert!(n > 0, "cannot train on an empty dataset");
        assert!(self.config.batch_size > 0, "batch size must be positive");

        let example_len = inputs.len() / n;
        let mut indices: Vec<usize> = (0..n).collect();
        let mut history = Vec::with_capacity(self.config.epochs);

        for epoch in 0..self.config.epochs {
            if self.config.lr_milestones.contains(&epoch) {
                let lr = self.optimizer.learning_rate() * self.config.lr_decay;
                self.optimizer.set_learning_rate(lr);
            }
            indices.shuffle(rng);

            let mut loss_sum = 0.0f64;
            let mut acc_sum = 0.0f64;
            let mut batches = 0usize;

            for chunk in indices.chunks(self.config.batch_size) {
                let (bx, by) = gather_batch(inputs, labels, chunk, example_len);
                model.zero_grads();
                let mut ctx = ForwardCtx::new(Mode::Train);
                let logits = model.forward(&bx, &mut ctx);
                let (loss, grad) = cross_entropy(&logits, &by);
                acc_sum += accuracy(&logits, &by);
                model.backward(&grad);
                self.optimizer.step(model);
                loss_sum += loss as f64;
                batches += 1;
            }

            let stats = EpochStats {
                epoch,
                train_loss: loss_sum / batches as f64,
                train_accuracy: acc_sum / batches as f64,
            };
            if self.config.verbose {
                eprintln!(
                    "epoch {:>3}: loss {:.4}, accuracy {:.3}, lr {:.5}",
                    stats.epoch,
                    stats.train_loss,
                    stats.train_accuracy,
                    self.optimizer.learning_rate()
                );
            }
            history.push(stats);
        }
        history
    }

    /// Trains with an explicit learning-rate [`Schedule`] and an optional
    /// per-epoch input transform (e.g. data augmentation: the transform is
    /// applied to the full input tensor at the start of each epoch).
    ///
    /// The schedule receives the optimizer's learning rate *at call time*
    /// as its base rate; `cfg.lr_decay`/`cfg.lr_milestones` are ignored in
    /// this mode.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Trainer::fit`].
    pub fn fit_scheduled<R: Rng + ?Sized>(
        &mut self,
        model: &mut Sequential,
        inputs: &Tensor,
        labels: &[usize],
        schedule: &dyn crate::optim::Schedule,
        mut epoch_transform: Option<&mut dyn FnMut(&Tensor) -> Tensor>,
        rng: &mut R,
    ) -> Vec<EpochStats> {
        let n = inputs.dim(0);
        assert_eq!(n, labels.len(), "input batch and label count must match");
        assert!(n > 0, "cannot train on an empty dataset");
        assert!(self.config.batch_size > 0, "batch size must be positive");

        let base_lr = self.optimizer.learning_rate();
        let mut indices: Vec<usize> = (0..n).collect();
        let mut history = Vec::with_capacity(self.config.epochs);

        for epoch in 0..self.config.epochs {
            self.optimizer
                .set_learning_rate(schedule.rate(base_lr, epoch).max(1e-12));
            let epoch_inputs = match epoch_transform.as_mut() {
                Some(f) => f(inputs),
                None => inputs.clone(),
            };
            assert_eq!(
                epoch_inputs.dims(),
                inputs.dims(),
                "epoch transform must preserve the input shape"
            );
            let example_len = epoch_inputs.len() / n;
            indices.shuffle(rng);

            let mut loss_sum = 0.0f64;
            let mut acc_sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in indices.chunks(self.config.batch_size) {
                let (bx, by) = gather_batch(&epoch_inputs, labels, chunk, example_len);
                model.zero_grads();
                let mut ctx = ForwardCtx::new(Mode::Train);
                let logits = model.forward(&bx, &mut ctx);
                let (loss, grad) = cross_entropy(&logits, &by);
                acc_sum += accuracy(&logits, &by);
                model.backward(&grad);
                self.optimizer.step(model);
                loss_sum += loss as f64;
                batches += 1;
            }
            let stats = EpochStats {
                epoch,
                train_loss: loss_sum / batches as f64,
                train_accuracy: acc_sum / batches as f64,
            };
            if self.config.verbose {
                eprintln!(
                    "epoch {:>3}: loss {:.4}, accuracy {:.3}, lr {:.5}",
                    stats.epoch,
                    stats.train_loss,
                    stats.train_accuracy,
                    self.optimizer.learning_rate()
                );
            }
            history.push(stats);
        }
        history
    }

    /// Consumes the trainer, returning its optimizer (with its state).
    pub fn into_optimizer(self) -> O {
        self.optimizer
    }
}

/// Copies the rows of `inputs` selected by `chunk` into a contiguous batch.
fn gather_batch(
    inputs: &Tensor,
    labels: &[usize],
    chunk: &[usize],
    example_len: usize,
) -> (Tensor, Vec<usize>) {
    let mut data = Vec::with_capacity(chunk.len() * example_len);
    let mut by = Vec::with_capacity(chunk.len());
    for &i in chunk {
        data.extend_from_slice(&inputs.data()[i * example_len..(i + 1) * example_len]);
        by.push(labels[i]);
    }
    let mut dims = inputs.dims().to_vec();
    dims[0] = chunk.len();
    (Tensor::from_vec(data, dims), by)
}

/// Evaluates a model's classification accuracy on a held-out set, in
/// batches (memory-friendly for conv nets).
///
/// # Panics
///
/// Panics if the batch sizes mismatch or the dataset is empty.
pub fn evaluate(
    model: &mut Sequential,
    inputs: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> f64 {
    let n = inputs.dim(0);
    assert_eq!(n, labels.len(), "input batch and label count must match");
    assert!(n > 0, "cannot evaluate on an empty dataset");
    let example_len = inputs.len() / n;
    let indices: Vec<usize> = (0..n).collect();
    let mut correct = 0.0f64;
    for chunk in indices.chunks(batch_size.max(1)) {
        let (bx, by) = gather_batch(inputs, labels, chunk, example_len);
        let logits = model.predict(&bx);
        correct += accuracy(&logits, &by) * chunk.len() as f64;
    }
    correct / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::mlp;
    use crate::optim::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two well-separated Gaussian blobs: trivially learnable.
    fn blobs(n: usize, rng: &mut StdRng) -> (Tensor, Vec<usize>) {
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let centre = if class == 0 { -2.0 } else { 2.0 };
            data.push(centre + bdlfi_tensor::init::standard_normal(rng) * 0.5);
            data.push(centre + bdlfi_tensor::init::standard_normal(rng) * 0.5);
            labels.push(class);
        }
        (Tensor::from_vec(data, [n, 2]), labels)
    }

    #[test]
    fn mlp_learns_separable_blobs() {
        let mut rng = StdRng::seed_from_u64(100);
        let (x, y) = blobs(200, &mut rng);
        let mut model = mlp(2, &[8], 2, &mut rng);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 16,
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(Sgd::new(0.1).with_momentum(0.9), cfg);
        let history = trainer.fit(&mut model, &x, &y, &mut rng);

        assert_eq!(history.len(), 30);
        // Loss decreases substantially.
        assert!(history.last().unwrap().train_loss < history[0].train_loss * 0.5);
        // And the model classifies nearly perfectly.
        let acc = evaluate(&mut model, &x, &y, 32);
        assert!(acc > 0.97, "accuracy = {acc}");
    }

    #[test]
    fn lr_milestones_decay_learning_rate() {
        let mut rng = StdRng::seed_from_u64(101);
        let (x, y) = blobs(20, &mut rng);
        let mut model = mlp(2, &[4], 2, &mut rng);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 10,
            lr_decay: 0.1,
            lr_milestones: &[1, 2],
            verbose: false,
        };
        let mut trainer = Trainer::new(Sgd::new(1.0), cfg);
        trainer.fit(&mut model, &x, &y, &mut rng);
        let opt = trainer.into_optimizer();
        assert!((opt.learning_rate() - 0.01).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "label count must match")]
    fn mismatched_dataset_panics() {
        let mut rng = StdRng::seed_from_u64(102);
        let mut model = mlp(2, &[4], 2, &mut rng);
        let mut trainer = Trainer::new(Sgd::new(0.1), TrainConfig::default());
        trainer.fit(&mut model, &Tensor::zeros([4, 2]), &[0, 1], &mut rng);
    }

    #[test]
    fn scheduled_training_follows_the_schedule() {
        use crate::optim::{CosineAnnealing, Optimizer};
        let mut rng = StdRng::seed_from_u64(104);
        let (x, y) = blobs(100, &mut rng);
        let mut model = mlp(2, &[8], 2, &mut rng);
        let cfg = TrainConfig {
            epochs: 10,
            batch_size: 20,
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(Sgd::new(0.2), cfg);
        let schedule = CosineAnnealing {
            total_epochs: 10,
            min_rate: 0.002,
        };
        let history = trainer.fit_scheduled(&mut model, &x, &y, &schedule, None, &mut rng);
        assert_eq!(history.len(), 10);
        // The optimizer ends at the schedule's floor.
        let opt = trainer.into_optimizer();
        assert!((opt.learning_rate() - 0.002).abs() < 1e-6);
        // And training still learns the task.
        let acc = evaluate(&mut model, &x, &y, 32);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn epoch_transform_is_applied() {
        let mut rng = StdRng::seed_from_u64(105);
        let (x, y) = blobs(40, &mut rng);
        let mut model = mlp(2, &[4], 2, &mut rng);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 10,
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(Sgd::new(0.1), cfg);
        let mut calls = 0usize;
        let mut transform = |t: &Tensor| {
            calls += 1;
            t.clone()
        };
        trainer.fit_scheduled(
            &mut model,
            &x,
            &y,
            &crate::optim::Constant,
            Some(&mut transform),
            &mut rng,
        );
        assert_eq!(calls, 3);
    }

    #[test]
    #[should_panic(expected = "must preserve the input shape")]
    fn shape_changing_transform_rejected() {
        let mut rng = StdRng::seed_from_u64(106);
        let (x, y) = blobs(10, &mut rng);
        let mut model = mlp(2, &[4], 2, &mut rng);
        let mut trainer = Trainer::new(
            Sgd::new(0.1),
            TrainConfig {
                epochs: 1,
                batch_size: 5,
                ..TrainConfig::default()
            },
        );
        let mut bad = |_: &Tensor| Tensor::zeros([3, 3]);
        trainer.fit_scheduled(
            &mut model,
            &x,
            &y,
            &crate::optim::Constant,
            Some(&mut bad),
            &mut rng,
        );
    }

    #[test]
    fn evaluate_handles_ragged_final_batch() {
        let mut rng = StdRng::seed_from_u64(103);
        let (x, y) = blobs(7, &mut rng);
        let mut model = mlp(2, &[4], 2, &mut rng);
        let acc = evaluate(&mut model, &x, &y, 3);
        assert!((0.0..=1.0).contains(&acc));
    }
}
