//! Convergence diagnostics — the machinery behind BDLFI's claim that MCMC
//! mixing quantifies the *completeness* of a fault-injection campaign:
//! when split-R̂ ≈ 1 and the effective sample size is large, "further
//! injections do not change the measured hypothesis".

use crate::mcmc::Trace;

/// Borrow each chain's samples as a slice — lets the `_slices` diagnostics
/// run on growing prefixes without cloning chain data.
fn borrow_samples(chains: &[Trace]) -> Vec<&[f64]> {
    chains.iter().map(Trace::samples).collect()
}

/// Split-R̂ (Gelman–Rubin potential scale reduction with split chains,
/// following BDA3 / Vehtari et al.).
///
/// Values near 1 indicate the chains agree; the conventional certification
/// threshold is `R̂ < 1.01`. Returns `NaN` when undefined (fewer than 2
/// half-chains of at least 2 samples, or zero within-chain variance with
/// zero between-chain variance).
pub fn split_rhat(chains: &[Trace]) -> f64 {
    split_rhat_slices(&borrow_samples(chains))
}

/// [`split_rhat`] on borrowed sample slices — the allocation-free form the
/// growing-prefix completeness scans assess with.
pub fn split_rhat_slices(chains: &[&[f64]]) -> f64 {
    // Split every chain in half to detect non-stationarity within chains.
    let halves: Vec<&[f64]> = chains
        .iter()
        .flat_map(|s| {
            let mid = s.len() / 2;
            [&s[..mid], &s[mid..]]
        })
        .filter(|h| h.len() >= 2)
        .collect();
    let m = halves.len();
    if m < 2 {
        return f64::NAN;
    }
    let Some(n) = halves.iter().map(|h| h.len()).min() else {
        return f64::NAN;
    };
    let halves: Vec<&[f64]> = halves.iter().map(|h| &h[..n]).collect();

    let means: Vec<f64> = halves
        .iter()
        .map(|h| h.iter().sum::<f64>() / n as f64)
        .collect();
    let grand = means.iter().sum::<f64>() / m as f64;
    let b = n as f64 / (m as f64 - 1.0) * means.iter().map(|mu| (mu - grand).powi(2)).sum::<f64>();
    let w = halves
        .iter()
        .zip(means.iter())
        .map(|(h, mu)| h.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / (n as f64 - 1.0))
        .sum::<f64>()
        / m as f64;

    if w <= 0.0 {
        // All half-chains constant: identical constants mix perfectly.
        return if b <= 0.0 { 1.0 } else { f64::INFINITY };
    }
    let var_plus = (n as f64 - 1.0) / n as f64 * w + b / n as f64;
    (var_plus / w).sqrt()
}

/// Sample autocorrelation of a series at the given lags.
///
/// Returns an empty vector for series shorter than 2.
pub fn autocorrelations(x: &[f64], max_lag: usize) -> Vec<f64> {
    let n = x.len();
    if n < 2 {
        return Vec::new();
    }
    let mean = x.iter().sum::<f64>() / n as f64;
    let var = x.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
    if var <= 0.0 {
        return vec![0.0; max_lag.min(n - 1) + 1];
    }
    (0..=max_lag.min(n - 1))
        .map(|lag| {
            let c: f64 = (0..n - lag)
                .map(|i| (x[i] - mean) * (x[i + lag] - mean))
                .sum();
            c / (n as f64 * var)
        })
        .collect()
}

/// Effective sample size via Geyer's initial positive sequence: sums
/// autocorrelations over even/odd lag pairs until a pair's sum goes
/// non-positive, pooling chains by averaging their autocorrelation
/// functions.
///
/// Returns `NaN` when undefined (no samples); a constant trace has ESS
/// equal to its sample count (every draw agrees, nothing left to learn).
pub fn ess(chains: &[Trace]) -> f64 {
    ess_slices(&borrow_samples(chains))
}

/// [`ess`] on borrowed sample slices.
pub fn ess_slices(chains: &[&[f64]]) -> f64 {
    let total: usize = chains.iter().map(|c| c.len()).sum();
    if total == 0 {
        return f64::NAN;
    }
    let n = chains.iter().map(|c| c.len()).min().unwrap_or(0);
    if n < 4 {
        return total as f64;
    }
    let max_lag = (n - 1).min(1000);

    // Average autocorrelation over chains (all-constant chains contribute
    // zero autocorrelation beyond lag 0).
    let acfs: Vec<Vec<f64>> = chains
        .iter()
        .map(|c| autocorrelations(&c[..n], max_lag))
        .collect();
    let mean_acf = |lag: usize| -> f64 {
        acfs.iter()
            .map(|a| a.get(lag).copied().unwrap_or(0.0))
            .sum::<f64>()
            / acfs.len() as f64
    };

    // Geyer's theorem guarantees Γ_t = ρ_{2t} + ρ_{2t+1} is non-negative
    // (and decreasing) for reversible chains, so the sum is truncated at
    // the first non-positive *even/odd* pair: τ = 2·ΣΓ_t − 1 with
    // Γ_0 = ρ_0 + ρ_1 = 1 + ρ_1, then pairs (2,3), (4,5), …
    let mut tau = 1.0 + 2.0 * mean_acf(1);
    let mut lag = 2usize;
    while lag < max_lag {
        let pair = mean_acf(lag) + mean_acf(lag + 1);
        if pair <= 0.0 {
            break;
        }
        tau += 2.0 * pair;
        lag += 2;
    }
    // Antithetic chains can drive τ below 1 (super-efficient sampling);
    // keep it positive and cap the ESS at the sample count.
    (total as f64 / tau.max(f64::EPSILON)).min(total as f64)
}

/// Monte Carlo standard error of the pooled mean: `sd / √ESS`.
///
/// Returns `NaN` when ESS or the variance is undefined.
pub fn mcse(chains: &[Trace]) -> f64 {
    mcse_slices(&borrow_samples(chains))
}

/// [`mcse`] on borrowed sample slices.
pub fn mcse_slices(chains: &[&[f64]]) -> f64 {
    let total: usize = chains.iter().map(|c| c.len()).sum();
    if total < 2 {
        return f64::NAN;
    }
    let mean = chains.iter().flat_map(|c| c.iter()).sum::<f64>() / total as f64;
    let var = chains
        .iter()
        .flat_map(|c| c.iter())
        .map(|x| (x - mean).powi(2))
        .sum::<f64>()
        / (total - 1) as f64;
    let e = ess_slices(chains);
    if !e.is_finite() || e <= 0.0 {
        return f64::NAN;
    }
    (var / e).sqrt()
}

/// Monte Carlo standard error via non-overlapping batch means — an
/// autocorrelation-robust alternative to the ESS route, useful as a
/// cross-check on [`mcse`] (the two should agree within a small factor on
/// well-behaved chains).
///
/// Uses `⌈√n⌉`-sized batches on the pooled samples. Returns `NaN` for
/// fewer than 4 batches of data.
pub fn mcse_batch_means(chains: &[Trace]) -> f64 {
    let pooled: Vec<f64> = chains
        .iter()
        .flat_map(|c| c.samples().iter().copied())
        .collect();
    let n = pooled.len();
    if n < 16 {
        return f64::NAN;
    }
    let batch = (n as f64).sqrt().ceil() as usize;
    let m = n / batch;
    if m < 4 {
        return f64::NAN;
    }
    let means: Vec<f64> = (0..m)
        .map(|b| pooled[b * batch..(b + 1) * batch].iter().sum::<f64>() / batch as f64)
        .collect();
    let grand = means.iter().sum::<f64>() / m as f64;
    let var_of_means = means.iter().map(|x| (x - grand).powi(2)).sum::<f64>() / (m as f64 - 1.0);
    (var_of_means / m as f64).sqrt()
}

/// Geweke convergence z-score: compares the mean of the first
/// `first_frac` of a chain against the last `last_frac`, standardised by
/// their (spectral-density-free, iid-approximation) standard errors.
///
/// |z| > 2 suggests the chain has not reached stationarity. Returns `NaN`
/// for chains too short to compare.
///
/// # Panics
///
/// Panics unless the fractions are in `(0, 1)` and sum to at most 1.
pub fn geweke_z(trace: &Trace, first_frac: f64, last_frac: f64) -> f64 {
    assert!(
        first_frac > 0.0 && last_frac > 0.0 && first_frac + last_frac <= 1.0,
        "fractions must be positive and sum to at most 1"
    );
    let x = trace.samples();
    let n = x.len();
    let n1 = (n as f64 * first_frac) as usize;
    let n2 = (n as f64 * last_frac) as usize;
    if n1 < 2 || n2 < 2 {
        return f64::NAN;
    }
    let a = &x[..n1];
    let b = &x[n - n2..];
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    let var =
        |s: &[f64], m: f64| s.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (s.len() - 1) as f64;
    let (ma, mb) = (mean(a), mean(b));
    let se = (var(a, ma) / n1 as f64 + var(b, mb) / n2 as f64).sqrt();
    if se <= 0.0 {
        return if (ma - mb).abs() <= f64::EPSILON {
            0.0
        } else {
            f64::INFINITY
        };
    }
    (ma - mb) / se
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn iid_chain(seed: u64, n: usize, mu: f64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = Normal::new(mu, 1.0);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn rhat_near_one_for_iid_chains() {
        let chains: Vec<Trace> = (0..4).map(|s| iid_chain(s, 2000, 0.0)).collect();
        let r = split_rhat(&chains);
        assert!((r - 1.0).abs() < 0.02, "rhat {r}");
    }

    #[test]
    fn rhat_large_for_disagreeing_chains() {
        let chains = vec![iid_chain(0, 1000, 0.0), iid_chain(1, 1000, 5.0)];
        let r = split_rhat(&chains);
        assert!(r > 1.5, "rhat {r}");
    }

    #[test]
    fn rhat_detects_trend_within_a_chain() {
        // A strongly trending single chain must fail the split test.
        let trend: Trace = (0..2000).map(|i| i as f64 / 100.0).collect();
        let r = split_rhat(&[trend]);
        assert!(r > 1.2, "rhat {r}");
    }

    #[test]
    fn rhat_handles_constant_chains() {
        let a = Trace::from_samples(vec![1.0; 100]);
        let b = Trace::from_samples(vec![1.0; 100]);
        assert_eq!(split_rhat(&[a, b]), 1.0);
        let c = Trace::from_samples(vec![2.0; 100]);
        let a = Trace::from_samples(vec![1.0; 100]);
        assert!(split_rhat(&[a, c]).is_infinite());
    }

    #[test]
    fn autocorrelation_of_iid_is_small() {
        let c = iid_chain(7, 5000, 0.0);
        let acf = autocorrelations(c.samples(), 5);
        assert!((acf[0] - 1.0).abs() < 1e-12);
        for &rho in &acf[1..] {
            assert!(rho.abs() < 0.05, "rho {rho}");
        }
    }

    #[test]
    fn ess_of_iid_is_near_n() {
        let chains: Vec<Trace> = (0..2).map(|s| iid_chain(s + 10, 2000, 0.0)).collect();
        let e = ess(&chains);
        assert!(e > 3000.0, "ess {e}");
        assert!(e <= 4000.0);
    }

    #[test]
    fn ess_of_sticky_chain_is_small() {
        // AR(1) with high persistence: x_t = 0.98 x_{t-1} + eps.
        let mut rng = StdRng::seed_from_u64(20);
        let d = Normal::standard();
        let mut x = 0.0;
        let chain: Trace = (0..4000)
            .map(|_| {
                x = 0.98 * x + 0.02f64.sqrt() * d.sample(&mut rng);
                x
            })
            .collect();
        let e = ess(&[chain]);
        assert!(e < 400.0, "ess {e}");
    }

    #[test]
    fn ess_matches_ar1_integrated_autocorrelation_time() {
        // AR(1) with coefficient φ has integrated autocorrelation time
        // τ = (1 + φ)/(1 − φ); with φ = 0.9, τ = 19, so ESS ≈ N/19.
        // The old (1,2),(3,4) pairing truncated the Geyer sum one lag
        // early whenever ρ was still decaying, biasing ESS upward.
        let phi = 0.9f64;
        let n = 200_000usize;
        let mut rng = StdRng::seed_from_u64(40);
        let d = Normal::standard();
        let mut x = 0.0;
        let chain: Trace = (0..n)
            .map(|_| {
                x = phi * x + (1.0 - phi * phi).sqrt() * d.sample(&mut rng);
                x
            })
            .collect();
        let tau = (1.0 + phi) / (1.0 - phi);
        let expected = n as f64 / tau;
        let e = ess(&[chain]);
        assert!(
            (e - expected).abs() < 0.25 * expected,
            "ess {e}, expected ≈ {expected} (τ = {tau})"
        );
    }

    #[test]
    fn slice_diagnostics_match_trace_diagnostics() {
        let chains: Vec<Trace> = (0..3).map(|s| iid_chain(s + 50, 500, 0.5)).collect();
        let slices: Vec<&[f64]> = chains.iter().map(Trace::samples).collect();
        assert_eq!(split_rhat(&chains), split_rhat_slices(&slices));
        assert_eq!(ess(&chains), ess_slices(&slices));
        assert_eq!(mcse(&chains), mcse_slices(&slices));
    }

    #[test]
    fn mcse_shrinks_with_more_samples() {
        let small = vec![iid_chain(1, 200, 0.0)];
        let large = vec![iid_chain(1, 20_000, 0.0)];
        assert!(mcse(&large) < mcse(&small));
        // For iid N(0,1): mcse ≈ 1/sqrt(n).
        let m = mcse(&large);
        assert!((m - (1.0 / 20_000.0f64).sqrt()).abs() < m * 0.5);
    }

    #[test]
    fn batch_means_agrees_with_ess_route_on_iid() {
        let chains = vec![iid_chain(5, 10_000, 0.0)];
        let a = mcse(&chains);
        let b = mcse_batch_means(&chains);
        assert!(a.is_finite() && b.is_finite());
        assert!(
            b / a < 2.0 && a / b < 2.0,
            "ess-route {a} vs batch-means {b}"
        );
    }

    #[test]
    fn batch_means_grows_for_correlated_chains() {
        // AR(1): both estimators must report a larger standard error than
        // the naive sd/sqrt(n).
        let mut rng = StdRng::seed_from_u64(30);
        let d = Normal::standard();
        let mut x = 0.0;
        let chain: Trace = (0..10_000)
            .map(|_| {
                x = 0.95 * x + (1.0f64 - 0.95 * 0.95).sqrt() * d.sample(&mut rng);
                x
            })
            .collect();
        let naive = (chain.variance() / chain.len() as f64).sqrt();
        let bm = mcse_batch_means(&[chain]);
        assert!(bm > 2.0 * naive, "batch-means {bm} vs naive {naive}");
    }

    #[test]
    fn batch_means_undefined_for_tiny_traces() {
        assert!(mcse_batch_means(&[Trace::from_samples(vec![1.0; 8])]).is_nan());
    }

    #[test]
    fn geweke_small_for_stationary_large_for_trending() {
        let stationary = iid_chain(3, 5000, 1.0);
        let z = geweke_z(&stationary, 0.1, 0.5);
        assert!(z.abs() < 3.0, "z {z}");

        let trending: Trace = (0..5000).map(|i| i as f64 * 0.01).collect();
        let z = geweke_z(&trending, 0.1, 0.5);
        assert!(z.abs() > 10.0, "z {z}");
    }

    #[test]
    fn diagnostics_handle_degenerate_input() {
        assert!(split_rhat(&[]).is_nan());
        assert!(ess(&[]).is_nan());
        assert!(mcse(&[Trace::new()]).is_nan());
        assert!(geweke_z(&Trace::from_samples(vec![1.0]), 0.1, 0.5).is_nan());
    }
}
