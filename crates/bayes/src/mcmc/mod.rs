//! Markov Chain Monte Carlo: proposals, the Metropolis–Hastings step,
//! chain runners and traces.

mod chain;
mod kernel;
mod trace;

pub use chain::{run_chain, ChainConfig, ChainResult};
pub use kernel::{mh_step, DistributionProposal, IndependenceProposal, MixtureProposal, Proposal};
pub use trace::{Trace, TraceSummary};
