//! Proposals and the Metropolis–Hastings acceptance step.
//!
//! The MCMC state for BDLFI is a joint fault configuration; the proposals
//! over that state type live in the `bdlfi` core crate. This module is the
//! generic machinery: a [`Proposal`] trait carrying the log proposal-density
//! ratio, the [`mh_step`] accept/reject rule, and generic combinators.

use crate::dist::Distribution;
use rand::{Rng, RngExt};

/// A Markov proposal over states of type `S`.
///
/// `propose` returns the candidate state together with the log
/// proposal-density ratio `log q(current | candidate) − log q(candidate |
/// current)` (zero for symmetric proposals), which [`mh_step`] adds to the
/// target ratio.
pub trait Proposal<S>: Send + Sync {
    /// Draws a candidate state from the current one.
    fn propose(&self, current: &S, rng: &mut dyn Rng) -> (S, f64);
}

/// One Metropolis–Hastings step.
///
/// `current_lp` caches the log-target of the current state so the target —
/// which for tempered BDLFI campaigns costs a full network inference — is
/// evaluated once per proposal, not twice.
///
/// Returns whether the candidate was accepted.
pub fn mh_step<S>(
    state: &mut S,
    current_lp: &mut f64,
    proposal: &dyn Proposal<S>,
    log_target: &mut dyn FnMut(&S) -> f64,
    rng: &mut dyn Rng,
) -> bool {
    let (candidate, log_q_ratio) = proposal.propose(state, rng);
    let candidate_lp = log_target(&candidate);
    let log_alpha = candidate_lp - *current_lp + log_q_ratio;
    let accept = log_alpha >= 0.0 || rng.random::<f64>().ln() < log_alpha;
    if accept {
        *state = candidate;
        *current_lp = candidate_lp;
    }
    accept
}

/// Independence proposal: candidates are drawn from a fixed distribution,
/// ignoring the current state.
///
/// When the sampling distribution *is* the target, every step is accepted
/// and the chain degenerates to exact iid sampling — the ground-truth mode
/// BDLFI uses for its untempered campaigns.
pub struct IndependenceProposal<S, F, G>
where
    F: Fn(&mut dyn Rng) -> S + Send + Sync,
    G: Fn(&S) -> f64 + Send + Sync,
{
    sample: F,
    log_density: G,
    _marker: std::marker::PhantomData<fn() -> S>,
}

impl<S, F, G> IndependenceProposal<S, F, G>
where
    F: Fn(&mut dyn Rng) -> S + Send + Sync,
    G: Fn(&S) -> f64 + Send + Sync,
{
    /// Creates an independence proposal from a sampler and its log-density.
    pub fn new(sample: F, log_density: G) -> Self {
        IndependenceProposal {
            sample,
            log_density,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S, F, G> Proposal<S> for IndependenceProposal<S, F, G>
where
    F: Fn(&mut dyn Rng) -> S + Send + Sync,
    G: Fn(&S) -> f64 + Send + Sync,
{
    fn propose(&self, current: &S, rng: &mut dyn Rng) -> (S, f64) {
        let candidate = (self.sample)(rng);
        let ratio = (self.log_density)(current) - (self.log_density)(&candidate);
        (candidate, ratio)
    }
}

/// Mixture of proposals chosen by fixed weights each step — e.g. mostly
/// local single-bit moves with occasional independent refreshes, the
/// standard recipe for multimodal fault-configuration spaces.
pub struct MixtureProposal<S> {
    components: Vec<(f64, Box<dyn Proposal<S>>)>,
}

impl<S> MixtureProposal<S> {
    /// Creates a mixture from `(weight, proposal)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if empty or any weight is non-positive.
    pub fn new(components: Vec<(f64, Box<dyn Proposal<S>>)>) -> Self {
        assert!(
            !components.is_empty(),
            "mixture requires at least one component"
        );
        assert!(
            components.iter().all(|(w, _)| *w > 0.0),
            "weights must be positive"
        );
        MixtureProposal { components }
    }
}

impl<S> Proposal<S> for MixtureProposal<S> {
    fn propose(&self, current: &S, rng: &mut dyn Rng) -> (S, f64) {
        let total: f64 = self.components.iter().map(|(w, _)| w).sum();
        let mut u = rng.random::<f64>() * total;
        // Rounding can leave `u` marginally positive after the final
        // subtraction; the last component absorbs that sliver (`new`
        // asserts non-emptiness, so the index is always populated).
        let mut pick = self.components.len().saturating_sub(1);
        for (i, (w, _)) in self.components.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                pick = i;
                break;
            }
        }
        self.components[pick].1.propose(current, rng)
    }
}

/// Adapter: any [`Distribution`] is an independence proposal over `f64`.
pub struct DistributionProposal<D: Distribution>(pub D);

impl<D: Distribution> Proposal<f64> for DistributionProposal<D> {
    fn propose(&self, current: &f64, rng: &mut dyn Rng) -> (f64, f64) {
        let candidate = self.0.sample(rng);
        (
            candidate,
            self.0.log_prob(*current) - self.0.log_prob(candidate),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Normal, Uniform};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Symmetric random-walk proposal for scalar states.
    struct RandomWalk(f64);
    impl Proposal<f64> for RandomWalk {
        fn propose(&self, current: &f64, rng: &mut dyn Rng) -> (f64, f64) {
            (current + Normal::new(0.0, self.0).sample(rng), 0.0)
        }
    }

    #[test]
    fn mh_with_random_walk_targets_standard_normal() {
        let target = Normal::standard();
        let mut log_target = |x: &f64| target.log_prob(*x);
        let proposal = RandomWalk(1.0);
        let mut rng = StdRng::seed_from_u64(0);

        let mut state = 3.0f64;
        let mut lp = log_target(&state);
        let mut samples = Vec::new();
        for i in 0..20_000 {
            mh_step(&mut state, &mut lp, &proposal, &mut log_target, &mut rng);
            if i >= 2_000 {
                samples.push(state);
            }
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.08, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn independence_from_target_always_accepts() {
        let target = Uniform::new(0.0, 1.0);
        let proposal = IndependenceProposal::new(
            move |rng: &mut dyn Rng| target.sample(rng),
            move |x: &f64| target.log_prob(*x),
        );
        let mut log_target = |x: &f64| target.log_prob(*x);
        let mut rng = StdRng::seed_from_u64(1);
        let mut state = 0.5f64;
        let mut lp = log_target(&state);
        let mut accepts = 0;
        for _ in 0..500 {
            if mh_step(&mut state, &mut lp, &proposal, &mut log_target, &mut rng) {
                accepts += 1;
            }
        }
        assert_eq!(accepts, 500);
    }

    #[test]
    fn independence_corrects_for_mismatched_proposal() {
        // Propose from Uniform(0,1), target Beta(2,1) (density 2x): MH must
        // reweight so the mean is 2/3, not 1/2.
        let q = Uniform::new(0.0, 1.0);
        let proposal = IndependenceProposal::new(
            move |rng: &mut dyn Rng| q.sample(rng),
            move |x: &f64| q.log_prob(*x),
        );
        let mut log_target = |x: &f64| {
            if (0.0..=1.0).contains(x) {
                (2.0 * x).ln()
            } else {
                f64::NEG_INFINITY
            }
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mut state = 0.5f64;
        let mut lp = log_target(&state);
        let mut sum = 0.0;
        let n = 30_000;
        for _ in 0..n {
            mh_step(&mut state, &mut lp, &proposal, &mut log_target, &mut rng);
            sum += state;
        }
        let mean = sum / n as f64;
        assert!((mean - 2.0 / 3.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn mixture_uses_all_components() {
        // One component proposes 0.25, the other 0.75; both should appear.
        struct Fixed(f64);
        impl Proposal<f64> for Fixed {
            fn propose(&self, _c: &f64, _rng: &mut dyn Rng) -> (f64, f64) {
                (self.0, 0.0)
            }
        }
        let mix = MixtureProposal::new(vec![
            (1.0, Box::new(Fixed(0.25)) as Box<dyn Proposal<f64>>),
            (1.0, Box::new(Fixed(0.75))),
        ]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw = [false, false];
        for _ in 0..100 {
            let (c, _) = mix.propose(&0.0, &mut rng);
            saw[usize::from(c > 0.5)] = true;
        }
        assert!(saw[0] && saw[1]);
    }

    #[test]
    fn distribution_proposal_ratio_is_consistent() {
        let d = Normal::new(1.0, 2.0);
        let p = DistributionProposal(d);
        let mut rng = StdRng::seed_from_u64(4);
        let current = 0.3f64;
        let (cand, ratio) = p.propose(&current, &mut rng);
        let expected = d.log_prob(current) - d.log_prob(cand);
        assert!((ratio - expected).abs() < 1e-12);
    }
}
