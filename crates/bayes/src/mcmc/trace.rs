//! Traces: recorded scalar statistics of an MCMC run, with summaries.

use serde::{Deserialize, Serialize};

/// The recorded values of one scalar statistic along one chain.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    samples: Vec<f64>,
}

/// Summary statistics of a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of recorded samples.
    pub len: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Minimum recorded value.
    pub min: f64,
    /// 5th percentile.
    pub q05: f64,
    /// Median.
    pub median: f64,
    /// 95th percentile.
    pub q95: f64,
    /// Maximum recorded value.
    pub max: f64,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace {
            samples: Vec::new(),
        }
    }

    /// Wraps existing samples.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        Trace { samples }
    }

    /// Records one value.
    pub fn push(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Number of recorded values.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The recorded values.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Sample mean (`NaN` if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Unbiased sample variance (`NaN` if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return f64::NAN;
        }
        let mean = self.mean();
        self.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    }

    /// Empirical quantile by linear interpolation.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.samples.is_empty(), "quantile of an empty trace");
        assert!((0.0..=1.0).contains(&q), "quantile level must be in [0, 1]");
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let w = pos - lo as f64;
            sorted[lo] * (1.0 - w) + sorted[hi] * w
        }
    }

    /// Full summary.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn summary(&self) -> TraceSummary {
        assert!(!self.samples.is_empty(), "summary of an empty trace");
        TraceSummary {
            len: self.len(),
            mean: self.mean(),
            variance: self.variance(),
            min: self.quantile(0.0),
            q05: self.quantile(0.05),
            median: self.quantile(0.5),
            q95: self.quantile(0.95),
            max: self.quantile(1.0),
        }
    }

    /// Histogram over `[lo, hi]` with `bins` equal-width buckets; values
    /// outside the range clamp to the edge buckets.
    ///
    /// Returns `(bucket_lower_edge, count)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn histogram(&self, lo: f64, hi: f64, bins: usize) -> Vec<(f64, usize)> {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        let width = (hi - lo) / bins as f64;
        let mut counts = vec![0usize; bins];
        for &x in &self.samples {
            let idx = (((x - lo) / width).floor() as isize).clamp(0, bins as isize - 1);
            counts[idx as usize] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (lo + i as f64 * width, c))
            .collect()
    }

    /// Renders the distribution as a compact ASCII histogram — the visual
    /// form of the paper's "distribution of classification error produced
    /// by BDLFI" (Fig. 1 ③).
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn render_histogram(&self, lo: f64, hi: f64, bins: usize, width: usize) -> String {
        let hist = self.histogram(lo, hi, bins);
        let max = hist.iter().map(|&(_, c)| c).max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (edge, count) in hist {
            let bar = "#".repeat(count * width.max(1) / max);
            out.push_str(&format!("{edge:>8.3} | {bar} {count}\n"));
        }
        out
    }

    /// The running mean after each sample — used to visualise campaign
    /// convergence ("further injections do not change the measured
    /// hypothesis").
    pub fn running_mean(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.samples.len());
        let mut acc = 0.0;
        for (i, &x) in self.samples.iter().enumerate() {
            acc += x;
            out.push(acc / (i + 1) as f64);
        }
        out
    }
}

impl Extend<f64> for Trace {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

impl FromIterator<f64> for Trace {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Trace {
            samples: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let t = Trace::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.mean(), 2.5);
        assert!((t.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.quantile(0.0), 1.0);
        assert_eq!(t.quantile(1.0), 4.0);
        assert_eq!(t.quantile(0.5), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let t = Trace::from_samples(vec![0.0, 10.0]);
        assert_eq!(t.quantile(0.25), 2.5);
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert!(t.mean().is_nan());
        assert!(t.variance().is_nan());
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn quantile_of_empty_panics() {
        Trace::new().quantile(0.5);
    }

    #[test]
    fn running_mean_converges_to_mean() {
        let t: Trace = (0..100).map(|i| (i % 2) as f64).collect();
        let rm = t.running_mean();
        assert_eq!(rm.len(), 100);
        assert!((rm[99] - 0.5).abs() < 1e-12);
        assert_eq!(rm[0], 0.0);
    }

    #[test]
    fn summary_is_internally_consistent() {
        let t: Trace = (0..1000).map(|i| i as f64 / 999.0).collect();
        let s = t.summary();
        assert!(s.min <= s.q05 && s.q05 <= s.median);
        assert!(s.median <= s.q95 && s.q95 <= s.max);
        assert!((s.mean - 0.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let t = Trace::from_samples(vec![-1.0, 0.05, 0.15, 0.15, 0.95, 2.0]);
        let h = t.histogram(0.0, 1.0, 10);
        assert_eq!(h.len(), 10);
        assert_eq!(h.iter().map(|&(_, c)| c).sum::<usize>(), 6);
        assert_eq!(h[0].1, 2); // -1.0 clamps in, 0.05 lands
        assert_eq!(h[1].1, 2); // the two 0.15s
        assert_eq!(h[9].1, 2); // 0.95 and the clamped 2.0
        assert!((h[1].0 - 0.1).abs() < 1e-12);
    }

    #[test]
    fn render_histogram_has_one_line_per_bin() {
        let t: Trace = (0..100).map(|i| i as f64 / 100.0).collect();
        let s = t.render_histogram(0.0, 1.0, 5, 20);
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains('#'));
    }

    #[test]
    fn extend_and_collect() {
        let mut t = Trace::new();
        t.extend([1.0, 2.0]);
        t.push(3.0);
        assert_eq!(t.samples(), &[1.0, 2.0, 3.0]);
    }
}
