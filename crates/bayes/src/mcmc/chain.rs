//! Running a single MCMC chain: burn-in, thinning and statistic recording.
//!
//! The statistic callback is kept separate from the log-target because in
//! BDLFI campaigns they have very different costs: the untempered target
//! (the fault prior) is closed-form and cheap, while the statistic —
//! classification error of the fault-injected network on an evaluation set
//! — costs a full batch of inferences and is only evaluated on *recorded*
//! (post-burn-in, thinned) states.

use crate::mcmc::kernel::{mh_step, Proposal};
use crate::mcmc::trace::Trace;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Chain schedule: how many steps to discard, record and skip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainConfig {
    /// Steps discarded before recording starts.
    pub burn_in: usize,
    /// Number of recorded samples.
    pub samples: usize,
    /// Steps between recorded samples (1 = record every step).
    pub thin: usize,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            burn_in: 100,
            samples: 1000,
            thin: 1,
        }
    }
}

impl ChainConfig {
    /// Total Markov steps the schedule performs.
    pub fn total_steps(&self) -> usize {
        self.burn_in + self.samples * self.thin.max(1)
    }
}

/// The outcome of one chain: the recorded statistic trace, the acceptance
/// rate and the final state.
#[derive(Debug, Clone)]
pub struct ChainResult<S> {
    /// Recorded statistic values.
    pub trace: Trace,
    /// Fraction of proposals accepted over the whole run.
    pub acceptance_rate: f64,
    /// The state after the last step.
    pub final_state: S,
}

/// Runs one Metropolis–Hastings chain.
///
/// # Panics
///
/// Panics if `cfg.samples == 0`.
pub fn run_chain<S: Clone>(
    init: S,
    proposal: &dyn Proposal<S>,
    log_target: &mut dyn FnMut(&S) -> f64,
    statistic: &mut dyn FnMut(&S) -> f64,
    cfg: ChainConfig,
    rng: &mut dyn Rng,
) -> ChainResult<S> {
    assert!(cfg.samples > 0, "chain must record at least one sample");
    let thin = cfg.thin.max(1);
    let mut state = init;
    let mut lp = log_target(&state);
    let mut accepted = 0usize;
    let mut steps = 0usize;
    let mut trace = Trace::new();

    for _ in 0..cfg.burn_in {
        accepted += usize::from(mh_step(&mut state, &mut lp, proposal, log_target, rng));
        steps += 1;
    }
    for _ in 0..cfg.samples {
        for _ in 0..thin {
            accepted += usize::from(mh_step(&mut state, &mut lp, proposal, log_target, rng));
            steps += 1;
        }
        trace.push(statistic(&state));
    }

    ChainResult {
        trace,
        acceptance_rate: accepted as f64 / steps.max(1) as f64,
        final_state: state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct RandomWalk(f64);
    impl Proposal<f64> for RandomWalk {
        fn propose(&self, current: &f64, rng: &mut dyn Rng) -> (f64, f64) {
            (current + Normal::new(0.0, self.0).sample(rng), 0.0)
        }
    }

    #[test]
    fn chain_recovers_target_mean() {
        let target = Normal::new(4.0, 1.0);
        let mut log_target = |x: &f64| target.log_prob(*x);
        let mut stat = |x: &f64| *x;
        let cfg = ChainConfig {
            burn_in: 500,
            samples: 8000,
            thin: 2,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let res = run_chain(
            0.0,
            &RandomWalk(1.5),
            &mut log_target,
            &mut stat,
            cfg,
            &mut rng,
        );

        assert_eq!(res.trace.len(), 8000);
        assert!(
            (res.trace.mean() - 4.0).abs() < 0.1,
            "mean {}",
            res.trace.mean()
        );
        assert!(res.acceptance_rate > 0.2 && res.acceptance_rate < 0.9);
    }

    #[test]
    fn statistic_evaluated_only_on_recorded_states() {
        let mut evals = 0usize;
        {
            let target = Normal::standard();
            let mut log_target = |x: &f64| target.log_prob(*x);
            let mut stat = |x: &f64| {
                evals += 1;
                *x
            };
            let cfg = ChainConfig {
                burn_in: 50,
                samples: 10,
                thin: 5,
            };
            let mut rng = StdRng::seed_from_u64(1);
            run_chain(
                0.0,
                &RandomWalk(1.0),
                &mut log_target,
                &mut stat,
                cfg,
                &mut rng,
            );
        }
        assert_eq!(evals, 10);
    }

    #[test]
    fn total_steps_accounts_for_thinning() {
        let cfg = ChainConfig {
            burn_in: 10,
            samples: 5,
            thin: 3,
        };
        assert_eq!(cfg.total_steps(), 25);
    }

    #[test]
    fn final_state_continues_the_chain() {
        let target = Normal::standard();
        let mut log_target = |x: &f64| target.log_prob(*x);
        let mut stat = |x: &f64| *x;
        let cfg = ChainConfig {
            burn_in: 0,
            samples: 100,
            thin: 1,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let res = run_chain(
            10.0,
            &RandomWalk(1.0),
            &mut log_target,
            &mut stat,
            cfg,
            &mut rng,
        );
        // After 100 steps from 10, the walk has moved towards the target.
        assert!(res.final_state.abs() < 10.0);
        assert_eq!(*res.trace.samples().last().unwrap(), res.final_state);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let target = Normal::standard();
        let mut log_target = |x: &f64| target.log_prob(*x);
        let mut stat = |x: &f64| *x;
        let cfg = ChainConfig {
            burn_in: 0,
            samples: 0,
            thin: 1,
        };
        let mut rng = StdRng::seed_from_u64(3);
        run_chain(
            0.0,
            &RandomWalk(1.0),
            &mut log_target,
            &mut stat,
            cfg,
            &mut rng,
        );
    }
}
