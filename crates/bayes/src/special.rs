//! Special functions needed by the distributions: log-gamma and the
//! regularised incomplete beta function.

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9),
/// accurate to ~1e-13 for positive arguments.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Log of the beta function `B(a, b)`.
///
/// # Panics
///
/// Panics unless `a > 0` and `b > 0`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularised incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Numerical Recipes style).
///
/// # Panics
///
/// Panics unless `a > 0`, `b > 0` and `0 <= x <= 1`.
pub fn betainc(a: f64, b: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "betainc requires positive shape parameters"
    );
    assert!((0.0..=1.0).contains(&x), "betainc requires x in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // `front` is symmetric under (a, b, x) -> (b, a, 1-x).
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b)).exp();
    // Use the symmetry relation for faster convergence of the continued
    // fraction (computed directly for both branches — a recursive call can
    // ping-pong forever at the threshold point).
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz algorithm).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Inverse of the regularised incomplete beta in `x` (quantile of a
/// `Beta(a, b)`), found by bisection.
///
/// # Panics
///
/// Panics unless `a > 0`, `b > 0` and `0 <= q <= 1`.
pub fn betainc_inv(a: f64, b: f64, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0, 1]");
    if q <= 0.0 {
        return 0.0;
    }
    if q >= 1.0 {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if betainc(a, b, mid) < q {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let lg = ln_gamma((n + 1) as f64);
            assert!((lg - f.ln()).abs() < 1e-10, "n={n}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_beta_symmetric() {
        assert!((ln_beta(2.5, 4.0) - ln_beta(4.0, 2.5)).abs() < 1e-12);
        // B(1, 1) = 1.
        assert!(ln_beta(1.0, 1.0).abs() < 1e-12);
    }

    #[test]
    fn betainc_uniform_case() {
        // I_x(1, 1) = x.
        for x in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert!((betainc(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn betainc_known_values() {
        // I_{0.5}(2, 2) = 0.5 by symmetry.
        assert!((betainc(2.0, 2.0, 0.5) - 0.5).abs() < 1e-10);
        // I_x(2, 1) = x^2.
        assert!((betainc(2.0, 1.0, 0.3) - 0.09).abs() < 1e-10);
        // I_x(1, 2) = 1 - (1-x)^2.
        assert!((betainc(1.0, 2.0, 0.3) - (1.0 - 0.49)).abs() < 1e-10);
    }

    #[test]
    fn betainc_is_monotone_in_x() {
        let mut prev = -1.0;
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let v = betainc(3.5, 1.7, x);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn betainc_inv_roundtrips() {
        for &(a, b) in &[(1.0, 1.0), (2.0, 5.0), (0.5, 0.5), (10.0, 3.0)] {
            for &q in &[0.05, 0.5, 0.95] {
                let x = betainc_inv(a, b, q);
                assert!((betainc(a, b, x) - q).abs() < 1e-8, "a={a} b={b} q={q}");
            }
        }
    }
}
