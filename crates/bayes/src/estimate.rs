//! Posterior estimation: Beta–Bernoulli conjugate updates and
//! self-normalised importance sampling.
//!
//! BDLFI reports the probability that a fault corrupts the classification
//! as a posterior distribution, not a point estimate; the Beta–Bernoulli
//! model gives exact credible intervals for per-point error probabilities
//! (the Fig. 1 ③ boundary map), and the importance-sampling estimator
//! re-weights tempered (rare-event accelerated) campaigns back to the
//! fault prior.

use crate::dist::Beta;
use serde::{Deserialize, Serialize};

/// Conjugate Beta–Bernoulli posterior over an unknown probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BetaBernoulli {
    /// Prior/posterior first shape parameter.
    pub alpha: f64,
    /// Prior/posterior second shape parameter.
    pub beta: f64,
}

impl BetaBernoulli {
    /// The Jeffreys prior `Beta(1/2, 1/2)` — a sensible default for error
    /// probabilities that may be extreme.
    pub fn jeffreys() -> Self {
        BetaBernoulli {
            alpha: 0.5,
            beta: 0.5,
        }
    }

    /// The uniform prior `Beta(1, 1)`.
    pub fn uniform() -> Self {
        BetaBernoulli {
            alpha: 1.0,
            beta: 1.0,
        }
    }

    /// Updates with `successes` out of `trials` Bernoulli observations.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials`.
    pub fn update(self, successes: u64, trials: u64) -> Self {
        assert!(successes <= trials, "successes cannot exceed trials");
        BetaBernoulli {
            alpha: self.alpha + successes as f64,
            beta: self.beta + (trials - successes) as f64,
        }
    }

    /// The posterior as a [`Beta`] distribution.
    pub fn posterior(self) -> Beta {
        Beta::new(self.alpha, self.beta)
    }

    /// Posterior mean.
    pub fn mean(self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Central credible interval at the given level (e.g. `0.95`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < level < 1`.
    pub fn credible_interval(self, level: f64) -> (f64, f64) {
        assert!(
            (0.0..1.0).contains(&level) && level > 0.0,
            "level must be in (0, 1)"
        );
        let tail = (1.0 - level) / 2.0;
        let post = self.posterior();
        (post.quantile(tail), post.quantile(1.0 - tail))
    }
}

/// Self-normalised importance-sampling estimate of `E_p[values]` from
/// samples drawn under a different distribution, given per-sample
/// `log_weights = log p − log q` (up to a shared constant).
///
/// Returns the estimate and the importance-sampling effective sample size
/// `(Σw)² / Σw²`.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn self_normalized_estimate(values: &[f64], log_weights: &[f64]) -> (f64, f64) {
    assert_eq!(
        values.len(),
        log_weights.len(),
        "values/weights length mismatch"
    );
    assert!(!values.is_empty(), "cannot estimate from zero samples");
    // Stabilise by subtracting the max log-weight.
    let max_lw = log_weights
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = log_weights.iter().map(|lw| (lw - max_lw).exp()).collect();
    let sum_w: f64 = weights.iter().sum();
    let sum_w2: f64 = weights.iter().map(|w| w * w).sum();
    let estimate = values
        .iter()
        .zip(weights.iter())
        .map(|(v, w)| v * w)
        .sum::<f64>()
        / sum_w;
    (estimate, sum_w * sum_w / sum_w2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conjugate_update_counts() {
        let post = BetaBernoulli::uniform().update(3, 10);
        assert_eq!(post.alpha, 4.0);
        assert_eq!(post.beta, 8.0);
        assert!((post.mean() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn interval_narrows_with_data() {
        let small = BetaBernoulli::jeffreys().update(5, 10);
        let large = BetaBernoulli::jeffreys().update(500, 1000);
        let w = |bb: BetaBernoulli| {
            let (lo, hi) = bb.credible_interval(0.95);
            hi - lo
        };
        assert!(w(large) < w(small) / 3.0);
    }

    #[test]
    fn interval_brackets_the_truth_typically() {
        // 200 successes of 1000 at p=0.2: the 95% CI must contain 0.2.
        let bb = BetaBernoulli::jeffreys().update(200, 1000);
        let (lo, hi) = bb.credible_interval(0.95);
        assert!(lo < 0.2 && 0.2 < hi, "({lo}, {hi})");
        assert!(hi - lo < 0.06);
    }

    #[test]
    fn extreme_counts_stay_in_bounds() {
        let all_fail = BetaBernoulli::jeffreys().update(0, 50);
        let (lo, hi) = all_fail.credible_interval(0.95);
        assert!(lo >= 0.0 && hi <= 1.0);
        assert!(hi < 0.1); // zero successes of 50 -> small upper bound
    }

    #[test]
    fn importance_with_uniform_weights_is_plain_mean() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        let (est, ess) = self_normalized_estimate(&vals, &[0.0; 4]);
        assert!((est - 2.5).abs() < 1e-12);
        assert!((ess - 4.0).abs() < 1e-12);
    }

    #[test]
    fn importance_reweights_correctly() {
        // Samples {0, 1} drawn uniformly; target puts 0.9 on 1.
        // E_p[x] = 0.9. log w(1) = ln(0.9/0.5), log w(0) = ln(0.1/0.5).
        let values: Vec<f64> = (0..1000).map(|i| (i % 2) as f64).collect();
        let log_w: Vec<f64> = values
            .iter()
            .map(|&x| {
                if x == 1.0 {
                    (0.9f64 / 0.5).ln()
                } else {
                    (0.1f64 / 0.5).ln()
                }
            })
            .collect();
        let (est, ess) = self_normalized_estimate(&values, &log_w);
        assert!((est - 0.9).abs() < 1e-12);
        assert!(ess < 1000.0); // weight imbalance reduces ESS
    }

    #[test]
    fn importance_is_shift_invariant_in_log_weights() {
        let vals = [0.5, 1.5, -0.5];
        let lw = [0.1, -0.2, 0.3];
        let shifted: Vec<f64> = lw.iter().map(|x| x + 100.0).collect();
        let (a, _) = self_normalized_estimate(&vals, &lw);
        let (b, _) = self_normalized_estimate(&vals, &shifted);
        assert!((a - b).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn posterior_mean_between_prior_and_mle(s in 0u64..50, extra in 0u64..50) {
            let t = s + extra;
            prop_assume!(t > 0);
            let bb = BetaBernoulli::uniform().update(s, t);
            let mle = s as f64 / t as f64;
            let prior = 0.5;
            let (lo, hi) = if mle < prior { (mle, prior) } else { (prior, mle) };
            prop_assert!(bb.mean() >= lo - 1e-12 && bb.mean() <= hi + 1e-12);
        }
    }
}
