//! A small Bayesian-network DAG — the formalisation of the paper's
//! "Bayesian Network based Failure Model" (Fig. 1 ②).
//!
//! Each neuron's fault model is: Bernoulli leaf nodes `bᵢ` for the bit
//! indicators, a deterministic XOR node producing the faulty weight
//! `W′ = e ⊙ W`, and a deterministic activation node
//! `y′ = max(0, W′ᵀx + b′)`. The campaign hot path uses a fused
//! implementation in the `bdlfi` core crate; this generic DAG exists so the
//! semantics can be stated and *tested* independently, and so other fault
//! models can be prototyped.

use crate::dist::Distribution;
use rand::Rng;
use std::sync::Arc;

/// Identifier of a node within a [`BayesNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

/// Deterministic node function: parents' values → value.
pub type DetFn = Arc<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// Conditional distribution constructor: parents' values → distribution.
pub type CondFn = Arc<dyn Fn(&[f64]) -> Box<dyn Distribution> + Send + Sync>;

enum NodeKind {
    Stochastic(Box<dyn Distribution>),
    Conditional(CondFn),
    Deterministic(DetFn),
}

struct NodeEntry {
    name: String,
    kind: NodeKind,
    parents: Vec<NodeId>,
}

/// A directed acyclic probabilistic graphical model with ancestral sampling
/// and joint log-density evaluation.
///
/// Nodes must be added parents-first (insertion order is the topological
/// order), which makes cycles unrepresentable.
#[derive(Default)]
pub struct BayesNet {
    nodes: Vec<NodeEntry>,
}

impl std::fmt::Debug for BayesNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.nodes.iter().map(|n| n.name.as_str()).collect();
        f.debug_struct("BayesNet").field("nodes", &names).finish()
    }
}

impl BayesNet {
    /// Creates an empty network.
    pub fn new() -> Self {
        BayesNet { nodes: Vec::new() }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds an unconditional stochastic node.
    pub fn add_stochastic(
        &mut self,
        name: impl Into<String>,
        dist: impl Distribution + 'static,
    ) -> NodeId {
        self.nodes.push(NodeEntry {
            name: name.into(),
            kind: NodeKind::Stochastic(Box::new(dist)),
            parents: Vec::new(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a stochastic node whose distribution depends on its parents.
    ///
    /// # Panics
    ///
    /// Panics if any parent was not added before this node.
    pub fn add_conditional(
        &mut self,
        name: impl Into<String>,
        parents: Vec<NodeId>,
        f: impl Fn(&[f64]) -> Box<dyn Distribution> + Send + Sync + 'static,
    ) -> NodeId {
        self.check_parents(&parents);
        self.nodes.push(NodeEntry {
            name: name.into(),
            kind: NodeKind::Conditional(Arc::new(f)),
            parents,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a deterministic node computed from its parents.
    ///
    /// # Panics
    ///
    /// Panics if any parent was not added before this node.
    pub fn add_deterministic(
        &mut self,
        name: impl Into<String>,
        parents: Vec<NodeId>,
        f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) -> NodeId {
        self.check_parents(&parents);
        self.nodes.push(NodeEntry {
            name: name.into(),
            kind: NodeKind::Deterministic(Arc::new(f)),
            parents,
        });
        NodeId(self.nodes.len() - 1)
    }

    fn check_parents(&self, parents: &[NodeId]) {
        for p in parents {
            assert!(
                p.0 < self.nodes.len(),
                "parent {:?} must be added before its child",
                p
            );
        }
    }

    /// Finds a node by name (first match).
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// The name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn name(&self, id: NodeId) -> &str {
        &self.nodes[id.0].name
    }

    /// Ancestral (forward) sampling: one joint draw, indexed by [`NodeId`].
    pub fn sample(&self, rng: &mut dyn Rng) -> Vec<f64> {
        let mut values = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let parent_vals: Vec<f64> = node.parents.iter().map(|p| values[p.0]).collect();
            let v = match &node.kind {
                NodeKind::Stochastic(d) => d.sample(rng),
                NodeKind::Conditional(f) => f(&parent_vals).sample(rng),
                NodeKind::Deterministic(f) => f(&parent_vals),
            };
            values.push(v);
        }
        values
    }

    /// The value of node `id` in a joint sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample does not match this network.
    pub fn value(&self, sample: &[f64], id: NodeId) -> f64 {
        assert_eq!(sample.len(), self.nodes.len(), "sample size mismatch");
        sample[id.0]
    }

    /// Joint log-density of a full assignment: the sum of stochastic nodes'
    /// log-probabilities. Deterministic nodes must be *consistent* with
    /// their parents; an inconsistent assignment has probability zero.
    pub fn log_joint(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.nodes.len(), "assignment size mismatch");
        let mut total = 0.0f64;
        for (i, node) in self.nodes.iter().enumerate() {
            let parent_vals: Vec<f64> = node.parents.iter().map(|p| values[p.0]).collect();
            match &node.kind {
                NodeKind::Stochastic(d) => total += d.log_prob(values[i]),
                NodeKind::Conditional(f) => total += f(&parent_vals).log_prob(values[i]),
                NodeKind::Deterministic(f) => {
                    let expected = f(&parent_vals);
                    let consistent = (expected == values[i])
                        || (expected.is_nan() && values[i].is_nan())
                        || (expected - values[i]).abs() <= 1e-12 * expected.abs().max(1.0);
                    if !consistent {
                        return f64::NEG_INFINITY;
                    }
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Bernoulli, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The paper's per-neuron fault model in miniature: one weight, one
    /// Bernoulli bit, faulty weight by sign flip, ReLU activation.
    fn neuron_fault_net(w: f64, x: f64, p: f64) -> (BayesNet, NodeId, NodeId) {
        let mut net = BayesNet::new();
        let b = net.add_stochastic("b", Bernoulli::new(p));
        let w_faulty = net.add_deterministic("w_faulty", vec![b], move |pv| {
            if pv[0] == 1.0 {
                -w // sign-bit flip
            } else {
                w
            }
        });
        let y = net.add_deterministic("y", vec![w_faulty], move |pv| (pv[0] * x).max(0.0));
        (net, b, y)
    }

    #[test]
    fn ancestral_sampling_propagates_faults() {
        let (net, b, y) = neuron_fault_net(2.0, 3.0, 0.5);
        let mut rng = StdRng::seed_from_u64(0);
        let mut saw_fault = false;
        let mut saw_clean = false;
        for _ in 0..100 {
            let s = net.sample(&mut rng);
            if net.value(&s, b) == 1.0 {
                assert_eq!(net.value(&s, y), 0.0); // ReLU clamps -6
                saw_fault = true;
            } else {
                assert_eq!(net.value(&s, y), 6.0);
                saw_clean = true;
            }
        }
        assert!(saw_fault && saw_clean);
    }

    #[test]
    fn log_joint_scores_only_stochastic_nodes() {
        let (net, _, _) = neuron_fault_net(2.0, 3.0, 0.25);
        // Consistent fault assignment: b=1, w'=-2, y=0.
        let lp = net.log_joint(&[1.0, -2.0, 0.0]);
        assert!((lp - 0.25f64.ln()).abs() < 1e-12);
        // Consistent clean assignment.
        let lp = net.log_joint(&[0.0, 2.0, 6.0]);
        assert!((lp - 0.75f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn inconsistent_deterministic_assignment_has_zero_probability() {
        let (net, _, _) = neuron_fault_net(2.0, 3.0, 0.25);
        assert_eq!(net.log_joint(&[1.0, 2.0, 6.0]), f64::NEG_INFINITY);
    }

    #[test]
    fn conditional_nodes_use_parent_values() {
        let mut net = BayesNet::new();
        let mu = net.add_stochastic("mu", Normal::new(0.0, 1.0));
        let x = net.add_conditional("x", vec![mu], |pv| Box::new(Normal::new(pv[0], 0.1)));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = net.sample(&mut rng);
            assert!((net.value(&s, x) - net.value(&s, mu)).abs() < 1.0);
        }
        // log_joint decomposes as prior + likelihood.
        let lp = net.log_joint(&[0.5, 0.6]);
        let expected = Normal::new(0.0, 1.0).log_prob(0.5) + Normal::new(0.5, 0.1).log_prob(0.6);
        assert!((lp - expected).abs() < 1e-12);
    }

    #[test]
    fn node_lookup_by_name() {
        let (net, b, _) = neuron_fault_net(1.0, 1.0, 0.5);
        assert_eq!(net.node_id("b"), Some(b));
        assert_eq!(net.node_id("missing"), None);
        assert_eq!(net.name(b), "b");
        assert_eq!(net.len(), 3);
    }

    #[test]
    #[should_panic(expected = "must be added before")]
    fn forward_references_rejected() {
        let mut net = BayesNet::new();
        net.add_deterministic("bad", vec![NodeId(5)], |_| 0.0);
    }
}
