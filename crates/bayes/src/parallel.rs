//! Parallel chain execution on scoped OS threads (crossbeam).
//!
//! The paper's point (3): BDLFI campaigns need only *inference*, so they
//! parallelise trivially — one MCMC chain per thread, no debugger hooks or
//! system support. This helper runs one closure per chain index and
//! collects the results in order.

/// Runs `f(0), …, f(n-1)` on separate scoped threads and returns the
/// results in index order.
///
/// `f` is cloned per thread via `&` capture, so it must be `Sync`; results
/// must be `Send`.
///
/// # Panics
///
/// Panics if any worker panics (the panic is propagated).
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![f(0)];
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (i, slot) in out.iter_mut().enumerate() {
            let f = &f;
            handles.push(scope.spawn(move |_| {
                *slot = Some(f(i));
            }));
        }
        for h in handles {
            h.join().expect("parallel_map worker panicked");
        }
    })
    .expect("parallel_map scope failed");
    out.into_iter().map(|s| s.expect("worker did not produce a result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = parallel_map(16, |i| i * i);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_workers() {
        assert_eq!(parallel_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn workers_actually_run_concurrently_safe_state() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        parallel_map(8, |_| counter.fetch_add(1, Ordering::SeqCst));
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        parallel_map(4, |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }
}
