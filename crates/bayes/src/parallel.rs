//! Parallel chain execution on scoped OS threads.
//!
//! The paper's point (3): BDLFI campaigns need only *inference*, so they
//! parallelise trivially — one MCMC chain per worker, no debugger hooks or
//! system support. This helper runs one closure per chain index and
//! collects the results in order.
//!
//! Unlike the original one-thread-per-index implementation, the worker
//! count is capped at [`std::thread::available_parallelism`]: campaigns
//! routinely ask for dozens of chains (E3 runs 18 layer campaigns × 4
//! chains), and oversubscribing the machine with hundreds of OS threads
//! only adds scheduler churn. Indices are handed out through a chunked
//! atomic queue so long and short chains balance across workers.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on worker threads: the machine's available parallelism
/// (falls back to 1 if it cannot be queried).
fn max_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f(0), …, f(n-1)` on a bounded pool of scoped threads and returns
/// the results in index order.
///
/// `f` is shared across workers via `&` capture, so it must be `Sync`;
/// results must be `Send`. At most `available_parallelism()` threads run
/// at once; work is claimed in chunks from a shared atomic counter, so an
/// expensive index does not serialise the rest of the batch behind it.
///
/// # Panics
///
/// Panics if any worker panics (the panic is propagated).
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![f(0)];
    }
    let workers = max_workers().min(n);
    // Small chunks keep the queue balanced; 1 when work is scarce.
    let chunk = (n / (workers * 4)).max(1);

    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let f = &f;
                let next = &next;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            return local;
                        }
                        for i in start..(start + chunk).min(n) {
                            local.push((i, f(i)));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            for (i, value) in h.join().expect("parallel_map worker panicked") {
                out[i] = Some(value);
            }
        }
    });
    out.into_iter()
        .map(|s| s.expect("worker did not produce a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = parallel_map(16, |i| i * i);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_workers() {
        assert_eq!(parallel_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn workers_actually_run_concurrently_safe_state() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        parallel_map(8, |_| counter.fetch_add(1, Ordering::SeqCst));
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        parallel_map(4, |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn many_more_tasks_than_cores() {
        // Far more indices than any machine has cores: exercises the
        // chunked queue and result merging.
        let out = parallel_map(1000, |i| i + 1);
        assert_eq!(out, (1..=1000).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_is_bounded() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        parallel_map(256, |i| {
            ids.lock().unwrap().insert(std::thread::current().id());
            i
        });
        let used = ids.lock().unwrap().len();
        assert!(used <= super::max_workers());
    }
}
