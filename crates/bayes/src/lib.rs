//! # bdlfi-bayes
//!
//! Probabilistic-programming substrate for the BDLFI reproduction ("Towards
//! a Bayesian Approach for Assessing Fault Tolerance of Deep Neural
//! Networks", DSN 2019).
//!
//! Rust's PPL ecosystem is thin, so this crate implements from scratch the
//! Bayesian machinery the methodology needs:
//!
//! * [`dist`] — distributions (Bernoulli, Beta, Normal, Uniform, Binomial,
//!   Categorical) with sampling and log-densities;
//! * [`graph`] — a small Bayesian-network DAG, the formalisation of the
//!   paper's per-neuron failure model (Fig. 1 ②);
//! * [`mcmc`] — proposals, the Metropolis–Hastings step, chain runner and
//!   traces;
//! * [`diagnostics`] — split-R̂, effective sample size, Geweke z and Monte
//!   Carlo standard error: the mixing measures behind BDLFI's campaign
//!   *completeness* certification;
//! * [`estimate`] — Beta–Bernoulli conjugate posteriors (credible
//!   intervals on error probabilities) and self-normalised importance
//!   sampling (re-weighting of rare-event accelerated campaigns);
//! * [`seed`] — SplitMix64 per-task seed streams, the deterministic seed
//!   discipline every parallel campaign derives its RNGs from (executed by
//!   `bdlfi::engine::EvalEngine`, which replaced this crate's former
//!   `parallel_map` helper);
//! * [`special`] — log-gamma and the regularised incomplete beta.
//!
//! # Examples
//!
//! ```
//! use bdlfi_bayes::dist::{Distribution, Normal};
//! use bdlfi_bayes::mcmc::{run_chain, ChainConfig, Proposal};
//! use rand::{Rng, SeedableRng};
//!
//! struct Walk;
//! impl Proposal<f64> for Walk {
//!     fn propose(&self, x: &f64, rng: &mut dyn Rng) -> (f64, f64) {
//!         (x + Normal::new(0.0, 1.0).sample(rng), 0.0)
//!     }
//! }
//!
//! let target = Normal::new(2.0, 1.0);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let res = run_chain(
//!     0.0,
//!     &Walk,
//!     &mut |x: &f64| target.log_prob(*x),
//!     &mut |x: &f64| *x,
//!     ChainConfig { burn_in: 200, samples: 2000, thin: 1 },
//!     &mut rng,
//! );
//! assert!((res.trace.mean() - 2.0).abs() < 0.2);
//! ```

#![warn(missing_docs)]

pub mod diagnostics;
pub mod dist;
pub mod estimate;
pub mod graph;
pub mod mcmc;
pub mod seed;
pub mod special;

pub use diagnostics::{
    autocorrelations, ess, ess_slices, geweke_z, mcse, mcse_batch_means, mcse_slices, split_rhat,
    split_rhat_slices,
};
pub use estimate::{self_normalized_estimate, BetaBernoulli};
pub use mcmc::{
    mh_step, run_chain, ChainConfig, ChainResult, IndependenceProposal, MixtureProposal, Proposal,
    Trace, TraceSummary,
};
pub use seed::seed_stream;
