//! Deterministic per-task seed derivation — the workspace's single seed
//! discipline.
//!
//! Every parallel campaign derives one RNG stream per task (MCMC chain,
//! injection run, restart, …) from a single campaign-level seed. Deriving
//! those streams as `seed + task_id` — the historical ad-hoc pattern — is
//! collision-prone: campaigns seeded 1 and 2 share all but one of their
//! streams, and composite drivers that offset seeds by hand
//! (`seed + depth * 7919`) can collide between levels of the hierarchy.
//!
//! [`seed_stream`] instead treats the campaign seed as the state of a
//! SplitMix64 generator and returns its `task_id`-th output. SplitMix64's
//! finalizer is a bijective avalanche mix, so nearby campaign seeds and
//! nearby task ids yield statistically unrelated 64-bit seeds, and two
//! distinct `(campaign_seed, task_id)` pairs collide no more often than
//! random 64-bit values would.

/// SplitMix64's odd golden-ratio increment.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The `task_id`-th output of a SplitMix64 generator seeded with
/// `campaign_seed` — use it to seed the RNG of task `task_id`.
///
/// Drivers that need several independent streams per task (e.g. one for
/// MCMC proposals and one for transient activation faults) reserve a block
/// of ids per task: stream `lane` of task `t` is
/// `seed_stream(seed, lanes * t + lane)`.
#[must_use]
pub fn seed_stream(campaign_seed: u64, task_id: u64) -> u64 {
    // SplitMix64: state_i = seed + (i + 1) * gamma; output_i = mix(state_i).
    mix(campaign_seed.wrapping_add(task_id.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)))
}

/// SplitMix64's 64-bit finalizer (Stafford variant 13): a bijection with
/// full avalanche.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn streams_are_deterministic() {
        assert_eq!(seed_stream(42, 7), seed_stream(42, 7));
        assert_ne!(seed_stream(42, 7), seed_stream(42, 8));
        assert_ne!(seed_stream(42, 7), seed_stream(43, 7));
    }

    #[test]
    fn streams_are_disjoint_across_seeds_and_tasks() {
        // The ad-hoc `seed + i` derivation collides massively on this grid
        // (seed 1 task 1 == seed 2 task 0, …); seed_stream must not.
        let mut seen = HashSet::new();
        for seed in 0..16u64 {
            for task in 0..512u64 {
                assert!(
                    seen.insert(seed_stream(seed, task)),
                    "collision at seed {seed} task {task}"
                );
            }
        }
        assert_eq!(seen.len(), 16 * 512);
    }

    #[test]
    fn adjacent_inputs_avalanche() {
        // Consecutive task ids (the common case) must differ in many bits,
        // not just the low ones: StdRng seeds feed SplitMix64 again, but
        // weak derivations would still correlate low-entropy uses.
        for task in 0..256u64 {
            let a = seed_stream(99, task);
            let b = seed_stream(99, task + 1);
            let dist = (a ^ b).count_ones();
            assert!(dist >= 10, "task {task}: hamming distance {dist}");
        }
    }

    #[test]
    fn plain_additive_derivation_would_collide_here() {
        // Documents the failure mode this module exists to fix: under
        // `seed + i`, campaign (seed=1, task=1) and campaign (seed=2,
        // task=0) share a stream. Under seed_stream they do not.
        assert_eq!(1u64 + 1, 2u64); // the ad-hoc scheme's collision
        assert_ne!(seed_stream(1, 1), seed_stream(2, 0));
    }

    #[test]
    fn matches_reference_splitmix64_outputs() {
        // First outputs of SplitMix64 seeded with 1234567 (reference values
        // from the public-domain splitmix64.c test vectors).
        let expected = [6_457_827_717_110_365_317u64, 3_203_168_211_198_807_973u64];
        assert_eq!(seed_stream(1234567, 0), expected[0]);
        assert_eq!(seed_stream(1234567, 1), expected[1]);
    }
}
