//! Probability distributions with sampling and log-densities.
//!
//! Only what the BDLFI methodology needs: Bernoulli bit indicators (the
//! fault model's leaves), Beta (conjugate posterior over error
//! probabilities), Binomial (flip counts), Normal and Uniform (proposals,
//! diagnostics) and Categorical (site selection).

use crate::special::{ln_beta, ln_gamma};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// A scalar distribution: sampling plus log-density (or log-mass).
pub trait Distribution: Send + Sync {
    /// Draws one sample.
    fn sample(&self, rng: &mut dyn Rng) -> f64;

    /// Log-density (continuous) or log-mass (discrete) at `x`.
    fn log_prob(&self, x: f64) -> f64;

    /// Expected value.
    fn mean(&self) -> f64;

    /// Variance.
    fn variance(&self) -> f64;
}

/// Bernoulli distribution over `{0.0, 1.0}` — the paper's per-bit fault
/// indicator `bᵢ ~ Bernoulli(p)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bernoulli {
    /// Success probability.
    pub p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    pub fn new(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "bernoulli probability must be in [0, 1]"
        );
        Bernoulli { p }
    }
}

impl Distribution for Bernoulli {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        f64::from(rng.random::<f64>() < self.p)
    }

    fn log_prob(&self, x: f64) -> f64 {
        if x == 1.0 {
            self.p.ln()
        } else if x == 0.0 {
            (1.0 - self.p).ln()
        } else {
            f64::NEG_INFINITY
        }
    }

    fn mean(&self) -> f64 {
        self.p
    }

    fn variance(&self) -> f64 {
        self.p * (1.0 - self.p)
    }
}

/// Continuous uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "uniform requires lo < hi");
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.random::<f64>()
    }

    fn log_prob(&self, x: f64) -> f64 {
        if (self.lo..self.hi).contains(&x) {
            -(self.hi - self.lo).ln()
        } else {
            f64::NEG_INFINITY
        }
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        (self.hi - self.lo).powi(2) / 12.0
    }
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    /// Mean.
    pub mu: f64,
    /// Standard deviation.
    pub sigma: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "normal requires sigma > 0");
        Normal { mu, sigma }
    }

    /// The standard normal.
    pub fn standard() -> Self {
        Normal {
            mu: 0.0,
            sigma: 1.0,
        }
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        // Box–Muller.
        let u1: f64 = (1.0 - rng.random::<f64>()).max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mu + self.sigma * z
    }

    fn log_prob(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        -0.5 * z * z - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }
}

/// Beta distribution — the conjugate posterior for the misclassification
/// probability BDLFI reports credible intervals on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Beta {
    /// First shape parameter.
    pub alpha: f64,
    /// Second shape parameter.
    pub beta: f64,
}

impl Beta {
    /// Creates a beta distribution.
    ///
    /// # Panics
    ///
    /// Panics unless both shapes are positive.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha > 0.0 && beta > 0.0,
            "beta requires positive shape parameters"
        );
        Beta { alpha, beta }
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        crate::special::betainc(self.alpha, self.beta, x.clamp(0.0, 1.0))
    }

    /// Quantile (inverse CDF) at level `q`.
    pub fn quantile(&self, q: f64) -> f64 {
        crate::special::betainc_inv(self.alpha, self.beta, q)
    }
}

impl Distribution for Beta {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        // X = Ga(α)/(Ga(α)+Ga(β)) via Marsaglia–Tsang gamma sampling.
        let x = sample_gamma(self.alpha, rng);
        let y = sample_gamma(self.beta, rng);
        x / (x + y)
    }

    fn log_prob(&self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return f64::NEG_INFINITY;
        }
        (self.alpha - 1.0) * x.ln() + (self.beta - 1.0) * (1.0 - x).ln()
            - ln_beta(self.alpha, self.beta)
    }

    fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }
}

/// Marsaglia–Tsang gamma sampler (shape `a`, unit scale).
fn sample_gamma(a: f64, rng: &mut dyn Rng) -> f64 {
    if a < 1.0 {
        // Boost: Ga(a) = Ga(a+1) · U^(1/a).
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(a + 1.0, rng) * u.powf(1.0 / a);
    }
    let d = a - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let z = Normal::standard().sample(rng);
        let v = (1.0 + c * z).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Binomial distribution — the distribution of the number of flipped bits
/// under the paper's fault model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Binomial {
    /// Number of trials.
    pub n: u64,
    /// Success probability.
    pub p: f64,
}

impl Binomial {
    /// Creates a binomial distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "binomial probability must be in [0, 1]"
        );
        Binomial { n, p }
    }
}

impl Distribution for Binomial {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        // Inversion for small n·p, otherwise geometric skipping (same trick
        // the fault masks use).
        if self.p <= 0.0 {
            return 0.0;
        }
        if self.p >= 1.0 {
            return self.n as f64;
        }
        let log1m = (1.0 - self.p).ln();
        let mut count = 0u64;
        let mut pos = 0u64;
        loop {
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let gap = (u.ln() / log1m).floor() as u64;
            pos = match pos.checked_add(gap) {
                Some(q) if q < self.n => q,
                _ => break,
            };
            count += 1;
            pos += 1;
            if pos >= self.n {
                break;
            }
        }
        count as f64
    }

    fn log_prob(&self, x: f64) -> f64 {
        if x < 0.0 || x > self.n as f64 || x.fract() != 0.0 {
            return f64::NEG_INFINITY;
        }
        let k = x;
        let n = self.n as f64;
        if self.p == 0.0 {
            return if k == 0.0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == n { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_gamma(n + 1.0) - ln_gamma(k + 1.0) - ln_gamma(n - k + 1.0)
            + k * self.p.ln()
            + (n - k) * (1.0 - self.p).ln()
    }

    fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }
}

/// Poisson distribution — the small-`p` limit of the paper's per-bit flip
/// count (a `Binomial(n, p)` with `n·p = λ` fixed converges to
/// `Poisson(λ)`), handy for analytic sanity checks of rare-fault regimes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poisson {
    /// Rate parameter `λ > 0`.
    pub lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `lambda > 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "poisson rate must be positive");
        Poisson { lambda }
    }
}

impl Distribution for Poisson {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        if self.lambda < 30.0 {
            // Knuth's multiplication method.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0f64;
            loop {
                p *= rng.random::<f64>();
                if p <= l {
                    return k as f64;
                }
                k += 1;
            }
        }
        // Normal approximation with continuity correction for large λ.
        let z = Normal::new(self.lambda, self.lambda.sqrt()).sample(rng);
        z.round().max(0.0)
    }

    fn log_prob(&self, x: f64) -> f64 {
        if x < 0.0 || x.fract() != 0.0 {
            return f64::NEG_INFINITY;
        }
        x * self.lambda.ln() - self.lambda - ln_gamma(x + 1.0)
    }

    fn mean(&self) -> f64 {
        self.lambda
    }

    fn variance(&self) -> f64 {
        self.lambda
    }
}

/// Categorical distribution over `{0, …, k−1}` with explicit weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Categorical {
    probs: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution from (unnormalised) non-negative
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty, contain negatives, or sum to zero.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            !weights.is_empty(),
            "categorical requires at least one weight"
        );
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        Categorical {
            probs: weights.into_iter().map(|w| w / total).collect(),
        }
    }

    /// Uniform over `k` categories.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn uniform(k: usize) -> Self {
        assert!(k > 0, "categorical requires k > 0");
        Categorical {
            probs: vec![1.0 / k as f64; k],
        }
    }

    /// Normalised category probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }
}

impl Distribution for Categorical {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        let u: f64 = rng.random::<f64>();
        let mut acc = 0.0;
        for (i, &p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i as f64;
            }
        }
        (self.probs.len() - 1) as f64
    }

    fn log_prob(&self, x: f64) -> f64 {
        if x < 0.0 || x.fract() != 0.0 {
            return f64::NEG_INFINITY;
        }
        match self.probs.get(x as usize) {
            Some(&p) if p > 0.0 => p.ln(),
            _ => f64::NEG_INFINITY,
        }
    }

    fn mean(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| i as f64 * p)
            .sum()
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| p * (i as f64 - m).powi(2))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_stats(d: &dyn Distribution, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var)
    }

    #[test]
    fn bernoulli_moments() {
        let d = Bernoulli::new(0.3);
        let (m, v) = sample_stats(&d, 20_000, 1);
        assert!((m - 0.3).abs() < 0.02);
        assert!((v - 0.21).abs() < 0.02);
        assert!((d.log_prob(1.0) - 0.3f64.ln()).abs() < 1e-12);
        assert_eq!(d.log_prob(0.5), f64::NEG_INFINITY);
    }

    #[test]
    fn uniform_moments_and_support() {
        let d = Uniform::new(-1.0, 3.0);
        let (m, v) = sample_stats(&d, 20_000, 2);
        assert!((m - 1.0).abs() < 0.05);
        assert!((v - 16.0 / 12.0).abs() < 0.1);
        assert_eq!(d.log_prob(5.0), f64::NEG_INFINITY);
        assert!((d.log_prob(0.0) - (0.25f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn normal_moments_and_density() {
        let d = Normal::new(2.0, 3.0);
        let (m, v) = sample_stats(&d, 50_000, 3);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
        assert!((v - 9.0).abs() < 0.3, "var {v}");
        // Density integrates to ~1 on a grid.
        let integral: f64 = (-200..200)
            .map(|i| d.log_prob(2.0 + i as f64 * 0.1).exp() * 0.1)
            .sum();
        assert!((integral - 1.0).abs() < 1e-3);
    }

    #[test]
    fn beta_moments_and_cdf() {
        let d = Beta::new(2.0, 5.0);
        let (m, v) = sample_stats(&d, 50_000, 4);
        assert!((m - d.mean()).abs() < 0.01);
        assert!((v - d.variance()).abs() < 0.01);
        assert!((d.cdf(d.quantile(0.8)) - 0.8).abs() < 1e-6);
        // Symmetric case median.
        assert!((Beta::new(3.0, 3.0).quantile(0.5) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn beta_log_prob_normalises() {
        let d = Beta::new(2.5, 1.5);
        let integral: f64 = (1..999)
            .map(|i| d.log_prob(i as f64 / 1000.0).exp() / 1000.0)
            .sum();
        assert!((integral - 1.0).abs() < 2e-3, "integral {integral}");
    }

    #[test]
    fn binomial_moments_and_pmf_sum() {
        let d = Binomial::new(50, 0.2);
        let (m, v) = sample_stats(&d, 20_000, 5);
        assert!((m - 10.0).abs() < 0.15, "mean {m}");
        assert!((v - 8.0).abs() < 0.4, "var {v}");
        let total: f64 = (0..=50).map(|k| d.log_prob(k as f64).exp()).sum();
        assert!((total - 1.0).abs() < 1e-10);
        assert_eq!(d.log_prob(2.5), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(Binomial::new(10, 0.0).sample(&mut rng), 0.0);
        assert_eq!(Binomial::new(10, 1.0).sample(&mut rng), 10.0);
    }

    #[test]
    fn poisson_moments_and_pmf() {
        let d = Poisson::new(3.5);
        let (m, v) = sample_stats(&d, 30_000, 9);
        assert!((m - 3.5).abs() < 0.06, "mean {m}");
        assert!((v - 3.5).abs() < 0.15, "var {v}");
        let total: f64 = (0..60).map(|k| d.log_prob(k as f64).exp()).sum();
        assert!((total - 1.0).abs() < 1e-10);
        assert_eq!(d.log_prob(1.5), f64::NEG_INFINITY);
    }

    #[test]
    fn poisson_approximates_rare_binomial() {
        // Binomial(100000, 3e-5) ~ Poisson(3): compare pmfs at a few points.
        let b = Binomial::new(100_000, 3e-5);
        let p = Poisson::new(3.0);
        for k in [0.0f64, 1.0, 3.0, 7.0] {
            let (lb, lp) = (b.log_prob(k), p.log_prob(k));
            assert!((lb - lp).abs() < 0.01, "k={k}: {lb} vs {lp}");
        }
    }

    #[test]
    fn poisson_large_lambda_uses_normal_path() {
        let d = Poisson::new(100.0);
        let (m, v) = sample_stats(&d, 20_000, 10);
        assert!((m - 100.0).abs() < 0.5);
        assert!((v - 100.0).abs() < 5.0);
    }

    #[test]
    fn categorical_normalises_and_samples_in_range() {
        let d = Categorical::new(vec![1.0, 3.0, 0.0, 4.0]);
        assert!((d.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(d.log_prob(2.0), f64::NEG_INFINITY);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        assert_eq!(counts[2], 0);
        assert!((counts[3] as f64 / 8000.0 - 0.5).abs() < 0.03);
    }

    #[test]
    fn distributions_are_object_safe() {
        let ds: Vec<Box<dyn Distribution>> = vec![
            Box::new(Bernoulli::new(0.5)),
            Box::new(Uniform::new(0.0, 1.0)),
            Box::new(Normal::standard()),
            Box::new(Beta::new(1.0, 1.0)),
            Box::new(Binomial::new(4, 0.5)),
            Box::new(Categorical::uniform(3)),
        ];
        let mut rng = StdRng::seed_from_u64(8);
        for d in &ds {
            let x = d.sample(&mut rng);
            assert!(d.log_prob(x).is_finite() || d.log_prob(x) == f64::NEG_INFINITY);
        }
    }
}
