//! The daemon: TCP accept loop, request routing, the fair scheduler over
//! the shared [`WorkerPool`], and clean shutdown.
//!
//! # Lifecycle
//!
//! [`Daemon::bind`] opens the state directory (rebuilding the registry
//! from persisted jobs) and binds the listener; [`Daemon::start`] spawns
//! the accept and scheduler threads and returns a [`DaemonHandle`].
//! Shutdown — via `POST /shutdown`, [`DaemonHandle::shutdown`], or
//! dropping the handle — raises the global stop, interrupts every running
//! job at its next task boundary, joins the runners (so journals are
//! flushed and statuses settled), closes every event stream, and joins
//! the accept/scheduler threads. An interrupted job's journal plus its
//! persisted spec are all a restarted daemon needs to resume it.
//!
//! # Scheduling
//!
//! Jobs queue FIFO. When a job reaches the head, the scheduler grants it
//! `min(desired, max(1, total / (waiting + 1)))` workers — `desired`
//! being the submitted config's worker count (0 = the whole pool) — so a
//! lone job gets everything while a busy daemon converges to equal
//! shares. The grant only sizes the engine's thread pool; results are
//! worker-count-invariant, so fairness never changes a report.

use crate::http::{
    read_request, respond_bytes, respond_error, respond_json, ChunkedWriter, Request,
};
use crate::jobs::{
    event_done, event_failed, event_interrupted, event_started, run_job, JobObserver, JobOutcome,
    JobState, JobStatus, Registry,
};
use crate::pool::WorkerPool;
use crate::spec::JobSpec;
use bdlfi::{RunControl, RunMeta, RunObserver};
use serde::{Deserialize, Value};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Where specs, journals and reports live.
    pub state_dir: PathBuf,
    /// Worker-pool budget (0 = one per core).
    pub workers: usize,
    /// Journal fsync cadence passed to every job's checkpoint spec.
    pub sync_every: usize,
}

struct QueueEntry {
    job: Arc<JobState>,
    resume: bool,
}

struct Inner {
    registry: Registry,
    pool: Arc<WorkerPool>,
    sync_every: usize,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<QueueEntry>>,
    queue_cv: Condvar,
    runners: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Inner {
    fn enqueue(&self, job: Arc<JobState>, resume: bool) {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(QueueEntry { job, resume });
        self.queue_cv.notify_all();
    }
}

/// A bound-but-not-yet-started daemon.
pub struct Daemon {
    inner: Arc<Inner>,
    listener: TcpListener,
    addr: SocketAddr,
}

impl Daemon {
    /// Opens the state directory and binds `addr` (use port 0 to let the
    /// OS pick).
    ///
    /// # Errors
    ///
    /// A message describing the state-dir or bind failure.
    pub fn bind(addr: &str, cfg: &ServeConfig) -> Result<Daemon, String> {
        let registry = Registry::open(&cfg.state_dir)?;
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve bound address: {e}"))?;
        Ok(Daemon {
            inner: Arc::new(Inner {
                registry,
                pool: Arc::new(WorkerPool::new(cfg.workers)),
                sync_every: cfg.sync_every.max(1),
                shutdown: AtomicBool::new(false),
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
                runners: Mutex::new(Vec::new()),
            }),
            listener,
            addr: local,
        })
    }

    /// The bound address (resolved port when 0 was requested).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Spawns the accept and scheduler threads.
    #[must_use]
    pub fn start(self) -> DaemonHandle {
        let inner = Arc::clone(&self.inner);
        let listener = self.listener;
        let accept = std::thread::spawn(move || accept_loop(&listener, &inner));
        let inner = Arc::clone(&self.inner);
        let sched = std::thread::spawn(move || scheduler_loop(&inner));
        DaemonHandle {
            inner: self.inner,
            addr: self.addr,
            accept: Some(accept),
            sched: Some(sched),
        }
    }
}

/// A running daemon; shut down explicitly or by dropping.
pub struct DaemonHandle {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    sched: Option<std::thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether shutdown has been requested (e.g. via `POST /shutdown`).
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutdown.load(Ordering::Relaxed)
    }

    /// Stops accepting, interrupts running jobs at their next task
    /// boundary, joins every runner (journals flushed, statuses settled),
    /// closes all event streams, and joins the service threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        for job in self.inner.registry.list() {
            job.stop.store(true, Ordering::Relaxed);
        }
        self.inner.queue_cv.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.sched.take() {
            let _ = t.join();
        }
        let runners = std::mem::take(
            &mut *self
                .inner
                .runners
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for t in runners {
            let _ = t.join();
        }
        // Jobs that never ran (still queued) need their streams ended too.
        for job in self.inner.registry.list() {
            if job.status() == JobStatus::Queued {
                job.set_status(JobStatus::Interrupted);
            }
            job.events.close();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        let conn = listener.accept();
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let Ok((stream, _peer)) = conn else { continue };
        let inner = Arc::clone(inner);
        // Connection threads are detached: each ends once its (possibly
        // streaming) response completes, and shutdown closes every event
        // log, which unblocks any streaming reader.
        std::thread::spawn(move || handle_connection(stream, &inner));
    }
}

fn scheduler_loop(inner: &Arc<Inner>) {
    loop {
        let (entry, waiting) = {
            let mut queue = inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(entry) = queue.pop_front() {
                    break (entry, queue.len());
                }
                let (guard, _timeout) = inner
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        let QueueEntry { job, resume } = entry;
        if job.stop.load(Ordering::Relaxed) {
            // Cancelled while queued: settle without running.
            job.set_status(JobStatus::Interrupted);
            job.events.push(event_interrupted(0, job.spec.tasks()));
            job.events.close();
            continue;
        }
        let total = inner.pool.total();
        let desired = match job.spec.config().workers {
            0 => total,
            n => n.min(total),
        };
        let fair = (total / (waiting + 1)).max(1);
        let want = desired.min(fair);
        let Some(grant) = inner.pool.acquire_owned(want, &inner.shutdown) else {
            // Shutdown raced the acquire; leave the job queued on disk.
            return;
        };
        let runner_inner = Arc::clone(inner);
        let runner = std::thread::spawn(move || {
            let workers = grant.workers();
            run_one(&runner_inner, &job, resume, workers);
            drop(grant);
        });
        inner
            .runners
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(runner);
    }
}

/// Executes one admitted job on the current thread and settles its
/// status, events, report file and attempt accounting.
fn run_one(inner: &Arc<Inner>, job: &Arc<JobState>, resume: bool, workers: usize) {
    job.events.reopen();
    job.set_status(JobStatus::Running);
    job.events.push(event_started(resume, workers));
    let observer = Arc::new(JobObserver::new(Arc::clone(job)));
    let mut ctl = RunControl::default().observing(Arc::clone(&observer) as Arc<dyn RunObserver>);
    ctl.stop = Some(Arc::clone(&job.stop));
    let journal = inner.registry.journal_path(&job.id);
    let started = Instant::now();
    // The drivers are panic-free on validated specs, but a daemon must
    // not lose its scheduler to a bug in a driver: contain any panic and
    // convert it to a failed job.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_job(job, workers, &ctl, &journal, resume, inner.sync_every)
    }))
    .unwrap_or_else(|panic| {
        let detail = panic
            .downcast_ref::<&str>()
            .map(ToString::to_string)
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic".to_string());
        JobOutcome::Failed(format!("driver panicked: {detail}"))
    });
    match outcome {
        JobOutcome::Done { report, meta } => match persist_report(inner, &job.id, &report) {
            Ok(()) => {
                job.add_attempt(meta);
                job.set_status(JobStatus::Done);
                job.events.push(event_done());
            }
            Err(e) => {
                job.set_status(JobStatus::Failed(e.clone()));
                job.events.push(event_failed(&e));
            }
        },
        JobOutcome::Interrupted { completed, tasks } => {
            // Synthesize this attempt's accounting: the driver returned an
            // error, so there is no report-borne RunMeta for it.
            let elapsed = started.elapsed().as_secs_f64();
            job.add_attempt(RunMeta {
                tasks: completed,
                workers,
                elapsed_secs: elapsed,
                tasks_per_sec: if elapsed > 0.0 {
                    completed as f64 / elapsed
                } else {
                    0.0
                },
                seed: job.spec.config().seed,
                resumed_from: None,
                delta_hits: 0,
                delta_fallbacks: 0,
                truncated_tail: false,
            });
            job.set_status(JobStatus::Interrupted);
            job.events.push(event_interrupted(completed, tasks));
        }
        JobOutcome::Failed(msg) => {
            job.set_status(JobStatus::Failed(msg.clone()));
            job.events.push(event_failed(&msg));
        }
    }
    job.events.close();
}

/// Writes the report file atomically (tmp + rename), so a restart never
/// mistakes a half-written report for a completed job.
fn persist_report(inner: &Arc<Inner>, id: &str, report: &Value) -> Result<(), String> {
    let text =
        serde_json::to_string(report).map_err(|e| format!("cannot serialize report: {e}"))?;
    let path = inner.registry.report_path(id);
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, text).map_err(|e| format!("cannot write report: {e}"))?;
    std::fs::rename(&tmp, &path).map_err(|e| format!("cannot install report: {e}"))?;
    Ok(())
}

fn handle_connection(mut stream: TcpStream, inner: &Arc<Inner>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    // Keep-alive: serve requests off this connection until the client
    // asks to close (or hangs up, idles out, or a response fails).
    loop {
        let req = match read_request(&mut stream) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(e) => {
                let _ = respond_error(&mut stream, 400, &e.0, true);
                return;
            }
        };
        if route(&mut stream, &req, inner) || inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
    }
}

/// Dispatches one request; returns whether the connection must close
/// afterwards (client asked, the response streamed, or a write failed).
fn route(stream: &mut TcpStream, req: &Request, inner: &Arc<Inner>) -> bool {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    // Event streams end by closing the connection (their framing says so
    // in the response head), so they always finish the exchange.
    let streaming = matches!(
        (req.method.as_str(), segments.as_slice()),
        ("GET", ["jobs", _, "events"])
    );
    let close = req.close || streaming;
    let result = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => respond_json(stream, 200, r#"{"ok":true}"#, close),
        ("POST", ["shutdown"]) => {
            inner.shutdown.store(true, Ordering::Relaxed);
            for job in inner.registry.list() {
                job.stop.store(true, Ordering::Relaxed);
            }
            inner.queue_cv.notify_all();
            respond_json(stream, 202, r#"{"ok":true,"shutting_down":true}"#, close)
        }
        ("POST", ["jobs"]) => submit(stream, &req.body, inner, close),
        ("GET", ["jobs"]) => {
            let items: Vec<Value> = inner.registry.list().iter().map(|j| j.summary()).collect();
            let body =
                serde_json::to_string(&Value::Array(items)).unwrap_or_else(|_| "[]".to_string());
            respond_json(stream, 200, &body, close)
        }
        ("GET", ["jobs", id]) => match inner.registry.get(id) {
            Some(job) => {
                let mut summary = job.summary();
                if let Value::Object(entries) = &mut summary {
                    entries.push((
                        "resumable".to_string(),
                        Value::Bool(inner.registry.journal_path(id).exists()),
                    ));
                }
                let body = serde_json::to_string(&summary).unwrap_or_else(|_| "{}".to_string());
                respond_json(stream, 200, &body, close)
            }
            None => respond_error(stream, 404, "no such job", close),
        },
        ("POST", ["jobs", id, "cancel"]) => match inner.registry.get(id) {
            Some(job) => {
                job.stop.store(true, Ordering::Relaxed);
                respond_json(stream, 202, r#"{"ok":true}"#, close)
            }
            None => respond_error(stream, 404, "no such job", close),
        },
        ("POST", ["jobs", id, "resume"]) => match inner.registry.get(id) {
            Some(job) => {
                let status = job.status();
                if status.is_restartable() {
                    job.stop.store(false, Ordering::Relaxed);
                    job.set_status(JobStatus::Queued);
                    job.events.reopen();
                    let resume = inner.registry.journal_path(id).exists();
                    inner.enqueue(Arc::clone(&job), resume);
                    let body = format!(r#"{{"ok":true,"resumed_from_journal":{resume}}}"#);
                    respond_json(stream, 202, &body, close)
                } else {
                    respond_error(
                        stream,
                        409,
                        &format!("job is {}, not resumable", status.as_str()),
                        close,
                    )
                }
            }
            None => respond_error(stream, 404, "no such job", close),
        },
        ("GET", ["jobs", id, "report"]) => match inner.registry.get(id) {
            Some(_) => match std::fs::read_to_string(inner.registry.report_path(id)) {
                Ok(body) => respond_json(stream, 200, &body, close),
                Err(_) => respond_error(stream, 404, "no report yet", close),
            },
            None => respond_error(stream, 404, "no such job", close),
        },
        ("GET", ["jobs", id, "journal"]) => match inner.registry.get(id) {
            // The raw journal bytes — how a coordinator collects a shard
            // for `bdlfi-merge`. Read as one buffer so the response is a
            // consistent snapshot even while the job is appending.
            Some(_) => match std::fs::read(inner.registry.journal_path(id)) {
                Ok(bytes) => respond_bytes(stream, 200, "application/x-ndjson", &bytes, close),
                Err(_) => respond_error(stream, 404, "no journal yet", close),
            },
            None => respond_error(stream, 404, "no such job", close),
        },
        ("GET", ["jobs", id, "events"]) => match inner.registry.get(id) {
            Some(job) => stream_events(stream, &job),
            None => respond_error(stream, 404, "no such job", close),
        },
        _ => respond_error(stream, 404, "no such endpoint", close),
    };
    close || result.is_err()
}

fn submit(
    stream: &mut TcpStream,
    body: &[u8],
    inner: &Arc<Inner>,
    close: bool,
) -> std::io::Result<()> {
    let Ok(text) = std::str::from_utf8(body) else {
        return respond_error(stream, 400, "body is not valid UTF-8", close);
    };
    let value: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => {
            return respond_error(stream, 400, &format!("body is not valid JSON: {e}"), close)
        }
    };
    let spec = match JobSpec::from_json_value(&value) {
        Ok(s) => s,
        Err(e) => return respond_error(stream, 400, &format!("bad job spec: {e}"), close),
    };
    match inner.registry.submit(spec) {
        Ok(job) => {
            inner.enqueue(Arc::clone(&job), false);
            let body = serde_json::to_string(&job.summary()).unwrap_or_else(|_| "{}".to_string());
            respond_json(stream, 202, &body, close)
        }
        Err((client_fault, msg)) => {
            respond_error(stream, if client_fault { 400 } else { 500 }, &msg, close)
        }
    }
}

/// Streams a job's event log as chunked NDJSON: full history first (so a
/// reattached client sees replayed results too), then live lines until
/// the log closes at a terminal status.
fn stream_events(stream: &mut TcpStream, job: &Arc<JobState>) -> std::io::Result<()> {
    let mut w = ChunkedWriter::begin(stream)?;
    let mut from = 0usize;
    loop {
        let (lines, closed) = job.events.wait_from(from);
        let drained = lines.is_empty();
        for line in lines {
            from += 1;
            w.send_line(&line)?;
        }
        if closed && drained {
            return w.finish();
        }
    }
}
