//! # bdlfi-serve
//!
//! A long-running campaign service over the BDLFI evaluation engine:
//! submit fault-injection studies (campaigns, sweeps, layerwise scans —
//! f32 or int8) as JSON over a hand-rolled HTTP/1.1 API, watch per-task
//! results and live mixing diagnostics (split-R̂, ESS, MCSE,
//! certification) stream back over chunked NDJSON, and let the daemon
//! schedule many concurrent jobs fairly over one shared worker pool.
//!
//! Every job is crash-safe: the submitted spec is persisted, results are
//! journaled through the engine's checkpoint layer, and a restarted
//! daemon resumes interrupted jobs from their journals — bit-identical to
//! a run that was never interrupted, including after a kill that tore the
//! journal's final line mid-append.
//!
//! No external dependencies: TCP from `std`, JSON from the workspace's
//! vendored `serde`, evaluation from [`bdlfi`].
//!
//! ## Endpoints
//!
//! | Method | Path | Purpose |
//! |---|---|---|
//! | `GET` | `/healthz` | liveness probe |
//! | `POST` | `/jobs` | submit a [`spec::JobSpec`], returns the job summary |
//! | `GET` | `/jobs` | list all jobs |
//! | `GET` | `/jobs/{id}` | one job's status + pooled accounting |
//! | `GET` | `/jobs/{id}/events` | chunked NDJSON stream of results + diagnostics |
//! | `GET` | `/jobs/{id}/report` | the final driver report |
//! | `GET` | `/jobs/{id}/journal` | the raw journal bytes (shard collection for `bdlfi-merge`) |
//! | `POST` | `/jobs/{id}/cancel` | interrupt at the next task boundary |
//! | `POST` | `/jobs/{id}/resume` | re-enqueue an interrupted/failed job |
//! | `POST` | `/shutdown` | stop the daemon (jobs stay resumable) |
//!
//! Connections are persistent (HTTP/1.1 keep-alive) except for event
//! streams, which close when the stream ends. A job spec may carry a
//! `shard` member (`{"index": i, "count": n}`) to run one contiguous
//! shard of the campaign's task space; the per-job journals of all `n`
//! shards are then collected and stitched into the whole-campaign
//! journal (and report) by the `bdlfi-merge` binary.

#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod http;
pub mod jobs;
pub mod pool;
pub mod spec;

pub use daemon::{Daemon, DaemonHandle, ServeConfig};
pub use jobs::{run_driver, JobOutcome, JobStatus, Registry};
pub use spec::{job_fingerprint, JobSpec, ShardSpec};
