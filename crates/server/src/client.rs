//! A minimal blocking HTTP/1.1 client for the job API — enough for the
//! smoke scenario and integration tests to submit jobs, poll status, and
//! drain event streams without external dependencies.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A completed exchange: status code and decoded body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The body, chunked transfer decoded.
    pub body: String,
}

/// Sends one request and reads the response to end-of-stream (the daemon
/// closes every connection after one exchange). Streaming endpoints
/// therefore block until the stream is terminal — useful in tests that
/// want the full event history.
///
/// # Errors
///
/// A message describing the connect, write, read, or parse failure.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<Response, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("cannot set timeout: {e}"))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| format!("write failed: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read failed: {e}"))?;
    parse_response(&raw)
}

/// Opens a streaming `GET` on `path` and blocks until `pattern` has
/// appeared at least `count` times in the raw stream, then drops the
/// connection. This is the synchronization primitive for "the job has
/// made real progress" — e.g. wait for the first `"event":"result"`
/// before interrupting a daemon mid-flight.
///
/// Matching is on the raw chunked stream; each event line is written as
/// one chunk, so a pattern that fits on one NDJSON line is never split
/// across chunk frames.
///
/// # Errors
///
/// A message when the connection fails or the stream ends (or `timeout`
/// elapses) before `count` occurrences arrive.
pub fn await_in_stream(
    addr: &str,
    path: &str,
    pattern: &str,
    count: usize,
    timeout: Duration,
) -> Result<(), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .map_err(|e| format!("cannot set timeout: {e}"))?;
    let head = format!(
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    );
    stream
        .write_all(head.as_bytes())
        .map_err(|e| format!("write failed: {e}"))?;
    let deadline = std::time::Instant::now() + timeout;
    let mut seen = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                seen.extend_from_slice(&buf[..n]);
                if occurrences(&seen, pattern.as_bytes()) >= count {
                    return Ok(());
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(format!("stream read failed: {e}")),
        }
        if std::time::Instant::now() >= deadline {
            return Err(format!(
                "timed out waiting for {count}x {pattern:?} in {path}"
            ));
        }
    }
    if occurrences(&seen, pattern.as_bytes()) >= count {
        Ok(())
    } else {
        Err(format!(
            "stream ended before {count}x {pattern:?} in {path}"
        ))
    }
}

fn occurrences(haystack: &[u8], needle: &[u8]) -> usize {
    if needle.is_empty() || haystack.len() < needle.len() {
        return 0;
    }
    haystack
        .windows(needle.len())
        .filter(|w| w == &needle)
        .count()
}

fn parse_response(raw: &[u8]) -> Result<Response, String> {
    let split = find_blank_line(raw).ok_or("response has no header/body separator")?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| "response head is not UTF-8")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty response")?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line: {status_line}"))?;
    let chunked = lines.any(|l| {
        l.to_ascii_lowercase().starts_with("transfer-encoding:")
            && l.to_ascii_lowercase().contains("chunked")
    });
    let body_bytes = &raw[split + 4..];
    let body = if chunked {
        decode_chunked(body_bytes)?
    } else {
        body_bytes.to_vec()
    };
    Ok(Response {
        status,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

fn find_blank_line(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

fn decode_chunked(mut raw: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    loop {
        let line_end = raw
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or("truncated chunk size line")?;
        let size_text =
            std::str::from_utf8(&raw[..line_end]).map_err(|_| "chunk size is not UTF-8")?;
        let size = usize::from_str_radix(size_text.trim(), 16)
            .map_err(|_| format!("bad chunk size: {size_text}"))?;
        raw = &raw[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if raw.len() < size + 2 {
            return Err("truncated chunk body".to_string());
        }
        out.extend_from_slice(&raw[..size]);
        raw = &raw[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_bodies_decode() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "hello world");
    }

    #[test]
    fn plain_bodies_pass_through() {
        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\n{}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(resp.body, "{}");
    }
}
