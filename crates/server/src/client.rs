//! A minimal blocking HTTP/1.1 client for the job API — enough for the
//! smoke scenario and integration tests to submit jobs, poll status, and
//! drain event streams without external dependencies.
//!
//! Two entry points: the free [`request`] function does one exchange on a
//! fresh connection (`Connection: close`), and [`Client`] keeps one
//! connection alive across requests — the fast path for shard
//! coordination, which polls many small endpoints in a tight loop.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A completed exchange: status code and decoded body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The body, chunked transfer decoded.
    pub body: String,
}

/// A keep-alive client: holds one connection open and frames each
/// response by its `Content-Length` (or chunked framing) instead of
/// reading to end-of-stream, so the connection survives the exchange.
///
/// A dead kept-alive connection (daemon restarted, idle timeout fired) is
/// repaired transparently: the request is retried once on a fresh
/// connection before an error is reported. When a response announces
/// `Connection: close` the cached connection is dropped and the next
/// request dials again.
#[derive(Debug)]
pub struct Client {
    addr: String,
    timeout: Duration,
    conn: Option<TcpStream>,
}

impl Client {
    /// A client for the daemon at `addr` with a per-read timeout.
    #[must_use]
    pub fn new(addr: &str, timeout: Duration) -> Client {
        Client {
            addr: addr.to_string(),
            timeout,
            conn: None,
        }
    }

    /// Sends one request on the kept-alive connection and reads exactly
    /// one framed response.
    ///
    /// # Errors
    ///
    /// A message describing the connect, write, read, or parse failure
    /// (after the one transparent retry on a fresh connection).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, String> {
        let reused = self.conn.is_some();
        match self.try_request(method, path, body) {
            Ok(resp) => Ok(resp),
            Err(_) if reused => {
                // The cached connection may have died between requests;
                // retry exactly once on a fresh one.
                self.conn = None;
                self.try_request(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, String> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)
                .map_err(|e| format!("cannot connect to {}: {e}", self.addr))?;
            stream
                .set_read_timeout(Some(self.timeout))
                .map_err(|e| format!("cannot set timeout: {e}"))?;
            self.conn = Some(stream);
        }
        let Some(stream) = self.conn.as_mut() else {
            return Err("no connection".to_string());
        };
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\r\n",
            self.addr,
            body.len()
        );
        let sent = stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body.as_bytes()))
            .map_err(|e| format!("write failed: {e}"));
        let result = sent.and_then(|()| read_framed(stream));
        match result {
            Ok((resp, close)) => {
                if close {
                    self.conn = None;
                }
                Ok(resp)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }
}

/// Reads exactly one response off a kept-alive stream: head until the
/// blank line, then `Content-Length` bytes (or chunks until the zero
/// chunk). Returns the response and whether the server announced
/// `Connection: close`.
fn read_framed(stream: &mut TcpStream) -> Result<(Response, bool), String> {
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    let split = loop {
        if let Some(p) = find_blank_line(&raw) {
            break p;
        }
        let n = stream
            .read(&mut buf)
            .map_err(|e| format!("read failed: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-response".to_string());
        }
        raw.extend_from_slice(&buf[..n]);
    };
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| "response head is not UTF-8")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty response")?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line: {status_line}"))?;
    let mut content_length = 0usize;
    let mut chunked = false;
    let mut close = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("bad content-length: {value}"))?;
        }
        if name.eq_ignore_ascii_case("transfer-encoding")
            && value.trim().eq_ignore_ascii_case("chunked")
        {
            chunked = true;
        }
        if name.eq_ignore_ascii_case("connection") && value.trim().eq_ignore_ascii_case("close") {
            close = true;
        }
    }
    let body_start = split + 4;
    let body = if chunked {
        loop {
            match decode_chunked(&raw[body_start..]) {
                Ok(body) => break body,
                Err(e) if e.starts_with("truncated") => {
                    let n = stream
                        .read(&mut buf)
                        .map_err(|e| format!("read failed: {e}"))?;
                    if n == 0 {
                        return Err("connection closed mid-chunk".to_string());
                    }
                    raw.extend_from_slice(&buf[..n]);
                }
                Err(e) => return Err(e),
            }
        }
    } else {
        while raw.len() < body_start + content_length {
            let n = stream
                .read(&mut buf)
                .map_err(|e| format!("read failed: {e}"))?;
            if n == 0 {
                return Err("connection closed mid-body".to_string());
            }
            raw.extend_from_slice(&buf[..n]);
        }
        raw[body_start..body_start + content_length].to_vec()
    };
    Ok((
        Response {
            status,
            body: String::from_utf8_lossy(&body).into_owned(),
        },
        close,
    ))
}

/// Sends one request with `Connection: close` and reads the response to
/// end-of-stream. Streaming endpoints therefore block until the stream
/// is terminal — useful in tests that want the full event history.
///
/// # Errors
///
/// A message describing the connect, write, read, or parse failure.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<Response, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("cannot set timeout: {e}"))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| format!("write failed: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read failed: {e}"))?;
    parse_response(&raw)
}

/// Opens a streaming `GET` on `path` and blocks until `pattern` has
/// appeared at least `count` times in the raw stream, then drops the
/// connection. This is the synchronization primitive for "the job has
/// made real progress" — e.g. wait for the first `"event":"result"`
/// before interrupting a daemon mid-flight.
///
/// Matching is on the raw chunked stream; each event line is written as
/// one chunk, so a pattern that fits on one NDJSON line is never split
/// across chunk frames.
///
/// # Errors
///
/// A message when the connection fails or the stream ends (or `timeout`
/// elapses) before `count` occurrences arrive.
pub fn await_in_stream(
    addr: &str,
    path: &str,
    pattern: &str,
    count: usize,
    timeout: Duration,
) -> Result<(), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .map_err(|e| format!("cannot set timeout: {e}"))?;
    let head = format!(
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    );
    stream
        .write_all(head.as_bytes())
        .map_err(|e| format!("write failed: {e}"))?;
    let deadline = std::time::Instant::now() + timeout;
    let mut seen = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                seen.extend_from_slice(&buf[..n]);
                if occurrences(&seen, pattern.as_bytes()) >= count {
                    return Ok(());
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(format!("stream read failed: {e}")),
        }
        if std::time::Instant::now() >= deadline {
            return Err(format!(
                "timed out waiting for {count}x {pattern:?} in {path}"
            ));
        }
    }
    if occurrences(&seen, pattern.as_bytes()) >= count {
        Ok(())
    } else {
        Err(format!(
            "stream ended before {count}x {pattern:?} in {path}"
        ))
    }
}

fn occurrences(haystack: &[u8], needle: &[u8]) -> usize {
    if needle.is_empty() || haystack.len() < needle.len() {
        return 0;
    }
    haystack
        .windows(needle.len())
        .filter(|w| w == &needle)
        .count()
}

fn parse_response(raw: &[u8]) -> Result<Response, String> {
    let split = find_blank_line(raw).ok_or("response has no header/body separator")?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| "response head is not UTF-8")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty response")?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line: {status_line}"))?;
    let chunked = lines.any(|l| {
        l.to_ascii_lowercase().starts_with("transfer-encoding:")
            && l.to_ascii_lowercase().contains("chunked")
    });
    let body_bytes = &raw[split + 4..];
    let body = if chunked {
        decode_chunked(body_bytes)?
    } else {
        body_bytes.to_vec()
    };
    Ok(Response {
        status,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

fn find_blank_line(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

fn decode_chunked(mut raw: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    loop {
        let line_end = raw
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or("truncated chunk size line")?;
        let size_text =
            std::str::from_utf8(&raw[..line_end]).map_err(|_| "chunk size is not UTF-8")?;
        let size = usize::from_str_radix(size_text.trim(), 16)
            .map_err(|_| format!("bad chunk size: {size_text}"))?;
        raw = &raw[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if raw.len() < size + 2 {
            return Err("truncated chunk body".to_string());
        }
        out.extend_from_slice(&raw[..size]);
        raw = &raw[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_bodies_decode() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "hello world");
    }

    #[test]
    fn plain_bodies_pass_through() {
        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\n{}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(resp.body, "{}");
    }

    /// Reads one request head off `stream` (our client sends empty
    /// bodies in these tests) and returns false on EOF.
    fn read_head(stream: &mut TcpStream) -> bool {
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            match stream.read(&mut byte) {
                Ok(0) | Err(_) => return false,
                Ok(_) => head.push(byte[0]),
            }
        }
        true
    }

    #[test]
    fn client_reuses_one_connection() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut served = 0usize;
            while read_head(&mut stream) {
                stream
                    .write_all(
                        b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nok",
                    )
                    .unwrap();
                served += 1;
                if served == 2 {
                    break;
                }
            }
            served
        });
        let mut client = Client::new(&addr, Duration::from_secs(5));
        assert_eq!(client.request("GET", "/a", None).unwrap().body, "ok");
        assert_eq!(client.request("GET", "/b", None).unwrap().body, "ok");
        // Both exchanges were served off the single accepted connection.
        assert_eq!(server.join().unwrap(), 2);
    }

    #[test]
    fn client_redials_after_server_close() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let mut connections = 0usize;
            for _ in 0..2 {
                let (mut stream, _) = listener.accept().unwrap();
                connections += 1;
                assert!(read_head(&mut stream));
                stream
                    .write_all(
                        b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok",
                    )
                    .unwrap();
            }
            connections
        });
        let mut client = Client::new(&addr, Duration::from_secs(5));
        assert_eq!(client.request("GET", "/a", None).unwrap().status, 200);
        // The server closed; the client must dial a fresh connection.
        assert_eq!(client.request("GET", "/b", None).unwrap().status, 200);
        assert_eq!(server.join().unwrap(), 2);
    }
}
