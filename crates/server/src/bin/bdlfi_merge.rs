//! The `bdlfi-merge` binary: stitch the shard journals of one sharded
//! campaign back into a whole-campaign journal, verify the result
//! strictly, and (optionally) finalize it into the driver's report.
//!
//! The merge itself never re-evaluates anything: shard journals carry
//! global task ids, so the merged journal is the unsharded header plus
//! each shard's entry bytes in index order — byte-for-byte identical to
//! the journal a single-process run would have written. The optional
//! `--report` step replays the merged journal through the normal driver
//! path (zero live tasks) to assemble the report exactly as a resumed
//! single-process run would.

use bdlfi::{CheckpointSpec, RunControl, ShardPlan};
use bdlfi_serve::jobs::{run_driver, JobOutcome};
use bdlfi_serve::{job_fingerprint, JobSpec};
use serde::{Deserialize, Value};
use std::path::PathBuf;

const USAGE: &str =
    "usage: bdlfi-merge --spec SPEC.json --out MERGED.jsonl [options] SHARD.jsonl...

  --spec SPEC.json   the job spec the shards were run from (required)
  --out PATH         where the merged whole-campaign journal goes (required)
  --count N          shard count of the plan (default: number of SHARD args)
  --report PATH      also finalize the merged journal into the driver report
  --workers N        worker-pool size for the finalize replay (default 1)

Shard journals may be listed in any order; each carries its shard index.
Exit status: 0 merged (and finalized), 1 on merge/finalize failure, 2 on usage errors.
";

fn fail(msg: &str) -> ! {
    eprintln!("bdlfi-merge: {msg}");
    std::process::exit(1);
}

#[allow(clippy::too_many_lines)]
fn main() {
    let mut spec_path: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut count: Option<usize> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut workers = 1usize;
    let mut shards: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--spec" => spec_path = Some(PathBuf::from(take("--spec"))),
            "--out" => out = Some(PathBuf::from(take("--out"))),
            "--count" => {
                count = Some(take("--count").parse().unwrap_or_else(|_| {
                    eprintln!("--count needs an integer\n{USAGE}");
                    std::process::exit(2);
                }));
            }
            "--report" => report_path = Some(PathBuf::from(take("--report"))),
            "--workers" => {
                workers = take("--workers").parse().unwrap_or_else(|_| {
                    eprintln!("--workers needs an integer\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                std::process::exit(2);
            }
            path => shards.push(PathBuf::from(path)),
        }
    }
    let Some(spec_path) = spec_path else {
        eprintln!("--spec is required\n{USAGE}");
        std::process::exit(2);
    };
    let Some(out) = out else {
        eprintln!("--out is required\n{USAGE}");
        std::process::exit(2);
    };
    if shards.is_empty() {
        eprintln!("at least one shard journal is required\n{USAGE}");
        std::process::exit(2);
    }

    let text = match std::fs::read_to_string(&spec_path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {}: {e}", spec_path.display())),
    };
    let value: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => fail(&format!("{} is not valid JSON: {e}", spec_path.display())),
    };
    let mut spec = match JobSpec::from_json_value(&value) {
        Ok(s) => s,
        Err(e) => fail(&format!("bad job spec: {e}")),
    };
    // The merge concerns the whole campaign; a spec file that happens to
    // carry one worker's shard assignment must not narrow it.
    spec.shard = None;
    if let Err(e) = spec.validate() {
        fail(&format!("bad job spec: {e}"));
    }

    let base = job_fingerprint(&spec);
    let count = count.unwrap_or(shards.len());
    let plan = match ShardPlan::new(base.clone(), spec.config().seed, spec.tasks(), count) {
        Ok(p) => p,
        Err(e) => fail(&format!("bad shard plan: {e}")),
    };
    let summary = match bdlfi::merge_shards(&plan, &shards, &out) {
        Ok(s) => s,
        Err(e) => fail(&format!("merge failed: {e}")),
    };
    println!(
        "{{\"merged\":\"{}\",\"tasks\":{},\"shards\":{},\"bytes\":{}}}",
        out.display(),
        summary.tasks,
        summary.shards,
        summary.bytes
    );

    let Some(report_path) = report_path else {
        return;
    };
    // Finalize: replay the merged journal through the normal driver path.
    // Every task is already journaled, so nothing is re-evaluated.
    let ckpt = CheckpointSpec::new(out, base).finalizing();
    match run_driver(&spec, workers.max(1), &RunControl::default(), &ckpt) {
        JobOutcome::Done { report, .. } => {
            let text = match serde_json::to_string(&report) {
                Ok(t) => t,
                Err(e) => fail(&format!("cannot serialize report: {e}")),
            };
            let tmp = report_path.with_extension("json.tmp");
            if let Err(e) = std::fs::write(&tmp, text) {
                fail(&format!("cannot write report: {e}"));
            }
            if let Err(e) = std::fs::rename(&tmp, &report_path) {
                fail(&format!("cannot install report: {e}"));
            }
            println!("{{\"report\":\"{}\"}}", report_path.display());
        }
        JobOutcome::Interrupted { completed, tasks } => fail(&format!(
            "finalize was interrupted at {completed}/{tasks} — the merged journal is incomplete"
        )),
        JobOutcome::Failed(msg) => fail(&format!("finalize failed: {msg}")),
    }
}
