//! Job specifications: the JSON surface of the daemon's submit endpoint.
//!
//! A [`JobSpec`] is everything needed to *deterministically reconstruct* a
//! campaign: the synthetic scenario (dataset seed, model architecture and
//! training seed, optional int8 quantization, fault sites and rate) plus
//! the driver to run over it. Determinism is what makes restart recovery
//! work — a restarted daemon rebuilds the identical workload from the
//! persisted spec, recomputes the same journal fingerprint, and resumes
//! the journal as if the process had never died.
//!
//! Everything here is validated *before* any driver runs: the drivers in
//! `bdlfi` assert on malformed inputs (they are library-boundary bugs
//! there), while the daemon must turn a bad request into a `400`, never a
//! dead worker. [`JobSpec::validate`] plus the site resolution checks in
//! [`build_workload`] together guarantee no driver assertion can fire on
//! a request path.

use bdlfi::{CampaignConfig, LayerBudget};
use bdlfi_data::{gaussian_blobs, Dataset};
use bdlfi_faults::SiteSpec;
use bdlfi_nn::optim::Sgd;
use bdlfi_nn::{mlp, Sequential, TrainConfig, Trainer};
use bdlfi_quant::{quantize_model, CalibConfig, QuantModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A malformed or unbuildable job specification. Always a client error
/// (HTTP 400), never a daemon failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid job spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// The synthetic dataset a job evaluates on (Gaussian blobs, the
/// repository's standard 2-D classification scenario).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Total examples generated before the train/eval split.
    pub examples: usize,
    /// Number of classes (= blob centers, = model outputs).
    pub classes: usize,
    /// Blob standard deviation.
    pub spread: f64,
    /// Seed for generation and the split shuffle.
    pub seed: u64,
    /// Fraction of examples in the training split, in (0, 1).
    pub train_frac: f64,
}

/// The MLP a job injects faults into, trained from scratch (seeded, so a
/// restarted daemon reproduces it bit for bit).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// SGD epochs; `0` skips training (fault tolerance of a random net).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f64,
    /// SGD momentum.
    pub momentum: f64,
    /// Seed for weight init and batch shuffling.
    pub seed: u64,
}

/// The full scenario: data + model + representation + fault model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Dataset generation parameters.
    pub dataset: DatasetSpec,
    /// Model architecture and training parameters.
    pub model: ModelSpec,
    /// Run the int8 post-training-quantized deployment of the model
    /// instead of the f32 one.
    pub quantized: bool,
    /// Which memory locations faults strike.
    pub sites: SiteSpec,
    /// Per-bit flip probability of the Bernoulli fault model (campaign
    /// and layerwise drivers; sweeps carry their own grid).
    pub flip_probability: f64,
}

/// Which campaign driver a job runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DriverSpec {
    /// Fixed-budget MCMC campaign ([`bdlfi::run_campaign_controlled`]).
    Campaign {
        /// Chains, schedule, kernel, seed, criteria.
        config: CampaignConfig,
    },
    /// Segmented adaptive campaign that stops when the completeness
    /// criteria certify ([`bdlfi::run_campaign_adaptive_controlled`]).
    AdaptiveCampaign {
        /// Chains, segment schedule, kernel, seed, criteria.
        config: CampaignConfig,
        /// Per-chain sample budget across all segments.
        max_samples_per_chain: usize,
    },
    /// One campaign per flip probability ([`bdlfi::run_sweep_controlled`]).
    Sweep {
        /// The probability grid.
        ps: Vec<f64>,
        /// Per-point campaign configuration.
        config: CampaignConfig,
    },
    /// One campaign per layer ([`bdlfi::run_layerwise_controlled`]).
    Layerwise {
        /// Layer path prefixes, e.g. `["dense0", "dense1"]`.
        layers: Vec<String>,
        /// Per-layer fault budget.
        budget: LayerBudget,
        /// Per-layer campaign configuration.
        config: CampaignConfig,
    },
}

/// One slice of a distributed campaign: run only shard `index` of the
/// driver's task space split `count` ways (see [`bdlfi::shard`]). A
/// coordinator submits the same scenario + driver to `count` daemons with
/// `index` 0..count, collects each job's journal, and merges them with
/// `bdlfi-merge` (or [`bdlfi::merge_shards`]) into the byte-identical
/// single-process journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// This job's shard index, `0..count`.
    pub index: usize,
    /// Total shards the campaign is split into.
    pub count: usize,
}

/// One submittable job: scenario + driver, optionally restricted to one
/// shard of the task space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// What to inject faults into.
    pub scenario: ScenarioSpec,
    /// Which study to run over it.
    pub driver: DriverSpec,
    /// When set, run only this shard of the driver's task space. Absent
    /// (the default, and how every pre-shard spec file deserializes) runs
    /// the whole campaign.
    pub shard: Option<ShardSpec>,
}

/// Resource ceilings: a public daemon must bound what one request can ask
/// for. Generous for real studies, small enough that a single job cannot
/// wedge the pool for hours.
const MAX_EXAMPLES: usize = 100_000;
const MAX_HIDDEN_LAYERS: usize = 16;
const MAX_HIDDEN_WIDTH: usize = 4096;
const MAX_EPOCHS: usize = 1000;
const MAX_CHAINS: usize = 256;
const MAX_SAMPLES: usize = 100_000;
const MAX_SWEEP_POINTS: usize = 256;
const MAX_LAYERS: usize = 256;

impl JobSpec {
    /// The driver's campaign configuration (every driver carries one).
    #[must_use]
    pub fn config(&self) -> &CampaignConfig {
        match &self.driver {
            DriverSpec::Campaign { config }
            | DriverSpec::AdaptiveCampaign { config, .. }
            | DriverSpec::Sweep { config, .. }
            | DriverSpec::Layerwise { config, .. } => config,
        }
    }

    /// Mutable access to the driver's campaign configuration.
    pub fn config_mut(&mut self) -> &mut CampaignConfig {
        match &mut self.driver {
            DriverSpec::Campaign { config }
            | DriverSpec::AdaptiveCampaign { config, .. }
            | DriverSpec::Sweep { config, .. }
            | DriverSpec::Layerwise { config, .. } => config,
        }
    }

    /// The task count the driver's engine run will cover (chains, sweep
    /// points, layers; segment budget for adaptive campaigns).
    #[must_use]
    pub fn tasks(&self) -> usize {
        match &self.driver {
            DriverSpec::Campaign { config } => config.chains,
            DriverSpec::AdaptiveCampaign {
                config,
                max_samples_per_chain,
            } => max_samples_per_chain.div_ceil(config.chain.samples.max(1)),
            DriverSpec::Sweep { ps, .. } => ps.len(),
            DriverSpec::Layerwise { layers, .. } => layers.len(),
        }
    }

    /// Checks every range and structural invariant the drivers assert on,
    /// so nothing past this point can panic on malformed input.
    ///
    /// # Errors
    ///
    /// [`SpecError`] naming the first violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        let err = |msg: String| Err(SpecError(msg));
        let s = &self.scenario;
        if s.dataset.examples < 8 || s.dataset.examples > MAX_EXAMPLES {
            return err(format!(
                "dataset.examples must be in 8..={MAX_EXAMPLES}, got {}",
                s.dataset.examples
            ));
        }
        if s.dataset.classes < 2 || s.dataset.classes > 64 {
            return err(format!(
                "dataset.classes must be in 2..=64, got {}",
                s.dataset.classes
            ));
        }
        if !(s.dataset.spread > 0.0 && s.dataset.spread.is_finite()) {
            return err(format!(
                "dataset.spread must be positive and finite, got {}",
                s.dataset.spread
            ));
        }
        if !(s.dataset.train_frac > 0.0 && s.dataset.train_frac < 1.0) {
            return err(format!(
                "dataset.train_frac must be in (0, 1), got {}",
                s.dataset.train_frac
            ));
        }
        if s.model.hidden.len() > MAX_HIDDEN_LAYERS {
            return err(format!(
                "model.hidden has {} layers, max {MAX_HIDDEN_LAYERS}",
                s.model.hidden.len()
            ));
        }
        if s.model
            .hidden
            .iter()
            .any(|&w| w == 0 || w > MAX_HIDDEN_WIDTH)
        {
            return err(format!(
                "model.hidden widths must be in 1..={MAX_HIDDEN_WIDTH}"
            ));
        }
        if s.model.epochs > MAX_EPOCHS {
            return err(format!("model.epochs must be <= {MAX_EPOCHS}"));
        }
        if s.model.epochs > 0 && s.model.batch_size == 0 {
            return err("model.batch_size must be positive when training".to_string());
        }
        if !(s.model.lr.is_finite() && s.model.lr > 0.0) {
            return err(format!("model.lr must be positive, got {}", s.model.lr));
        }
        if !(s.model.momentum.is_finite() && (0.0..1.0).contains(&s.model.momentum)) {
            return err(format!(
                "model.momentum must be in [0, 1), got {}",
                s.model.momentum
            ));
        }
        if !(0.0..=1.0).contains(&s.flip_probability) || !s.flip_probability.is_finite() {
            return err(format!(
                "flip_probability must be in [0, 1], got {}",
                s.flip_probability
            ));
        }
        if s.quantized && matches!(s.sites, SiteSpec::Activations(_) | SiteSpec::Input) {
            return err(
                "quantized scenarios support parameter sites only (activations/input are \
                 transient f32 sites)"
                    .to_string(),
            );
        }

        let cfg = self.config();
        if cfg.chains == 0 || cfg.chains > MAX_CHAINS {
            return err(format!(
                "config.chains must be in 1..={MAX_CHAINS}, got {}",
                cfg.chains
            ));
        }
        if cfg.chain.samples == 0 || cfg.chain.samples > MAX_SAMPLES {
            return err(format!(
                "config.chain.samples must be in 1..={MAX_SAMPLES}, got {}",
                cfg.chain.samples
            ));
        }
        if cfg.chain.burn_in > MAX_SAMPLES {
            return err(format!("config.chain.burn_in must be <= {MAX_SAMPLES}"));
        }
        if cfg.chain.thin == 0 {
            return err("config.chain.thin must be positive".to_string());
        }
        match &self.driver {
            DriverSpec::Campaign { .. } => {}
            DriverSpec::AdaptiveCampaign {
                config,
                max_samples_per_chain,
            } => {
                if *max_samples_per_chain < config.chain.samples {
                    return err(format!(
                        "max_samples_per_chain ({max_samples_per_chain}) must be at least one \
                         segment ({})",
                        config.chain.samples
                    ));
                }
                if *max_samples_per_chain > MAX_SAMPLES {
                    return err(format!("max_samples_per_chain must be <= {MAX_SAMPLES}"));
                }
            }
            DriverSpec::Sweep { ps, .. } => {
                if ps.is_empty() || ps.len() > MAX_SWEEP_POINTS {
                    return err(format!(
                        "sweep needs 1..={MAX_SWEEP_POINTS} probabilities, got {}",
                        ps.len()
                    ));
                }
                if ps
                    .iter()
                    .any(|p| !(0.0..=1.0).contains(p) || !p.is_finite())
                {
                    return err("sweep probabilities must be in [0, 1]".to_string());
                }
            }
            DriverSpec::Layerwise { layers, budget, .. } => {
                if layers.is_empty() || layers.len() > MAX_LAYERS {
                    return err(format!(
                        "layerwise needs 1..={MAX_LAYERS} layers, got {}",
                        layers.len()
                    ));
                }
                match budget {
                    LayerBudget::PerBit(p) => {
                        if !(0.0..=1.0).contains(p) || !p.is_finite() {
                            return err(format!(
                                "budget.PerBit probability must be in [0, 1], got {p}"
                            ));
                        }
                    }
                    LayerBudget::ExpectedFlips(k) => {
                        if !(k.is_finite() && *k >= 0.0) {
                            return err(format!(
                                "budget.ExpectedFlips must be non-negative, got {k}"
                            ));
                        }
                    }
                }
            }
        }
        if let Some(shard) = self.shard {
            if matches!(self.driver, DriverSpec::AdaptiveCampaign { .. }) {
                return err(
                    "adaptive campaigns cannot be sharded (their task space is open-ended)"
                        .to_string(),
                );
            }
            if shard.count == 0 {
                return err("shard.count must be positive".to_string());
            }
            if shard.index >= shard.count {
                return err(format!(
                    "shard.index must be below shard.count, got {}/{}",
                    shard.index, shard.count
                ));
            }
            if shard.count > self.tasks() {
                return err(format!(
                    "shard.count ({}) exceeds the driver's task count ({})",
                    shard.count,
                    self.tasks()
                ));
            }
        }
        Ok(())
    }
}

/// A deterministically (re)built scenario, ready for any driver.
pub struct Workload {
    /// The trained f32 model.
    pub model: Sequential,
    /// The held-out evaluation split.
    pub eval: Arc<Dataset>,
    /// The int8 deployment, when the scenario asked for it.
    pub quant: Option<QuantModel>,
}

/// Builds the scenario from its spec: generate, split, train, optionally
/// quantize — every step seeded, so two builds of the same spec (in the
/// same or a restarted daemon) are bit-identical, and journal fingerprints
/// computed over the spec remain valid across restarts.
///
/// # Errors
///
/// [`SpecError`] when the fault sites resolve to nothing on the built
/// model (the one constraint that needs the concrete model to check).
pub fn build_workload(s: &ScenarioSpec) -> Result<Workload, SpecError> {
    let mut data_rng = StdRng::seed_from_u64(s.dataset.seed);
    let data = gaussian_blobs(
        s.dataset.examples,
        s.dataset.classes,
        s.dataset.spread as f32,
        &mut data_rng,
    );
    let (train, eval) = data.split(s.dataset.train_frac, &mut data_rng);
    if eval.is_empty() {
        return Err(SpecError(
            "train_frac leaves an empty evaluation split".to_string(),
        ));
    }

    let mut model_rng = StdRng::seed_from_u64(s.model.seed);
    let mut model = mlp(2, &s.model.hidden, s.dataset.classes, &mut model_rng);
    if s.model.epochs > 0 {
        let mut trainer = Trainer::new(
            Sgd::new(s.model.lr as f32).with_momentum(s.model.momentum as f32),
            TrainConfig {
                epochs: s.model.epochs,
                batch_size: s.model.batch_size,
                ..TrainConfig::default()
            },
        );
        trainer.fit(&mut model, train.inputs(), train.labels(), &mut model_rng);
    }

    let quant = if s.quantized {
        let qm = quantize_model(&model, train.inputs(), &CalibConfig::default());
        let paths: Vec<String> = qm.sites().params.into_iter().map(|p| p.path).collect();
        check_sites(&paths, &[], &s.sites)?;
        Some(qm)
    } else {
        check_sites(&model.param_paths(), &model.layer_names(), &s.sites)?;
        None
    };

    Ok(Workload {
        model,
        eval: Arc::new(eval),
        quant,
    })
}

/// Verifies — by pure path matching, without touching the panicking site
/// resolvers — that a [`SiteSpec`] selects at least one existing site.
/// This is what keeps `resolve_sites`/`sites_matching`'s "unknown name"
/// assertions off the daemon's request paths.
fn check_sites(
    param_paths: &[String],
    layer_names: &[String],
    spec: &SiteSpec,
) -> Result<(), SpecError> {
    let prefix_matches = |prefix: &str| {
        param_paths
            .iter()
            .any(|p| p == prefix || p.starts_with(&format!("{prefix}.")))
    };
    match spec {
        SiteSpec::AllParams => {
            if param_paths.is_empty() {
                return Err(SpecError("model has no parameters to inject".to_string()));
            }
        }
        SiteSpec::LayerParams { prefix } => {
            if !prefix_matches(prefix) {
                return Err(SpecError(format!(
                    "layer prefix `{prefix}` matches no parameters"
                )));
            }
        }
        SiteSpec::Params(paths) => {
            if paths.is_empty() {
                return Err(SpecError("sites.Params is empty".to_string()));
            }
            for want in paths {
                if !param_paths.iter().any(|p| p == want) {
                    return Err(SpecError(format!("unknown parameter path `{want}`")));
                }
            }
        }
        SiteSpec::Activations(layers) => {
            if layers.is_empty() {
                return Err(SpecError("sites.Activations is empty".to_string()));
            }
            for want in layers {
                if !layer_names.iter().any(|l| l == want) {
                    return Err(SpecError(format!("unknown activation layer `{want}`")));
                }
            }
        }
        SiteSpec::Input => {}
    }
    Ok(())
}

/// Verifies that every requested layer prefix resolves to at least one
/// site — the layerwise driver's per-layer equivalent of the site check
/// in [`build_workload`].
///
/// # Errors
///
/// [`SpecError`] naming the first empty layer.
pub fn check_layers(w: &Workload, layers: &[String]) -> Result<(), SpecError> {
    let paths: Vec<String> = match &w.quant {
        Some(qm) => qm.sites().params.into_iter().map(|p| p.path).collect(),
        None => w.model.param_paths(),
    };
    for layer in layers {
        check_sites(
            &paths,
            &[],
            &SiteSpec::LayerParams {
                prefix: layer.clone(),
            },
        )
        .map_err(|_| SpecError(format!("layer `{layer}` resolves to no injection sites")))?;
    }
    Ok(())
}

/// The journal fingerprint tag for a job — distinct per driver x
/// representation, mirroring the drivers' own tag discipline (BD006), so
/// no two different studies ever produce resume-compatible journals.
#[must_use]
pub fn fingerprint_tag(spec: &JobSpec) -> &'static str {
    match (&spec.driver, spec.scenario.quantized) {
        (DriverSpec::Campaign { .. }, false) => "serve_campaign",
        (DriverSpec::Campaign { .. }, true) => "serve_campaign_quant",
        (DriverSpec::AdaptiveCampaign { .. }, false) => "serve_campaign_adaptive",
        (DriverSpec::AdaptiveCampaign { .. }, true) => "serve_campaign_adaptive_quant",
        (DriverSpec::Sweep { .. }, false) => "serve_sweep",
        (DriverSpec::Sweep { .. }, true) => "serve_sweep_quant",
        (DriverSpec::Layerwise { .. }, false) => "serve_layerwise",
        (DriverSpec::Layerwise { .. }, true) => "serve_layerwise_quant",
    }
}

/// The journal fingerprint of a job: computed over the *submitted* spec
/// (not the execution-time worker grant), so it is stable across daemon
/// restarts and pool rebalancing — results are worker-count-invariant, so
/// journals written under different grants interoperate.
///
/// The shard field is stripped first: this names the *campaign*, which
/// every shard job of one study shares. A shard job's journal binds the
/// per-shard fingerprint the shard runner derives from this base (plus
/// the shard count and index), never this value directly. The worker
/// count is pinned for the same reason the core drivers pin it
/// ([`CampaignConfig::fingerprint_form`]): results are bit-identical at
/// every worker count, so shards run on differently-sized daemons must
/// still merge.
#[must_use]
pub fn job_fingerprint(spec: &JobSpec) -> String {
    let mut base = spec.clone();
    base.shard = None;
    let pinned = base.config().fingerprint_form();
    *base.config_mut() = pinned;
    bdlfi::fingerprint(fingerprint_tag(&base), &base)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use bdlfi_bayes::ChainConfig;

    pub(crate) fn small_spec() -> JobSpec {
        JobSpec {
            scenario: ScenarioSpec {
                dataset: DatasetSpec {
                    examples: 60,
                    classes: 3,
                    spread: 0.5,
                    seed: 11,
                    train_frac: 0.7,
                },
                model: ModelSpec {
                    hidden: vec![8],
                    epochs: 3,
                    batch_size: 16,
                    lr: 0.1,
                    momentum: 0.9,
                    seed: 12,
                },
                quantized: false,
                sites: SiteSpec::AllParams,
                flip_probability: 1e-3,
            },
            driver: DriverSpec::Campaign {
                config: CampaignConfig {
                    chains: 2,
                    chain: ChainConfig {
                        burn_in: 1,
                        samples: 4,
                        thin: 1,
                    },
                    workers: 1,
                    ..CampaignConfig::default()
                },
            },
            shard: None,
        }
    }

    #[test]
    fn valid_spec_roundtrips_through_json() {
        let spec = small_spec();
        spec.validate().unwrap();
        let json = serde_json::to_string(&spec.to_json_value()).unwrap();
        let back = JobSpec::from_json_value(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(job_fingerprint(&spec), job_fingerprint(&back));
    }

    #[test]
    fn validation_rejects_out_of_range_fields() {
        let mut spec = small_spec();
        spec.scenario.flip_probability = 1.5;
        assert!(spec.validate().is_err());

        let mut spec = small_spec();
        spec.scenario.dataset.train_frac = 1.0;
        assert!(spec.validate().is_err());

        let mut spec = small_spec();
        if let DriverSpec::Campaign { config } = &mut spec.driver {
            config.chains = 0;
        }
        assert!(spec.validate().is_err());

        let mut spec = small_spec();
        spec.driver = DriverSpec::Sweep {
            ps: vec![],
            config: *spec.config(),
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn quantized_transient_sites_are_rejected() {
        let mut spec = small_spec();
        spec.scenario.quantized = true;
        spec.scenario.sites = SiteSpec::Input;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn workload_build_is_deterministic() {
        let spec = small_spec();
        let a = build_workload(&spec.scenario).unwrap();
        let b = build_workload(&spec.scenario).unwrap();
        let ja = serde_json::to_string(&bdlfi_nn::serialize::export_weights(&a.model)).unwrap();
        let jb = serde_json::to_string(&bdlfi_nn::serialize::export_weights(&b.model)).unwrap();
        assert_eq!(ja, jb);
    }

    #[test]
    fn fingerprint_distinguishes_driver_and_representation() {
        let f32_spec = small_spec();
        let mut quant_spec = small_spec();
        quant_spec.scenario.quantized = true;
        assert_ne!(job_fingerprint(&f32_spec), job_fingerprint(&quant_spec));

        let mut sweep = small_spec();
        sweep.driver = DriverSpec::Sweep {
            ps: vec![1e-3],
            config: *f32_spec.config(),
        };
        assert_ne!(job_fingerprint(&f32_spec), job_fingerprint(&sweep));
    }

    #[test]
    fn shard_validation_and_fingerprint_sharing() {
        // Both shards of one campaign share the base fingerprint.
        let whole = small_spec();
        let mut s0 = small_spec();
        s0.shard = Some(ShardSpec { index: 0, count: 2 });
        let mut s1 = small_spec();
        s1.shard = Some(ShardSpec { index: 1, count: 2 });
        s0.validate().unwrap();
        s1.validate().unwrap();
        assert_eq!(job_fingerprint(&whole), job_fingerprint(&s0));
        assert_eq!(job_fingerprint(&s0), job_fingerprint(&s1));

        // Out-of-range and oversized shards are client errors.
        let mut bad = small_spec();
        bad.shard = Some(ShardSpec { index: 2, count: 2 });
        assert!(bad.validate().is_err());
        let mut bad = small_spec();
        bad.shard = Some(ShardSpec { index: 0, count: 0 });
        assert!(bad.validate().is_err());
        let mut bad = small_spec();
        bad.shard = Some(ShardSpec {
            index: 0,
            count: 99,
        });
        assert!(bad.validate().is_err());

        // Adaptive campaigns cannot be sharded.
        let mut bad = small_spec();
        bad.driver = DriverSpec::AdaptiveCampaign {
            config: *bad.config(),
            max_samples_per_chain: 8,
        };
        bad.shard = Some(ShardSpec { index: 0, count: 2 });
        assert!(bad.validate().is_err());

        // Pre-shard spec files (no "shard" key) still deserialize.
        let mut v = whole.to_json_value();
        if let serde::Value::Object(entries) = &mut v {
            entries.retain(|(k, _)| k != "shard");
        }
        let back = JobSpec::from_json_value(&v).unwrap();
        assert!(back.shard.is_none());
    }

    #[test]
    fn empty_sites_fail_at_build_not_panic() {
        let mut spec = small_spec();
        spec.scenario.sites = SiteSpec::LayerParams {
            prefix: "nonexistent_layer".to_string(),
        };
        assert!(build_workload(&spec.scenario).is_err());
    }
}
