//! The `bdlfi-serve` binary: parse flags, bind, serve until shutdown.

use bdlfi_serve::{Daemon, ServeConfig};
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str =
    "usage: bdlfi-serve --state-dir DIR [--addr HOST:PORT] [--pool N] [--sync-every N]

  --state-dir DIR   where job specs, journals and reports live (required)
  --addr HOST:PORT  listen address (default 127.0.0.1:7878; port 0 = auto)
  --pool N          worker-pool budget (default 0 = one per core)
  --sync-every N    journal fsync cadence in appends (default 1)
";

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut state_dir: Option<PathBuf> = None;
    let mut workers = 0usize;
    let mut sync_every = 1usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = take("--addr"),
            "--state-dir" => state_dir = Some(PathBuf::from(take("--state-dir"))),
            "--pool" => {
                workers = take("--pool").parse().unwrap_or_else(|_| {
                    eprintln!("--pool needs an integer\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--sync-every" => {
                sync_every = take("--sync-every").parse().unwrap_or_else(|_| {
                    eprintln!("--sync-every needs an integer\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(state_dir) = state_dir else {
        eprintln!("--state-dir is required\n{USAGE}");
        std::process::exit(2);
    };

    let cfg = ServeConfig {
        state_dir,
        workers,
        sync_every,
    };
    let daemon = match Daemon::bind(&addr, &cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bdlfi-serve: {e}");
            std::process::exit(1);
        }
    };
    // The orchestration scripts parse this line to learn the real port
    // when 0 was requested.
    println!("bdlfi-serve listening on {}", daemon.addr());
    let mut handle = daemon.start();
    while !handle.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    handle.shutdown();
}
