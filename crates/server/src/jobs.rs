//! Job lifecycle: the registry, per-job state and event streams, the
//! [`bdlfi::RunObserver`] that turns engine results into live diagnostics,
//! and the driver dispatch that actually runs a job.
//!
//! Persistence model: every job writes three files under the daemon's
//! state directory —
//!
//! * `<id>.spec.json` — the submitted [`JobSpec`], written at submit time;
//! * `<id>.journal.jsonl` — the engine's checkpoint journal, appended
//!   while the job runs (fingerprinted over the spec, so it stays valid
//!   across daemon restarts and worker-grant changes);
//! * `<id>.report.json` — the final driver report, written on completion.
//!
//! A restarted daemon rebuilds its registry from these files alone: a
//! report means `done`, a journal without a report means `interrupted`
//! (resumable via `POST /jobs/<id>/resume`), a bare spec means the job
//! never produced a result and can be re-run from scratch. In-memory
//! attempt accounting does not survive restarts; the report's own
//! `run_meta` is the durable record.
//!
//! Everything in this module runs on request or runner paths: no panics,
//! poisoned locks are taken over with [`PoisonError::into_inner`].

use crate::spec::{
    build_workload, check_layers, job_fingerprint, DriverSpec, JobSpec, ShardSpec, SpecError,
    Workload,
};
use bdlfi::{
    run_campaign_adaptive_controlled, run_campaign_controlled, run_campaign_shard,
    run_layerwise_controlled, run_layerwise_quant_controlled, run_layerwise_quant_shard,
    run_layerwise_shard, run_sweep_controlled, run_sweep_quant_controlled, run_sweep_quant_shard,
    run_sweep_shard, CheckpointSpec, EngineError, FaultyModel, QuantFaultyModel, RunControl,
    RunMeta, RunObserver, ShardError,
};
use bdlfi_faults::BernoulliBitFlip;
use serde::{Deserialize, Number, Serialize, Value};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted and waiting for pool workers.
    Queued,
    /// Currently executing on the pool.
    Running,
    /// Finished; the report file exists.
    Done,
    /// Stopped before completion (cancel, shutdown, or a daemon crash);
    /// the journal makes it resumable.
    Interrupted,
    /// The driver failed; the message says why.
    Failed(String),
}

impl JobStatus {
    /// The status as its wire string.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Interrupted => "interrupted",
            JobStatus::Failed(_) => "failed",
        }
    }

    /// Whether the job can accept a `resume` request.
    #[must_use]
    pub fn is_restartable(&self) -> bool {
        matches!(self, JobStatus::Interrupted | JobStatus::Failed(_))
    }
}

/// An append-only log of NDJSON event lines with blocking readers: the
/// backing store of `GET /jobs/<id>/events`. Closing wakes all readers
/// and marks the stream terminal; a resumed job reopens it.
#[derive(Debug, Default)]
pub struct EventLog {
    inner: Mutex<LogInner>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct LogInner {
    lines: Vec<String>,
    closed: bool,
}

impl EventLog {
    /// Appends one event line and wakes waiting readers.
    pub fn push(&self, line: String) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.lines.push(line);
        self.cv.notify_all();
    }

    /// Marks the stream terminal (job reached a terminal status for now).
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        self.cv.notify_all();
    }

    /// Un-terminates the stream when a job is resumed or re-run.
    pub fn reopen(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = false;
    }

    /// Blocks until lines beyond `from` exist (returning them) or the log
    /// is closed with none pending (returning an empty `Vec`). The bool
    /// is the closed flag at return time.
    pub fn wait_from(&self, from: usize) -> (Vec<String>, bool) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if inner.lines.len() > from {
                return (inner.lines[from..].to_vec(), inner.closed);
            }
            if inner.closed {
                return (Vec::new(), true);
            }
            let (guard, _timeout) = self
                .cv
                .wait_timeout(inner, std::time::Duration::from_millis(200))
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }
}

/// One job known to the daemon.
#[derive(Debug)]
pub struct JobState {
    /// The job id (`job-000001`, …), also the state-file stem.
    pub id: String,
    /// The validated spec it was submitted with.
    pub spec: JobSpec,
    /// The journal fingerprint derived from the spec.
    pub fingerprint: String,
    /// Raised to interrupt the job at the next task boundary.
    pub stop: Arc<AtomicBool>,
    /// The NDJSON event stream.
    pub events: EventLog,
    status: Mutex<JobStatus>,
    attempts: Mutex<Vec<RunMeta>>,
}

impl JobState {
    fn new(id: String, spec: JobSpec, status: JobStatus) -> Arc<JobState> {
        let fingerprint = job_fingerprint(&spec);
        Arc::new(JobState {
            id,
            spec,
            fingerprint,
            stop: Arc::new(AtomicBool::new(false)),
            events: EventLog::default(),
            status: Mutex::new(status),
            attempts: Mutex::new(Vec::new()),
        })
    }

    /// The job's current status.
    #[must_use]
    pub fn status(&self) -> JobStatus {
        self.status
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Moves the job to `status`.
    pub fn set_status(&self, status: JobStatus) {
        *self.status.lock().unwrap_or_else(PoisonError::into_inner) = status;
    }

    /// Records one attempt's engine accounting (a completed run's
    /// `run_meta`, or a synthesized partial meta after an interrupt).
    pub fn add_attempt(&self, meta: RunMeta) {
        self.attempts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(meta);
    }

    /// This session's attempts, oldest first.
    #[must_use]
    pub fn attempts(&self) -> Vec<RunMeta> {
        self.attempts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Pools all attempts with [`RunMeta::try_merged_with`]. Attempts of
    /// one job share the spec's engine seed, so a mismatch here means
    /// corrupted accounting — surfaced as the typed error, never a panic.
    ///
    /// Replayed results are counted by every attempt that replays them,
    /// so the pooled `tasks` can exceed the job's task count; it measures
    /// delivered results, not distinct tasks.
    ///
    /// # Errors
    ///
    /// [`EngineError::MetaSeedMismatch`] if the recorded attempts disagree
    /// on the engine seed.
    pub fn pooled_meta(&self) -> Result<Option<RunMeta>, EngineError> {
        let attempts = self.attempts();
        let mut iter = attempts.into_iter();
        let Some(first) = iter.next() else {
            return Ok(None);
        };
        let mut total = first;
        for meta in iter {
            total = total.try_merged_with(meta)?;
        }
        Ok(Some(total))
    }

    /// The job as a JSON summary for `GET /jobs` and `GET /jobs/<id>`.
    #[must_use]
    pub fn summary(&self) -> Value {
        let status = self.status();
        let mut entries = vec![
            ("id".to_string(), Value::String(self.id.clone())),
            (
                "status".to_string(),
                Value::String(status.as_str().to_string()),
            ),
            (
                "tasks".to_string(),
                Value::Number(Number::U(self.spec.tasks() as u64)),
            ),
            (
                "fingerprint".to_string(),
                Value::String(self.fingerprint.clone()),
            ),
        ];
        if let JobStatus::Failed(err) = &status {
            entries.push(("error".to_string(), Value::String(err.clone())));
        }
        let attempts = self.attempts();
        if !attempts.is_empty() {
            entries.push((
                "attempts".to_string(),
                Value::Array(attempts.iter().map(Serialize::to_json_value).collect()),
            ));
            match self.pooled_meta() {
                Ok(Some(total)) => entries.push(("total".to_string(), total.to_json_value())),
                Ok(None) => {}
                Err(e) => {
                    entries.push(("accounting_error".to_string(), Value::String(e.to_string())))
                }
            }
        }
        Value::Object(entries)
    }
}

/// The daemon's collection of jobs, backed by the state directory.
#[derive(Debug)]
pub struct Registry {
    state_dir: PathBuf,
    jobs: Mutex<BTreeMap<String, Arc<JobState>>>,
    next: AtomicUsize,
}

impl Registry {
    /// Opens (creating if needed) a state directory and rebuilds the
    /// registry from the spec/journal/report files found there. Rebuilt
    /// jobs are never auto-started: completed ones are `done`, everything
    /// else is `interrupted` awaiting an explicit resume.
    ///
    /// # Errors
    ///
    /// I/O errors creating or scanning the directory, or a spec file that
    /// no longer parses/validates (state-dir corruption is a startup
    /// error, not something to silently skip).
    pub fn open(state_dir: &Path) -> Result<Registry, String> {
        std::fs::create_dir_all(state_dir)
            .map_err(|e| format!("cannot create state dir {}: {e}", state_dir.display()))?;
        let mut jobs = BTreeMap::new();
        let mut max_id = 0usize;
        let entries = std::fs::read_dir(state_dir)
            .map_err(|e| format!("cannot read state dir {}: {e}", state_dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot scan state dir: {e}"))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = name.strip_suffix(".spec.json") else {
                continue;
            };
            let text = std::fs::read_to_string(entry.path())
                .map_err(|e| format!("cannot read {name}: {e}"))?;
            let value: Value =
                serde_json::from_str(&text).map_err(|e| format!("bad spec file {name}: {e}"))?;
            let spec =
                JobSpec::from_json_value(&value).map_err(|e| format!("bad spec {name}: {e}"))?;
            spec.validate()
                .map_err(|e| format!("stored spec {name} no longer validates: {e}"))?;
            if let Some(n) = id
                .strip_prefix("job-")
                .and_then(|digits| digits.parse::<usize>().ok())
            {
                max_id = max_id.max(n);
            }
            let status = if state_dir.join(format!("{id}.report.json")).exists() {
                JobStatus::Done
            } else {
                JobStatus::Interrupted
            };
            let job = JobState::new(id.to_string(), spec, status.clone());
            if status == JobStatus::Done {
                job.events.close();
            }
            jobs.insert(id.to_string(), job);
        }
        Ok(Registry {
            state_dir: state_dir.to_path_buf(),
            jobs: Mutex::new(jobs),
            next: AtomicUsize::new(max_id + 1),
        })
    }

    /// The directory job state lives in.
    #[must_use]
    pub fn state_dir(&self) -> &Path {
        &self.state_dir
    }

    /// The journal path of a job.
    #[must_use]
    pub fn journal_path(&self, id: &str) -> PathBuf {
        self.state_dir.join(format!("{id}.journal.jsonl"))
    }

    /// The report path of a job.
    #[must_use]
    pub fn report_path(&self, id: &str) -> PathBuf {
        self.state_dir.join(format!("{id}.report.json"))
    }

    /// Validates and accepts a new job: assigns an id, persists the spec,
    /// and registers it as `queued`.
    ///
    /// # Errors
    ///
    /// [`SpecError`] for invalid specs (client error) or a persistence
    /// failure message (server error) — distinguished by the bool, `true`
    /// meaning client fault.
    pub fn submit(&self, spec: JobSpec) -> Result<Arc<JobState>, (bool, String)> {
        spec.validate().map_err(|e| (true, e.to_string()))?;
        // Building the workload is repeated by the runner (each attempt
        // rebuilds it), but site emptiness must fail the *submit*, so
        // probe it here once.
        let probe = build_workload(&spec.scenario).map_err(|e| (true, e.to_string()))?;
        if let DriverSpec::Layerwise { layers, .. } = &spec.driver {
            check_layers(&probe, layers).map_err(|e| (true, e.to_string()))?;
        }
        drop(probe);
        let id = format!("job-{:06}", self.next.fetch_add(1, Ordering::Relaxed));
        let text = serde_json::to_string(&spec.to_json_value())
            .map_err(|e| (false, format!("cannot serialize spec: {e}")))?;
        std::fs::write(self.state_dir.join(format!("{id}.spec.json")), text)
            .map_err(|e| (false, format!("cannot persist spec: {e}")))?;
        let job = JobState::new(id.clone(), spec, JobStatus::Queued);
        job.events.push(event_queued());
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(id, Arc::clone(&job));
        Ok(job)
    }

    /// Looks up a job by id.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<Arc<JobState>> {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(id)
            .cloned()
    }

    /// All jobs, in id order.
    #[must_use]
    pub fn list(&self) -> Vec<Arc<JobState>> {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .cloned()
            .collect()
    }
}

fn print_value(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "null".to_string())
}

fn event_queued() -> String {
    r#"{"event":"queued"}"#.to_string()
}

/// The `started` event: emitted when a runner picks the job up.
#[must_use]
pub fn event_started(resumed: bool, workers: usize) -> String {
    print_value(&Value::Object(vec![
        ("event".to_string(), Value::String("started".to_string())),
        ("resumed".to_string(), Value::Bool(resumed)),
        (
            "workers".to_string(),
            Value::Number(Number::U(workers as u64)),
        ),
    ]))
}

/// The terminal `done` event.
#[must_use]
pub fn event_done() -> String {
    r#"{"event":"done"}"#.to_string()
}

/// The terminal `interrupted` event.
#[must_use]
pub fn event_interrupted(completed: usize, tasks: usize) -> String {
    print_value(&Value::Object(vec![
        (
            "event".to_string(),
            Value::String("interrupted".to_string()),
        ),
        (
            "completed".to_string(),
            Value::Number(Number::U(completed as u64)),
        ),
        ("tasks".to_string(), Value::Number(Number::U(tasks as u64))),
    ]))
}

/// The terminal `failed` event.
#[must_use]
pub fn event_failed(error: &str) -> String {
    print_value(&Value::Object(vec![
        ("event".to_string(), Value::String("failed".to_string())),
        ("error".to_string(), Value::String(error.to_string())),
    ]))
}

/// The per-job [`RunObserver`]: forwards every delivered result (replayed
/// and live) to the event stream and maintains per-chain traces so it can
/// publish pooled mixing diagnostics as the campaign runs.
#[derive(Debug)]
pub struct JobObserver {
    job: Arc<JobState>,
    traces: Mutex<Vec<Vec<f64>>>,
    delivered: AtomicUsize,
}

impl JobObserver {
    /// An observer feeding `job`'s event log.
    #[must_use]
    pub fn new(job: Arc<JobState>) -> JobObserver {
        JobObserver {
            job,
            traces: Mutex::new(Vec::new()),
            delivered: AtomicUsize::new(0),
        }
    }

    /// How many results (replayed + live) have been delivered so far.
    #[must_use]
    pub fn delivered(&self) -> usize {
        self.delivered.load(Ordering::Relaxed)
    }

    fn samples_of(value: &Value) -> Option<Vec<f64>> {
        let arr = value.get("samples")?.as_array()?;
        arr.iter().map(Value::as_f64).collect()
    }

    /// Updates the trace store from one result value and returns the
    /// pooled diagnostics when traces exist.
    fn diagnostics_for(&self, task_id: usize, value: &Value) -> Option<Value> {
        // A sweep/layerwise result embeds a finished campaign report:
        // republish that report's own completeness verdict for the point.
        if let Some(c) = value
            .get("report")
            .and_then(|r| r.get("completeness"))
            .or_else(|| value.get("completeness"))
        {
            return Some(c.clone());
        }
        let mut traces = self.traces.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(samples) = Self::samples_of(value) {
            // Fixed-budget campaign: one chain outcome per task.
            if traces.len() <= task_id {
                traces.resize(task_id + 1, Vec::new());
            }
            if let Some(slot) = traces.get_mut(task_id) {
                *slot = samples;
            }
        } else if let Some(items) = value.as_array() {
            // Adaptive campaign: each segment journals a snapshot of every
            // chain, cumulative from the start.
            let snapshot: Option<Vec<Vec<f64>>> = items.iter().map(Self::samples_of).collect();
            *traces = snapshot?;
        } else {
            return None;
        }
        let slices: Vec<&[f64]> = traces
            .iter()
            .filter(|t| !t.is_empty())
            .map(Vec::as_slice)
            .collect();
        if slices.is_empty() {
            return None;
        }
        let report = bdlfi::assess_slices(&slices, &self.job.spec.config().criteria);
        Some(report.to_json_value())
    }
}

impl RunObserver for JobObserver {
    fn on_result(&self, task_id: usize, tasks: usize, value: &Value) {
        let delivered = self.delivered.fetch_add(1, Ordering::Relaxed) + 1;
        self.job.events.push(print_value(&Value::Object(vec![
            ("event".to_string(), Value::String("result".to_string())),
            ("task".to_string(), Value::Number(Number::U(task_id as u64))),
            ("tasks".to_string(), Value::Number(Number::U(tasks as u64))),
            ("value".to_string(), value.clone()),
        ])));
        if let Some(diag) = self.diagnostics_for(task_id, value) {
            let mut entries = vec![
                (
                    "event".to_string(),
                    Value::String("diagnostics".to_string()),
                ),
                (
                    "completed".to_string(),
                    Value::Number(Number::U(delivered as u64)),
                ),
                ("tasks".to_string(), Value::Number(Number::U(tasks as u64))),
            ];
            if let Some(fields) = diag.as_object() {
                entries.extend(fields.iter().cloned());
            }
            self.job.events.push(print_value(&Value::Object(entries)));
        }
    }
}

/// How one run of a job ended.
#[derive(Debug)]
pub enum JobOutcome {
    /// The driver completed; the report (tagged with its kind) and its
    /// engine accounting.
    Done {
        /// `{"kind": ..., "report": ...}`.
        report: Value,
        /// The run's `run_meta`.
        meta: RunMeta,
    },
    /// The stop flag interrupted the run at a task boundary.
    Interrupted {
        /// Results delivered before the stop.
        completed: usize,
        /// The run's full task count.
        tasks: usize,
    },
    /// The driver failed.
    Failed(String),
}

fn tagged_report(kind: &str, report: Value, meta: RunMeta) -> JobOutcome {
    JobOutcome::Done {
        report: Value::Object(vec![
            ("kind".to_string(), Value::String(kind.to_string())),
            ("report".to_string(), report),
        ]),
        meta,
    }
}

fn engine_outcome(e: EngineError) -> JobOutcome {
    match e {
        EngineError::Interrupted { completed, tasks } => {
            JobOutcome::Interrupted { completed, tasks }
        }
        other => JobOutcome::Failed(other.to_string()),
    }
}

/// Builds the job's workload and runs its driver to completion,
/// interruption, or failure. `workers` is the pool grant for this run —
/// it overrides the submitted config's worker count (results are
/// worker-count-invariant, so this never changes the report).
#[must_use]
pub fn run_job(
    job: &JobState,
    workers: usize,
    ctl: &RunControl,
    journal: &Path,
    resume: bool,
    sync_every: usize,
) -> JobOutcome {
    let ckpt = CheckpointSpec {
        path: journal.to_path_buf(),
        fingerprint: job.fingerprint.clone(),
        resume,
        sync_every,
        allow_complete: false,
    };
    run_driver(&job.spec, workers, ctl, &ckpt)
}

/// Builds the spec's workload and dispatches its driver (whole-campaign
/// or one shard of it) against `ckpt`. `ckpt.fingerprint` must be the
/// spec's base (shard-stripped) [`job_fingerprint`] — the shard path
/// derives its per-shard journal fingerprint from it. Also the finalize
/// entry point `bdlfi-merge` uses to turn a merged shard journal into a
/// report, via [`CheckpointSpec::finalizing`].
#[must_use]
pub fn run_driver(
    spec: &JobSpec,
    workers: usize,
    ctl: &RunControl,
    ckpt: &CheckpointSpec,
) -> JobOutcome {
    let workload = match build_workload(&spec.scenario) {
        Ok(w) => w,
        Err(SpecError(msg)) => return JobOutcome::Failed(format!("workload build failed: {msg}")),
    };
    let mut cfg = *spec.config();
    cfg.workers = workers;
    if let Some(shard) = spec.shard {
        return run_shard_job(spec, workload, &cfg, shard, ctl, ckpt);
    }
    let sites = &spec.scenario.sites;
    let fault = Arc::new(BernoulliBitFlip::new(spec.scenario.flip_probability));

    match (&spec.driver, workload.quant) {
        (DriverSpec::Campaign { .. }, None) => {
            let fm = FaultyModel::new(workload.model, workload.eval, sites, fault);
            match run_campaign_controlled(&fm, &cfg, ctl, Some(ckpt)) {
                Ok(report) => {
                    let meta = report.run_meta;
                    tagged_report("campaign", report.to_json_value(), meta)
                }
                Err(e) => engine_outcome(e),
            }
        }
        (DriverSpec::Campaign { .. }, Some(qm)) => {
            let fm = QuantFaultyModel::new(qm, workload.eval, sites, fault);
            match run_campaign_controlled(&fm, &cfg, ctl, Some(ckpt)) {
                Ok(report) => {
                    let meta = report.run_meta;
                    tagged_report("campaign", report.to_json_value(), meta)
                }
                Err(e) => engine_outcome(e),
            }
        }
        (
            DriverSpec::AdaptiveCampaign {
                max_samples_per_chain,
                ..
            },
            None,
        ) => {
            let fm = FaultyModel::new(workload.model, workload.eval, sites, fault);
            match run_campaign_adaptive_controlled(
                &fm,
                &cfg,
                *max_samples_per_chain,
                ctl,
                Some(ckpt),
            ) {
                Ok(report) => {
                    let meta = report.run_meta;
                    tagged_report("campaign", report.to_json_value(), meta)
                }
                Err(e) => engine_outcome(e),
            }
        }
        (
            DriverSpec::AdaptiveCampaign {
                max_samples_per_chain,
                ..
            },
            Some(qm),
        ) => {
            let fm = QuantFaultyModel::new(qm, workload.eval, sites, fault);
            match run_campaign_adaptive_controlled(
                &fm,
                &cfg,
                *max_samples_per_chain,
                ctl,
                Some(ckpt),
            ) {
                Ok(report) => {
                    let meta = report.run_meta;
                    tagged_report("campaign", report.to_json_value(), meta)
                }
                Err(e) => engine_outcome(e),
            }
        }
        (DriverSpec::Sweep { ps, .. }, None) => {
            match run_sweep_controlled(
                &workload.model,
                &workload.eval,
                sites,
                ps,
                &cfg,
                ctl,
                Some(ckpt),
            ) {
                Ok(result) => {
                    let meta = result.run_meta;
                    tagged_report("sweep", result.to_json_value(), meta)
                }
                Err(e) => engine_outcome(e),
            }
        }
        (DriverSpec::Sweep { ps, .. }, Some(qm)) => {
            match run_sweep_quant_controlled(&qm, &workload.eval, sites, ps, &cfg, ctl, Some(ckpt))
            {
                Ok(result) => {
                    let meta = result.run_meta;
                    tagged_report("sweep", result.to_json_value(), meta)
                }
                Err(e) => engine_outcome(e),
            }
        }
        (DriverSpec::Layerwise { layers, budget, .. }, None) => {
            let refs: Vec<&str> = layers.iter().map(String::as_str).collect();
            match run_layerwise_controlled(
                &workload.model,
                &workload.eval,
                &refs,
                *budget,
                &cfg,
                ctl,
                Some(ckpt),
            ) {
                Ok(result) => {
                    let meta = result.run_meta;
                    tagged_report("layerwise", result.to_json_value(), meta)
                }
                Err(e) => engine_outcome(e),
            }
        }
        (DriverSpec::Layerwise { layers, budget, .. }, Some(qm)) => {
            let refs: Vec<&str> = layers.iter().map(String::as_str).collect();
            match run_layerwise_quant_controlled(
                &qm,
                &workload.eval,
                &refs,
                *budget,
                &cfg,
                ctl,
                Some(ckpt),
            ) {
                Ok(result) => {
                    let meta = result.run_meta;
                    tagged_report("layerwise", result.to_json_value(), meta)
                }
                Err(e) => engine_outcome(e),
            }
        }
    }
}

/// Runs one shard of the spec's driver. The shard's deliverable is its
/// journal (collect it via `GET /jobs/<id>/journal`); the report is a
/// small summary with the shard coordinates and engine accounting.
fn run_shard_job(
    spec: &JobSpec,
    workload: Workload,
    cfg: &bdlfi::CampaignConfig,
    shard: ShardSpec,
    ctl: &RunControl,
    ckpt: &CheckpointSpec,
) -> JobOutcome {
    let sites = &spec.scenario.sites;
    let fault = Arc::new(BernoulliBitFlip::new(spec.scenario.flip_probability));
    let result = match (&spec.driver, workload.quant) {
        (DriverSpec::Campaign { .. }, None) => {
            let fm = FaultyModel::new(workload.model, workload.eval, sites, fault);
            run_campaign_shard(&fm, cfg, shard.count, shard.index, ctl, ckpt)
        }
        (DriverSpec::Campaign { .. }, Some(qm)) => {
            let fm = QuantFaultyModel::new(qm, workload.eval, sites, fault);
            run_campaign_shard(&fm, cfg, shard.count, shard.index, ctl, ckpt)
        }
        (DriverSpec::Sweep { ps, .. }, None) => run_sweep_shard(
            &workload.model,
            &workload.eval,
            sites,
            ps,
            cfg,
            shard.count,
            shard.index,
            ctl,
            ckpt,
        ),
        (DriverSpec::Sweep { ps, .. }, Some(qm)) => run_sweep_quant_shard(
            &qm,
            &workload.eval,
            sites,
            ps,
            cfg,
            shard.count,
            shard.index,
            ctl,
            ckpt,
        ),
        (DriverSpec::Layerwise { layers, budget, .. }, None) => {
            let refs: Vec<&str> = layers.iter().map(String::as_str).collect();
            run_layerwise_shard(
                &workload.model,
                &workload.eval,
                &refs,
                *budget,
                cfg,
                shard.count,
                shard.index,
                ctl,
                ckpt,
            )
        }
        (DriverSpec::Layerwise { layers, budget, .. }, Some(qm)) => {
            let refs: Vec<&str> = layers.iter().map(String::as_str).collect();
            run_layerwise_quant_shard(
                &qm,
                &workload.eval,
                &refs,
                *budget,
                cfg,
                shard.count,
                shard.index,
                ctl,
                ckpt,
            )
        }
        (DriverSpec::AdaptiveCampaign { .. }, _) => {
            // Unreachable past validation; refuse rather than panic.
            return JobOutcome::Failed("adaptive campaigns cannot be sharded".to_string());
        }
    };
    match result {
        Ok(meta) => {
            let summary = Value::Object(vec![
                (
                    "index".to_string(),
                    Value::Number(Number::U(shard.index as u64)),
                ),
                (
                    "count".to_string(),
                    Value::Number(Number::U(shard.count as u64)),
                ),
                ("meta".to_string(), meta.to_json_value()),
            ]);
            tagged_report("shard", summary, meta)
        }
        Err(ShardError::Engine(e)) => engine_outcome(e),
        Err(other) => JobOutcome::Failed(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::tests::small_spec;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bdlfi-serve-jobs-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn submit_persists_and_restart_recovers_status() {
        let dir = tmp_dir("restart");
        let reg = Registry::open(&dir).unwrap();
        let job = reg.submit(small_spec()).unwrap();
        assert_eq!(job.status(), JobStatus::Queued);
        let id = job.id.clone();

        // Pretend the job finished: a report file appears.
        std::fs::write(reg.report_path(&id), "{}").unwrap();
        let reg2 = Registry::open(&dir).unwrap();
        assert_eq!(reg2.get(&id).unwrap().status(), JobStatus::Done);

        // Without a report, a restarted registry treats it as interrupted.
        std::fs::remove_file(reg.report_path(&id)).unwrap();
        let reg3 = Registry::open(&dir).unwrap();
        assert_eq!(reg3.get(&id).unwrap().status(), JobStatus::Interrupted);

        // Ids keep counting upward after a restart.
        let job2 = reg3.submit(small_spec()).unwrap();
        assert!(job2.id > id);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submit_rejects_invalid_specs_as_client_errors() {
        let dir = tmp_dir("invalid");
        let reg = Registry::open(&dir).unwrap();
        let mut spec = small_spec();
        spec.scenario.flip_probability = 2.0;
        let (client_fault, _) = reg.submit(spec).unwrap_err();
        assert!(client_fault);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_job_completes_and_observer_streams_diagnostics() {
        let dir = tmp_dir("run");
        let reg = Registry::open(&dir).unwrap();
        let job = reg.submit(small_spec()).unwrap();
        let observer = Arc::new(JobObserver::new(Arc::clone(&job)));
        let ctl = RunControl::default().observing(Arc::clone(&observer) as Arc<dyn RunObserver>);
        let outcome = run_job(&job, 1, &ctl, &reg.journal_path(&job.id), false, 1);
        let JobOutcome::Done { report, meta } = outcome else {
            panic!("expected completion");
        };
        assert_eq!(report.get("kind").and_then(Value::as_str), Some("campaign"));
        assert_eq!(meta.tasks, 2);
        assert_eq!(observer.delivered(), 2);
        let (lines, _) = job.events.wait_from(0);
        assert!(lines.iter().any(|l| l.contains("\"event\":\"result\"")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"event\":\"diagnostics\"")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn event_log_readers_drain_after_close() {
        let log = EventLog::default();
        log.push("a".to_string());
        let (lines, closed) = log.wait_from(0);
        assert_eq!(lines, vec!["a".to_string()]);
        assert!(!closed);
        log.close();
        let (rest, closed) = log.wait_from(1);
        assert!(rest.is_empty());
        assert!(closed);
    }
}
