//! The shared worker pool: one fixed budget of worker permits that every
//! concurrently running job draws engine threads from.
//!
//! The engine itself spawns scoped threads per run; what the daemon needs
//! is *admission control* — a way to cap the total engine parallelism
//! across jobs and split it fairly when several jobs are in flight. The
//! scheduler (in [`crate::daemon`]) asks for a fair share
//! (`total / (waiting + 1)`, at least 1) and the pool blocks until at
//! least one permit is free, granting up to the request. Grants are
//! released by dropping the [`PoolGrant`] guard, waking the next waiter
//! (FIFO wakeup via condvar, so a large job cannot starve a small one
//! indefinitely — everyone re-contends each release).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// A fixed budget of engine-worker permits shared by all running jobs.
#[derive(Debug)]
pub struct WorkerPool {
    total: usize,
    free: Mutex<usize>,
    cv: Condvar,
}

/// Permits held by one running job; released on drop.
#[derive(Debug)]
pub struct PoolGrant<'p> {
    pool: &'p WorkerPool,
    n: usize,
}

impl PoolGrant<'_> {
    /// How many engine workers this grant allows.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.n
    }
}

impl Drop for PoolGrant<'_> {
    fn drop(&mut self) {
        self.pool.release(self.n);
    }
}

impl WorkerPool {
    /// A pool of `total` permits (`0` = one per available core).
    #[must_use]
    pub fn new(total: usize) -> Self {
        let total = if total == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            total
        };
        WorkerPool {
            total,
            free: Mutex::new(total),
            cv: Condvar::new(),
        }
    }

    /// The pool's total permit budget.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Blocks until at least one permit is free, then takes up to `want`
    /// of the free ones. Returns `None` (without taking anything) once
    /// `cancel` is raised — the shutdown path.
    pub fn acquire(&self, want: usize, cancel: &AtomicBool) -> Option<PoolGrant<'_>> {
        let n = self.take(want, cancel)?;
        Some(PoolGrant { pool: self, n })
    }

    /// [`WorkerPool::acquire`] returning a `'static` grant that can move
    /// into a runner thread.
    pub fn acquire_owned(self: &Arc<Self>, want: usize, cancel: &AtomicBool) -> Option<OwnedGrant> {
        let n = self.take(want, cancel)?;
        Some(OwnedGrant {
            pool: Arc::clone(self),
            n,
        })
    }

    fn take(&self, want: usize, cancel: &AtomicBool) -> Option<usize> {
        let want = want.clamp(1, self.total);
        let mut free = self.free.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if cancel.load(Ordering::Relaxed) {
                return None;
            }
            if *free > 0 {
                let n = want.min(*free);
                *free -= n;
                return Some(n);
            }
            let (guard, _timeout) = self
                .cv
                .wait_timeout(free, std::time::Duration::from_millis(100))
                .unwrap_or_else(PoisonError::into_inner);
            free = guard;
        }
    }

    fn release(&self, n: usize) {
        let mut free = self.free.lock().unwrap_or_else(PoisonError::into_inner);
        *free += n;
        self.cv.notify_all();
    }
}

/// Permits held by one running job through an [`Arc`]'d pool; released on
/// drop, from whichever thread the grant migrated to.
#[derive(Debug)]
pub struct OwnedGrant {
    pool: Arc<WorkerPool>,
    n: usize,
}

impl OwnedGrant {
    /// How many engine workers this grant allows.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.n
    }
}

impl Drop for OwnedGrant {
    fn drop(&mut self) {
        self.pool.release(self.n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn grants_split_the_budget_and_release_on_drop() {
        let pool = WorkerPool::new(4);
        let cancel = AtomicBool::new(false);
        let a = pool.acquire(2, &cancel).unwrap();
        assert_eq!(a.workers(), 2);
        let b = pool.acquire(4, &cancel).unwrap();
        // Only 2 were free; the grant degrades rather than blocking.
        assert_eq!(b.workers(), 2);
        drop(a);
        let c = pool.acquire(1, &cancel).unwrap();
        assert_eq!(c.workers(), 1);
    }

    #[test]
    fn acquire_blocks_until_release_then_wakes() {
        let pool = Arc::new(WorkerPool::new(1));
        let cancel = Arc::new(AtomicBool::new(false));
        let held = pool.acquire(1, &cancel).unwrap();
        let p = Arc::clone(&pool);
        let c = Arc::clone(&cancel);
        let waiter = std::thread::spawn(move || p.acquire(1, &c).map(|g| g.workers()));
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(held);
        assert_eq!(waiter.join().unwrap(), Some(1));
    }

    #[test]
    fn cancel_unblocks_waiters_empty_handed() {
        let pool = Arc::new(WorkerPool::new(1));
        let cancel = Arc::new(AtomicBool::new(false));
        let _held = pool.acquire(1, &cancel).unwrap();
        let p = Arc::clone(&pool);
        let c = Arc::clone(&cancel);
        let waiter = std::thread::spawn(move || p.acquire(1, &c).is_none());
        std::thread::sleep(std::time::Duration::from_millis(30));
        cancel.store(true, Ordering::Relaxed);
        assert!(waiter.join().unwrap());
    }
}
