//! A deliberately small HTTP/1.1 implementation: exactly what the job API
//! needs and nothing more.
//!
//! Connections are persistent (HTTP/1.1 keep-alive) by default — shard
//! collection makes many small requests, and reconnecting per request
//! dominated their cost. A client opts out per request with
//! `Connection: close`; event streams always close their connection when
//! the stream ends. Plain responses carry `Content-Length`, event
//! streams use chunked transfer, so every response is self-delimiting on
//! a reused connection. Requests are parsed from raw bytes with hard
//! limits on header and body size so a malformed or hostile client
//! cannot balloon daemon memory. Every parse failure maps to a
//! client-error response — nothing on this path may panic (BD010).

use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers.
const MAX_HEAD: usize = 8 * 1024;
/// Upper bound on a request body (job specs are a few KB).
const MAX_BODY: usize = 1024 * 1024;

/// A parsed request: method, path, body, connection disposition.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The path, query string stripped.
    pub path: String,
    /// The raw body (empty when none was sent).
    pub body: Vec<u8>,
    /// The client asked for the connection to close after this exchange
    /// (`Connection: close`). HTTP/1.1's default is keep-alive.
    pub close: bool,
}

/// Why a request could not be parsed. Always the client's fault.
#[derive(Debug)]
pub struct BadRequest(pub String);

/// Reads one request from the stream. Returns `Ok(None)` when the
/// connection ends cleanly (or idles out) *between* requests — the normal
/// end of a kept-alive connection, not an error.
///
/// # Errors
///
/// [`BadRequest`] on oversized, truncated, or malformed input (including
/// I/O errors and read timeouts mid-request — from the daemon's view a
/// half-sent request is a bad request).
pub fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, BadRequest> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    // Read byte-wise until the blank line; requests are tiny and this
    // keeps the body bytes (which follow immediately) out of any buffer.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err(BadRequest("request head too large".to_string()));
        }
        match stream.read(&mut byte) {
            Ok(0) if head.is_empty() => return Ok(None),
            Ok(0) => return Err(BadRequest("connection closed mid-request".to_string())),
            Ok(_) => head.extend_from_slice(&byte),
            Err(_) if head.is_empty() => return Ok(None),
            Err(e) => return Err(BadRequest(format!("read error: {e}"))),
        }
    }
    let head = String::from_utf8(head)
        .map_err(|_| BadRequest("request head is not valid UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| BadRequest("empty request".to_string()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| BadRequest("missing method".to_string()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| BadRequest("missing request target".to_string()))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut close = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| BadRequest("bad content-length".to_string()))?;
        }
        if name.eq_ignore_ascii_case("connection") {
            close = value.trim().eq_ignore_ascii_case("close");
        }
    }
    if content_length > MAX_BODY {
        return Err(BadRequest(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY} byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| BadRequest(format!("truncated body: {e}")))?;
    Ok(Some(Request {
        method,
        path,
        body,
        close,
    }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete response with the given content type and flushes.
/// `close` advertises (and commits to) closing the connection after this
/// exchange. Write errors are returned for logging; by this point the
/// request is already handled, so callers may ignore a client that hung
/// up.
///
/// # Errors
///
/// The underlying socket write error.
pub fn respond_bytes(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// [`respond_bytes`] for a JSON payload.
///
/// # Errors
///
/// The underlying socket write error.
pub fn respond_json(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    respond_bytes(stream, status, "application/json", body.as_bytes(), close)
}

/// [`respond_json`] with an `{"error": ...}` payload.
///
/// # Errors
///
/// The underlying socket write error.
pub fn respond_error(
    stream: &mut TcpStream,
    status: u16,
    msg: &str,
    close: bool,
) -> std::io::Result<()> {
    let body = serde_json::to_string(&serde::Value::Object(vec![(
        "error".to_string(),
        serde::Value::String(msg.to_string()),
    )]))
    .unwrap_or_else(|_| "{\"error\":\"unprintable\"}".to_string());
    respond_json(stream, status, &body, close)
}

/// A chunked `application/x-ndjson` response in progress: one chunk per
/// event line, flushed immediately so clients see results live.
#[derive(Debug)]
pub struct ChunkedWriter<'s> {
    stream: &'s mut TcpStream,
}

impl<'s> ChunkedWriter<'s> {
    /// Sends the streaming response head.
    ///
    /// # Errors
    ///
    /// The underlying socket write error.
    pub fn begin(stream: &'s mut TcpStream) -> std::io::Result<ChunkedWriter<'s>> {
        stream.write_all(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        )?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Sends one event line as its own chunk (newline appended).
    ///
    /// # Errors
    ///
    /// The underlying socket write error (client hung up).
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        let chunk = format!("{:x}\r\n{line}\n\r\n", line.len() + 1);
        self.stream.write_all(chunk.as_bytes())?;
        self.stream.flush()
    }

    /// Sends the terminating zero chunk.
    ///
    /// # Errors
    ///
    /// The underlying socket write error.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}
