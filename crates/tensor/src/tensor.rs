//! The dense, owned, row-major `f32` tensor at the heart of the substrate.

use crate::error::TensorError;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// `Tensor` owns its storage (`Vec<f32>`) and is always contiguous; slicing
/// operations copy. This keeps the API simple and makes every tensor cheap to
/// hand across threads (it is `Send + Sync`).
///
/// # Examples
///
/// ```
/// use bdlfi_tensor::Tensor;
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Creates a tensor from a flat row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the element count of `shape`.
    /// Use [`Tensor::try_from_vec`] for a fallible variant.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        // bdlfi-lint: allow(BD010) -- documented `# Panics` API; `try_from_vec` is the fallible variant campaign paths can use
        Tensor::try_from_vec(data, shape).expect("data length must match shape")
    }

    /// Creates a tensor from a flat row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not match
    /// the element count of `shape`.
    pub fn try_from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if data.len() != shape.num_elements() {
            return Err(TensorError::LengthMismatch {
                expected: shape.num_elements(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor whose element at multi-index `i` is `f(i)`.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let shape = shape.into();
        let n = shape.num_elements();
        let mut data = Vec::with_capacity(n);
        for off in 0..n {
            let idx = shape.unravel(off);
            data.push(f(&idx));
        }
        Tensor { shape, data }
    }

    /// Creates the 2-D identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Extents of all dimensions (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.shape.dim(axis)
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements (some dimension has extent 0).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable reference to the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Returns a copy reshaped to `shape`.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ; use [`Tensor::try_reshape`] for a
    /// fallible variant.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        self.try_reshape(shape)
            // bdlfi-lint: allow(BD010) -- documented `# Panics` API; `try_reshape` is the fallible variant campaign paths can use
            .expect("reshape must preserve element count")
    }

    /// Returns a copy reshaped to `shape`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if the element counts differ.
    pub fn try_reshape(&self, shape: impl Into<Shape>) -> Result<Tensor, TensorError> {
        let shape = shape.into();
        if shape.num_elements() != self.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.shape.dims().to_vec(),
                to: shape.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Reshapes in place (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape_inplace(&mut self, shape: impl Into<Shape>) {
        let shape = shape.into();
        assert_eq!(
            shape.num_elements(),
            self.len(),
            "reshape must preserve element count ({} vs {})",
            shape.num_elements(),
            self.len()
        );
        self.shape = shape;
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors element-wise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip_map requires identical shapes: {} vs {}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Row `i` of a rank-2 tensor, as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires a rank-2 tensor");
        let cols = self.dim(1);
        &self.data[i * cols..(i + 1) * cols]
    }

    /// Mutable row `i` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of bounds.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert_eq!(self.rank(), 2, "row_mut() requires a rank-2 tensor");
        let cols = self.dim(1);
        &mut self.data[i * cols..(i + 1) * cols]
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.shape, other.shape,
            "max_abs_diff requires identical shapes"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Whether every element differs from `other` by at most `tol`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.max_abs_diff(other) <= tol
    }
}

impl Default for Tensor {
    /// The default tensor is the scalar `0.0`.
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.len() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{:?}, ... {} elements]", &self.data[..8], self.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let o = Tensor::ones([3]);
        assert!(o.data().iter().all(|&x| x == 1.0));
        let f = Tensor::full([2], 7.5);
        assert_eq!(f.data(), &[7.5, 7.5]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::try_from_vec(vec![1.0; 6], [2, 3]).is_ok());
        assert_eq!(
            Tensor::try_from_vec(vec![1.0; 5], [2, 3]),
            Err(TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            })
        );
    }

    #[test]
    fn from_fn_builds_row_major() {
        let t = Tensor::from_fn([2, 3], |i| (i[0] * 10 + i[1]) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.at(&[r, c]), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn indexing_and_mutation() {
        let mut t = Tensor::zeros([2, 2]);
        *t.at_mut(&[0, 1]) = 5.0;
        assert_eq!(t.at(&[0, 1]), 5.0);
        assert_eq!(t.at(&[1, 1]), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let r = t.reshape([3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[3, 2]);
        assert!(t.try_reshape([4]).is_err());
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![1.0, -2.0], [2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], [2]);
        assert_eq!(a.map(f32::abs).data(), &[1.0, 2.0]);
        assert_eq!(a.zip_map(&b, |x, y| x * y).data(), &[3.0, -8.0]);
    }

    #[test]
    #[should_panic(expected = "identical shapes")]
    fn zip_map_panics_on_shape_mismatch() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        a.zip_map(&b, |x, _| x);
    }

    #[test]
    fn rows_of_matrix() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
        t.row_mut(0)[0] = 9.0;
        assert_eq!(t.at(&[0, 0]), 9.0);
    }

    #[test]
    fn default_is_scalar_zero() {
        let d = Tensor::default();
        assert_eq!(d.rank(), 0);
        assert_eq!(d.data(), &[0.0]);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Tensor::zeros([2]).to_string().is_empty());
        assert!(!Tensor::zeros([100]).to_string().is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let t = Tensor::from_fn([3, 2], |i| i[0] as f32 - i[1] as f32);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    proptest! {
        #[test]
        fn reshape_roundtrip(data in proptest::collection::vec(-10.0f32..10.0, 12)) {
            let t = Tensor::from_vec(data, [3, 4]);
            let back = t.reshape([2, 6]).reshape([3, 4]);
            prop_assert_eq!(back, t);
        }

        #[test]
        fn from_fn_matches_at(dims in proptest::collection::vec(1usize..5, 1..4)) {
            let t = Tensor::from_fn(dims.clone(), |i| i.iter().sum::<usize>() as f32);
            let shape = Shape::new(dims);
            for off in 0..shape.num_elements() {
                let idx = shape.unravel(off);
                prop_assert_eq!(t.at(&idx), idx.iter().sum::<usize>() as f32);
            }
        }
    }
}
