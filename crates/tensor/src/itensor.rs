//! Integer tensor storage for the quantized inference path.
//!
//! The f32 [`crate::Tensor`] carries the full broadcasting/autograd
//! surface; quantized models only need shaped, addressable storage for
//! int8 weights and i32 biases/accumulators, so these types stay minimal:
//! a shape, a flat buffer, and mutable access for XOR fault injection.

/// A shaped buffer of `i8` elements (quantized weights and activations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct I8Tensor {
    dims: Vec<usize>,
    data: Vec<i8>,
}

/// A shaped buffer of `i32` elements (quantized biases, zero-points and
/// accumulators).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct I32Tensor {
    dims: Vec<usize>,
    data: Vec<i32>,
}

macro_rules! itensor_impl {
    ($name:ident, $elem:ty) => {
        impl $name {
            /// Builds a tensor from a flat buffer and dimensions.
            ///
            /// # Panics
            ///
            /// Panics if the buffer length does not equal the dimension
            /// product.
            pub fn from_vec(data: Vec<$elem>, dims: impl Into<Vec<usize>>) -> Self {
                let dims = dims.into();
                let len: usize = dims.iter().product();
                assert_eq!(
                    data.len(),
                    len,
                    "{} elements do not fill shape {dims:?}",
                    data.len()
                );
                Self { dims, data }
            }

            /// A zero-filled tensor.
            pub fn zeros(dims: impl Into<Vec<usize>>) -> Self {
                let dims = dims.into();
                let len: usize = dims.iter().product();
                Self {
                    dims,
                    data: vec![0; len],
                }
            }

            /// The dimensions.
            pub fn dims(&self) -> &[usize] {
                &self.dims
            }

            /// The size of dimension `i`.
            ///
            /// # Panics
            ///
            /// Panics if `i` is out of range.
            pub fn dim(&self, i: usize) -> usize {
                self.dims[i]
            }

            /// Total number of elements.
            pub fn len(&self) -> usize {
                self.data.len()
            }

            /// Whether the tensor holds no elements.
            pub fn is_empty(&self) -> bool {
                self.data.is_empty()
            }

            /// The flat element buffer (row-major).
            pub fn data(&self) -> &[$elem] {
                &self.data
            }

            /// Mutable access to the flat buffer — the fault-injection
            /// hook (masks XOR bits in place).
            pub fn data_mut(&mut self) -> &mut [$elem] {
                &mut self.data
            }
        }
    };
}

itensor_impl!(I8Tensor, i8);
itensor_impl!(I32Tensor, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_data_agree() {
        let t = I8Tensor::from_vec(vec![1, -2, 3, -4, 5, -6], [2, 3]);
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.dim(1), 3);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        assert_eq!(t.data()[3], -4);
    }

    #[test]
    fn zeros_and_mutation() {
        let mut t = I32Tensor::zeros([4]);
        assert_eq!(t.data(), &[0; 4]);
        t.data_mut()[2] = -7;
        assert_eq!(t.data(), &[0, 0, -7, 0]);
    }

    #[test]
    #[should_panic(expected = "do not fill shape")]
    fn mismatched_shape_rejected() {
        I8Tensor::from_vec(vec![1, 2, 3], [2, 2]);
    }
}
