//! Random tensor initialisers used to seed network training.
//!
//! Normal deviates are produced with a Box–Muller transform so the crate
//! needs nothing beyond `rand`'s uniform source.

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::{Rng, RngExt};

/// Draws a standard-normal deviate via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

impl Tensor {
    /// Tensor with elements drawn uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn rand_uniform<R: Rng + ?Sized>(
        shape: impl Into<Shape>,
        lo: f32,
        hi: f32,
        rng: &mut R,
    ) -> Tensor {
        assert!(lo < hi, "rand_uniform requires lo < hi");
        let shape = shape.into();
        let n = shape.num_elements();
        let data = (0..n).map(|_| rng.random_range(lo..hi)).collect();
        Tensor::from_vec(data, shape)
    }

    /// Tensor with elements drawn from `N(mean, std²)`.
    pub fn rand_normal<R: Rng + ?Sized>(
        shape: impl Into<Shape>,
        mean: f32,
        std: f32,
        rng: &mut R,
    ) -> Tensor {
        let shape = shape.into();
        let n = shape.num_elements();
        let data = (0..n).map(|_| mean + std * standard_normal(rng)).collect();
        Tensor::from_vec(data, shape)
    }

    /// Kaiming/He-uniform initialisation for a layer with `fan_in` inputs:
    /// uniform on `[-√(6/fan_in), √(6/fan_in)]`, appropriate before ReLU.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in == 0`.
    pub fn kaiming_uniform<R: Rng + ?Sized>(
        shape: impl Into<Shape>,
        fan_in: usize,
        rng: &mut R,
    ) -> Tensor {
        assert!(fan_in > 0, "kaiming_uniform requires fan_in > 0");
        let bound = (6.0 / fan_in as f32).sqrt();
        Tensor::rand_uniform(shape, -bound, bound, rng)
    }

    /// Xavier/Glorot-uniform initialisation:
    /// uniform on `[-√(6/(fan_in+fan_out)), √(6/(fan_in+fan_out))]`.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in + fan_out == 0`.
    pub fn xavier_uniform<R: Rng + ?Sized>(
        shape: impl Into<Shape>,
        fan_in: usize,
        fan_out: usize,
        rng: &mut R,
    ) -> Tensor {
        assert!(
            fan_in + fan_out > 0,
            "xavier_uniform requires fan_in + fan_out > 0"
        );
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform(shape, -bound, bound, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::rand_uniform([1000], -2.0, 3.0, &mut rng);
        assert!(t.data().iter().all(|&x| (-2.0..3.0).contains(&x)));
        // Mean should be near the midpoint 0.5.
        assert!((t.mean() - 0.5).abs() < 0.2);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tensor::rand_normal([20_000], 1.0, 2.0, &mut rng);
        assert!((t.mean() - 1.0).abs() < 0.1);
        let var = t.map(|x| (x - 1.0) * (x - 1.0)).mean();
        assert!((var - 4.0).abs() < 0.3, "var = {var}");
    }

    #[test]
    fn kaiming_bound_shrinks_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(3);
        let small = Tensor::kaiming_uniform([1000], 10, &mut rng);
        let large = Tensor::kaiming_uniform([1000], 1000, &mut rng);
        assert!(small.map(f32::abs).max() > large.map(f32::abs).max());
        assert!(large.map(f32::abs).max() <= (6.0f32 / 1000.0).sqrt());
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = Tensor::rand_normal([16], 0.0, 1.0, &mut StdRng::seed_from_u64(7));
        let b = Tensor::rand_normal([16], 0.0, 1.0, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn standard_normal_is_finite() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}
