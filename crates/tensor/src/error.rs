//! Error types for tensor construction and manipulation.

use std::error::Error;
use std::fmt;

/// Error produced by fallible tensor operations.
///
/// Most element-wise and linear-algebra operations in this crate panic on
/// shape mismatch (the mismatch is a programming error, and hot loops cannot
/// afford `Result` plumbing); the fallible *constructors* and explicit
/// `try_*` entry points return this type instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the number of elements implied
    /// by the shape.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two shapes that were required to be identical differ.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// A reshape was requested to a shape with a different element count.
    ReshapeMismatch {
        /// Source shape.
        from: Vec<usize>,
        /// Requested target shape.
        to: Vec<usize>,
    },
    /// An operation required a specific rank (number of dimensions).
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Provided rank.
        actual: usize,
    },
    /// An index was out of bounds for the given axis.
    IndexOutOfBounds {
        /// Axis on which the index was out of range.
        axis: usize,
        /// Offending index.
        index: usize,
        /// Axis length.
        len: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape element count {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::ReshapeMismatch { from, to } => {
                write!(
                    f,
                    "cannot reshape {from:?} into {to:?}: element counts differ"
                )
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected}, found rank {actual}")
            }
            TensorError::IndexOutOfBounds { axis, index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for axis {axis} of length {len}"
                )
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<TensorError> = vec![
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::ShapeMismatch {
                left: vec![2, 2],
                right: vec![3],
            },
            TensorError::ReshapeMismatch {
                from: vec![2, 2],
                to: vec![5],
            },
            TensorError::RankMismatch {
                expected: 2,
                actual: 4,
            },
            TensorError::IndexOutOfBounds {
                axis: 1,
                index: 9,
                len: 3,
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
