//! # bdlfi-tensor
//!
//! Dense `f32` tensor substrate for the BDLFI reproduction ("Towards a
//! Bayesian Approach for Assessing Fault Tolerance of Deep Neural Networks",
//! DSN 2019).
//!
//! The paper's methodology needs nothing more exotic than fast CPU inference
//! over multilayer perceptrons and ResNet-18, so this crate provides exactly
//! that numeric core, built from scratch:
//!
//! * [`Tensor`] — owned, contiguous, row-major `f32` storage with shape
//!   bookkeeping ([`Shape`]);
//! * element-wise arithmetic and broadcasts ([`ops::elementwise`]);
//! * cache-friendly matrix multiplication in the three transpose variants
//!   backpropagation needs ([`ops::matmul`]);
//! * im2col convolution with exact gradients ([`ops::conv`]);
//! * max / global-average pooling ([`ops::pool`]);
//! * reductions and argmax ([`ops::reduce`]);
//! * fault-tolerant softmax ([`ops::softmax`]) that keeps campaign statistics
//!   well-defined when bit flips produce `NaN`/`inf` logits;
//! * RNG initialisers ([`init`]);
//! * integer storage ([`I8Tensor`], [`I32Tensor`]) and the blocked
//!   `i8 × i8 → i32` GEMM ([`ops::qgemm`]) backing the quantized
//!   deployment workload;
//! * the kernel-selector layer ([`kernels`]) that picks a micro-kernel
//!   variant (scalar / autovectorized / AVX2 intrinsics) and cache-block
//!   tile per GEMM shape, overridable with `BDLFI_KERNEL`.
//!
//! # Examples
//!
//! ```
//! use bdlfi_tensor::Tensor;
//!
//! let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
//! let x = Tensor::from_vec(vec![3.0, 4.0], [2, 1]);
//! let y = w.matmul(&x);
//! assert_eq!(y.data(), &[3.0, 4.0]);
//! ```

#![warn(missing_docs)]

mod error;
pub mod init;
mod itensor;
pub mod kernels;
pub mod ops;
pub mod scratch;
mod shape;
mod tensor;

pub use error::TensorError;
pub use itensor::{I32Tensor, I8Tensor};
pub use ops::conv::{col2im, conv2d, conv2d_backward, im2col, Conv2dSpec};
pub use ops::pool::{
    global_avg_pool, global_avg_pool_backward, maxpool2d, maxpool2d_backward, Pool2dSpec,
};
pub use ops::qgemm::qgemm;
pub use shape::Shape;
pub use tensor::Tensor;
