//! Concatenation and row-range slicing along the batch axis — the
//! utilities batched pipelines are built from.

use crate::tensor::Tensor;

impl Tensor {
    /// Concatenates tensors along axis 0. All inputs must agree on every
    /// trailing dimension.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or trailing dimensions differ.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows needs at least one tensor");
        let tail = &parts[0].dims()[1..];
        let mut rows = 0usize;
        for p in parts {
            assert_eq!(
                &p.dims()[1..],
                tail,
                "concat_rows requires identical trailing dimensions"
            );
            rows += p.dim(0);
        }
        let mut data = Vec::with_capacity(rows * tail.iter().product::<usize>());
        for p in parts {
            data.extend_from_slice(p.data());
        }
        let mut dims = vec![rows];
        dims.extend_from_slice(tail);
        Tensor::from_vec(data, dims)
    }

    /// Copies rows `start..end` (axis 0) into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, out of bounds, or the tensor is
    /// rank 0.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        assert!(self.rank() >= 1, "slice_rows requires a batched tensor");
        assert!(
            start < end && end <= self.dim(0),
            "row range {start}..{end} out of bounds"
        );
        let row_len = self.len() / self.dim(0);
        let mut dims = self.dims().to_vec();
        dims[0] = end - start;
        Tensor::from_vec(self.data()[start * row_len..end * row_len].to_vec(), dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_then_slice_roundtrips() {
        let a = Tensor::from_fn([2, 3], |i| (i[0] * 3 + i[1]) as f32);
        let b = Tensor::from_fn([1, 3], |i| 100.0 + i[1] as f32);
        let c = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(c.dims(), &[3, 3]);
        assert_eq!(c.slice_rows(0, 2), a);
        assert_eq!(c.slice_rows(2, 3), b);
    }

    #[test]
    fn concat_preserves_higher_rank_tails() {
        let a = Tensor::ones([2, 3, 4, 4]);
        let b = Tensor::zeros([3, 3, 4, 4]);
        let c = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(c.dims(), &[5, 3, 4, 4]);
        assert_eq!(c.slice_rows(0, 2).sum(), a.sum());
        assert_eq!(c.slice_rows(2, 5).sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "identical trailing dimensions")]
    fn mismatched_tails_rejected() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 4]);
        Tensor::concat_rows(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_past_the_end_rejected() {
        Tensor::zeros([2, 2]).slice_rows(1, 3);
    }
}
