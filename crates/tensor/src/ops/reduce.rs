//! Reductions: totals, per-axis sums and means, extrema and argmax.

use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements (accumulated in f64 for stability).
    pub fn sum(&self) -> f32 {
        self.data().iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    ///
    /// Returns `NaN` for empty tensors.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            return f32::NAN;
        }
        (self.data().iter().map(|&x| x as f64).sum::<f64>() / self.len() as f64) as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn max(&self) -> f32 {
        assert!(!self.is_empty(), "max of an empty tensor");
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn min(&self) -> f32 {
        assert!(!self.is_empty(), "min of an empty tensor");
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Column sums of a rank-2 tensor: `(m, n) -> (n,)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn sum_axis0(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "sum_axis0 requires a rank-2 tensor");
        let (m, n) = (self.dim(0), self.dim(1));
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            let row = &self.data()[i * n..(i + 1) * n];
            for (o, &x) in out.iter_mut().zip(row.iter()) {
                *o += x;
            }
        }
        Tensor::from_vec(out, [n])
    }

    /// Column means of a rank-2 tensor: `(m, n) -> (n,)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or has zero rows.
    pub fn mean_axis0(&self) -> Tensor {
        let m = self.dim(0);
        assert!(m > 0, "mean_axis0 of a zero-row matrix");
        self.sum_axis0().scale(1.0 / m as f32)
    }

    /// Row sums of a rank-2 tensor: `(m, n) -> (m,)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn sum_axis1(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "sum_axis1 requires a rank-2 tensor");
        let (m, n) = (self.dim(0), self.dim(1));
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            out.push(self.data()[i * n..(i + 1) * n].iter().sum());
        }
        Tensor::from_vec(out, [m])
    }

    /// Index of the maximum element of each row of a rank-2 tensor.
    ///
    /// Ties resolve to the lowest index, matching common ML framework
    /// semantics.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows requires a rank-2 tensor");
        let (m, n) = (self.dim(0), self.dim(1));
        assert!(n > 0, "argmax_rows of a zero-column matrix");
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let row = &self.data()[i * n..(i + 1) * n];
            let mut best = 0;
            let mut best_v = row[0];
            for (j, &v) in row.iter().enumerate().skip(1) {
                if v > best_v {
                    best = j;
                    best_v = v;
                }
            }
            out.push(best);
        }
        out
    }

    /// Per-channel mean over an NCHW rank-4 tensor: `(n, c, h, w) -> (c,)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4.
    pub fn mean_per_channel(&self) -> Tensor {
        assert_eq!(
            self.rank(),
            4,
            "mean_per_channel requires a rank-4 NCHW tensor"
        );
        let (n, c, h, w) = (self.dim(0), self.dim(1), self.dim(2), self.dim(3));
        let plane = h * w;
        let count = (n * plane) as f64;
        let mut sums = vec![0.0f64; c];
        for img in 0..n {
            for (ch, sum) in sums.iter_mut().enumerate() {
                let base = (img * c + ch) * plane;
                let s: f64 = self.data()[base..base + plane]
                    .iter()
                    .map(|&x| x as f64)
                    .sum();
                *sum += s;
            }
        }
        Tensor::from_vec(sums.iter().map(|&s| (s / count) as f32).collect(), [c])
    }

    /// Per-channel biased variance over an NCHW rank-4 tensor given the
    /// per-channel means: `(n, c, h, w) -> (c,)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or `means` is not rank 1 of length
    /// `c`.
    pub fn var_per_channel(&self, means: &Tensor) -> Tensor {
        assert_eq!(
            self.rank(),
            4,
            "var_per_channel requires a rank-4 NCHW tensor"
        );
        let (n, c, h, w) = (self.dim(0), self.dim(1), self.dim(2), self.dim(3));
        assert_eq!(means.dims(), &[c], "means must have one entry per channel");
        let plane = h * w;
        let count = (n * plane) as f64;
        let mut sums = vec![0.0f64; c];
        for img in 0..n {
            for (ch, sum) in sums.iter_mut().enumerate() {
                let mu = means.data()[ch] as f64;
                let base = (img * c + ch) * plane;
                let s: f64 = self.data()[base..base + plane]
                    .iter()
                    .map(|&x| {
                        let d = x as f64 - mu;
                        d * d
                    })
                    .sum();
                *sum += s;
            }
        }
        Tensor::from_vec(sums.iter().map(|&s| (s / count) as f32).collect(), [c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn global_reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.sum(), 6.0);
        assert_eq!(t.mean(), 1.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), -2.0);
    }

    #[test]
    fn axis_reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        assert_eq!(t.sum_axis0().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(t.mean_axis0().data(), &[2.5, 3.5, 4.5]);
        assert_eq!(t.sum_axis1().data(), &[6.0, 15.0]);
    }

    #[test]
    fn argmax_rows_with_ties_resolves_low() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.0, -1.0, -1.0], [2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn channel_stats_match_manual() {
        // 2 images, 2 channels, 1x2 planes.
        let t = Tensor::from_vec(
            vec![
                1.0, 3.0, /* img0 ch0 */ 10.0, 10.0, /* img0 ch1 */
                5.0, 7.0, /* img1 ch0 */ 20.0, 20.0, /* img1 ch1 */
            ],
            [2, 2, 1, 2],
        );
        let mu = t.mean_per_channel();
        assert_eq!(mu.data(), &[4.0, 15.0]);
        let var = t.var_per_channel(&mu);
        // ch0: values 1,3,5,7 -> var = mean((x-4)^2) = (9+1+1+9)/4 = 5
        // ch1: values 10,10,20,20 -> var = 25
        assert_eq!(var.data(), &[5.0, 25.0]);
    }

    #[test]
    fn mean_of_empty_is_nan() {
        assert!(Tensor::zeros([0]).mean().is_nan());
    }

    proptest! {
        #[test]
        fn sum_axis_decomposition(v in proptest::collection::vec(-10.0f32..10.0, 12)) {
            let t = Tensor::from_vec(v, [3, 4]);
            let total = t.sum();
            prop_assert!((t.sum_axis0().sum() - total).abs() < 1e-3);
            prop_assert!((t.sum_axis1().sum() - total).abs() < 1e-3);
        }

        #[test]
        fn argmax_picks_max(v in proptest::collection::vec(-10.0f32..10.0, 8)) {
            let t = Tensor::from_vec(v.clone(), [2, 4]);
            for (i, &j) in t.argmax_rows().iter().enumerate() {
                let row = &v[i * 4..(i + 1) * 4];
                let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                prop_assert_eq!(row[j], m);
            }
        }
    }
}
