//! 2-D convolution via im2col + matrix multiplication, with the full
//! backward pass needed for training (ResNet-18 substrate).
//!
//! All image tensors are NCHW (batch, channels, height, width); weights are
//! `(out_channels, in_channels, kh, kw)`.
//!
//! The forward and backward loops are allocation-free on the steady state:
//! im2col matrices and matmul temporaries live in [`crate::scratch`]
//! buffers that are recycled across images and across calls, and the
//! blocked GEMM ([`super::gemm`]) writes straight into the output (or
//! accumulates straight into the gradient) instead of materialising
//! per-image product tensors.

use crate::ops::gemm::gemm_strided;
use crate::scratch;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Geometry of a 2-D convolution: kernel size, stride and zero padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dSpec {
    /// Kernel height and width.
    pub kernel: (usize, usize),
    /// Vertical and horizontal stride.
    pub stride: (usize, usize),
    /// Vertical and horizontal zero padding (applied on both sides).
    pub padding: (usize, usize),
}

impl Conv2dSpec {
    /// Creates a spec with a square kernel, unit stride and no padding.
    pub fn new(kernel: usize) -> Self {
        Conv2dSpec {
            kernel: (kernel, kernel),
            stride: (1, 1),
            padding: (0, 0),
        }
    }

    /// Sets a uniform stride, returning the modified spec.
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.stride = (stride, stride);
        self
    }

    /// Sets a uniform padding, returning the modified spec.
    pub fn with_padding(mut self, padding: usize) -> Self {
        self.padding = (padding, padding);
        self
    }

    /// Output spatial size for an input of size `(h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let (kh, kw) = self.kernel;
        let (sh, sw) = self.stride;
        let (ph, pw) = self.padding;
        assert!(
            h + 2 * ph >= kh && w + 2 * pw >= kw,
            "kernel {kh}x{kw} does not fit input {h}x{w} with padding {ph}x{pw}"
        );
        ((h + 2 * ph - kh) / sh + 1, (w + 2 * pw - kw) / sw + 1)
    }
}

/// Unfolds one CHW image into the im2col matrix of shape
/// `(c * kh * kw, oh * ow)`: column `q` holds the receptive field of output
/// position `q`, so convolution becomes `W_mat · cols`.
///
/// Out-of-bounds (padding) positions contribute zeros.
///
/// # Panics
///
/// Panics if `image` is not rank 3 or the kernel does not fit.
pub fn im2col(image: &Tensor, spec: Conv2dSpec) -> Tensor {
    assert_eq!(image.rank(), 3, "im2col expects a CHW image");
    let (c, h, w) = (image.dim(0), image.dim(1), image.dim(2));
    let (kh, kw) = spec.kernel;
    let (oh, ow) = spec.output_hw(h, w);
    let mut out = vec![0.0f32; c * kh * kw * oh * ow];
    im2col_into(image.data(), c, h, w, spec, &mut out);
    Tensor::from_vec(out, [c * kh * kw, oh * ow])
}

/// Allocation-free core of [`im2col`]: unfolds one CHW image (given as a
/// raw slice) into `dst`, which must hold `c·kh·kw · oh·ow` elements.
/// `dst` is fully overwritten (padding positions are zeroed first).
fn im2col_into(src: &[f32], c: usize, h: usize, w: usize, spec: Conv2dSpec, dst: &mut [f32]) {
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let (oh, ow) = spec.output_hw(h, w);
    let cols_n = oh * ow;
    debug_assert_eq!(src.len(), c * h * w);
    debug_assert_eq!(dst.len(), c * kh * kw * cols_n);
    dst.fill(0.0);

    for ch in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ch * kh + ki) * kw + kj;
                let dst_row = &mut dst[row * cols_n..(row + 1) * cols_n];
                for oi in 0..oh {
                    let si = (oi * sh + ki) as isize - ph as isize;
                    if si < 0 || si >= h as isize {
                        continue;
                    }
                    let src_base = (ch * h + si as usize) * w;
                    for oj in 0..ow {
                        let sj = (oj * sw + kj) as isize - pw as isize;
                        if sj < 0 || sj >= w as isize {
                            continue;
                        }
                        dst_row[oi * ow + oj] = src[src_base + sj as usize];
                    }
                }
            }
        }
    }
}

/// Folds an im2col matrix back into a CHW image, *accumulating* overlapping
/// contributions — the adjoint of [`im2col`], used for input gradients.
///
/// # Panics
///
/// Panics if `cols` does not have the shape implied by `(c, h, w)` and
/// `spec`.
pub fn col2im(cols: &Tensor, c: usize, h: usize, w: usize, spec: Conv2dSpec) -> Tensor {
    let (kh, kw) = spec.kernel;
    let (oh, ow) = spec.output_hw(h, w);
    assert_eq!(
        cols.dims(),
        &[c * kh * kw, oh * ow],
        "col2im: cols shape does not match geometry"
    );
    let mut out = vec![0.0f32; c * h * w];
    col2im_into(cols.data(), c, h, w, spec, &mut out);
    Tensor::from_vec(out, [c, h, w])
}

/// Allocation-free core of [`col2im`]: folds an im2col matrix (raw slice)
/// back into a `c·h·w` destination slice, **accumulating** overlapping
/// contributions. `dst` is not zeroed — callers either pass fresh zeroed
/// storage or rely on the accumulation.
fn col2im_into(src: &[f32], c: usize, h: usize, w: usize, spec: Conv2dSpec, dst: &mut [f32]) {
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let (oh, ow) = spec.output_hw(h, w);
    let cols_n = oh * ow;
    debug_assert_eq!(src.len(), c * kh * kw * cols_n);
    debug_assert_eq!(dst.len(), c * h * w);

    for ch in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ch * kh + ki) * kw + kj;
                let src_row = &src[row * cols_n..(row + 1) * cols_n];
                for oi in 0..oh {
                    let si = (oi * sh + ki) as isize - ph as isize;
                    if si < 0 || si >= h as isize {
                        continue;
                    }
                    let dst_base = (ch * h + si as usize) * w;
                    for oj in 0..ow {
                        let sj = (oj * sw + kj) as isize - pw as isize;
                        if sj < 0 || sj >= w as isize {
                            continue;
                        }
                        dst[dst_base + sj as usize] += src_row[oi * ow + oj];
                    }
                }
            }
        }
    }
}

/// Batched 2-D convolution forward pass.
///
/// `input` is `(n, c, h, w)`, `weight` is `(oc, c, kh, kw)`, optional `bias`
/// is `(oc,)`; the result is `(n, oc, oh, ow)`.
///
/// # Panics
///
/// Panics on rank or dimension mismatches.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>, spec: Conv2dSpec) -> Tensor {
    assert_eq!(input.rank(), 4, "conv2d expects NCHW input");
    assert_eq!(weight.rank(), 4, "conv2d expects OIHW weights");
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (oc, ic, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
    assert_eq!(c, ic, "conv2d: input channels {c} != weight channels {ic}");
    assert_eq!(
        (kh, kw),
        spec.kernel,
        "conv2d: weight kernel does not match spec"
    );
    if let Some(b) = bias {
        assert_eq!(
            b.dims(),
            &[oc],
            "conv2d: bias must have one entry per output channel"
        );
    }
    let (oh, ow) = spec.output_hw(h, w);
    let plane = oh * ow;
    let kdim = c * kh * kw;
    let chw = c * h * w;
    let wm = weight.data(); // (oc, kdim) viewed row-major
    let mut out = vec![0.0f32; n * oc * plane];
    let mut cols = scratch::take(kdim * plane);

    for img in 0..n {
        im2col_into(
            &input.data()[img * chw..(img + 1) * chw],
            c,
            h,
            w,
            spec,
            &mut cols,
        );
        let dst = &mut out[img * oc * plane..(img + 1) * oc * plane];
        // (oc, plane) = (oc, kdim) · (kdim, plane), written in place.
        gemm_strided(oc, plane, kdim, wm, (kdim, 1), &cols, (plane, 1), dst);
        if let Some(b) = bias {
            for och in 0..oc {
                let bv = b.data()[och];
                for x in &mut dst[och * plane..(och + 1) * plane] {
                    *x += bv;
                }
            }
        }
    }
    Tensor::from_vec(out, [n, oc, oh, ow])
}

/// Gradients of a batched 2-D convolution.
///
/// Given the forward inputs and `grad_out = ∂L/∂output` of shape
/// `(n, oc, oh, ow)`, returns `(∂L/∂input, ∂L/∂weight, ∂L/∂bias)`.
///
/// # Panics
///
/// Panics on rank or dimension mismatches.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
) -> (Tensor, Tensor, Tensor) {
    assert_eq!(input.rank(), 4, "conv2d_backward expects NCHW input");
    assert_eq!(grad_out.rank(), 4, "conv2d_backward expects NCHW grad_out");
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (oc, _, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
    let (oh, ow) = spec.output_hw(h, w);
    assert_eq!(
        grad_out.dims(),
        &[n, oc, oh, ow],
        "conv2d_backward: grad_out shape mismatch"
    );

    let plane = oh * ow;
    let kdim = c * kh * kw;
    let chw = c * h * w;
    let wm = weight.data(); // (oc, kdim) viewed row-major
    let mut grad_input = vec![0.0f32; n * chw];
    let mut grad_weight = vec![0.0f32; oc * kdim];
    let mut grad_bias = vec![0.0f32; oc];
    let mut cols = scratch::take(kdim * plane);
    let mut dcols = scratch::take(kdim * plane);

    for img in 0..n {
        im2col_into(
            &input.data()[img * chw..(img + 1) * chw],
            c,
            h,
            w,
            spec,
            &mut cols,
        );
        let go = &grad_out.data()[img * oc * plane..(img + 1) * oc * plane]; // (oc, plane)
                                                                             // dW += dY · colsᵀ — the GEMM's accumulate semantics sum over the
                                                                             // batch directly, no per-image product tensor.
        gemm_strided(
            oc,
            kdim,
            plane,
            go,
            (plane, 1),
            &cols,
            (1, plane),
            &mut grad_weight,
        );
        // db += row sums of dY
        for och in 0..oc {
            grad_bias[och] += go[och * plane..(och + 1) * plane].iter().sum::<f32>();
        }
        // dcols = Wᵀ · dY, then fold back into this image's input gradient.
        dcols.fill(0.0);
        gemm_strided(kdim, plane, oc, wm, (1, kdim), go, (plane, 1), &mut dcols);
        col2im_into(
            &dcols,
            c,
            h,
            w,
            spec,
            &mut grad_input[img * chw..(img + 1) * chw],
        );
    }

    (
        Tensor::from_vec(grad_input, [n, c, h, w]),
        Tensor::from_vec(grad_weight, [oc, c, kh, kw]),
        Tensor::from_vec(grad_bias, [oc]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_geometry() {
        let s = Conv2dSpec::new(3).with_padding(1);
        assert_eq!(s.output_hw(32, 32), (32, 32));
        let s = Conv2dSpec::new(3).with_stride(2).with_padding(1);
        assert_eq!(s.output_hw(32, 32), (16, 16));
        let s = Conv2dSpec::new(1);
        assert_eq!(s.output_hw(7, 5), (7, 5));
    }

    #[test]
    fn im2col_identity_kernel() {
        // A 1x1 kernel with unit stride flattens each channel plane.
        let img = Tensor::from_fn([2, 2, 2], |i| (i[0] * 4 + i[1] * 2 + i[2]) as f32);
        let cols = im2col(&img, Conv2dSpec::new(1));
        assert_eq!(cols.dims(), &[2, 4]);
        assert_eq!(cols.data(), img.data());
    }

    #[test]
    fn conv2d_known_values() {
        // Single 1x3x3 image, single 1x1x2x2 averaging-ish kernel.
        let input = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            [1, 1, 3, 3],
        );
        let weight = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [1, 1, 2, 2]);
        let out = conv2d(&input, &weight, None, Conv2dSpec::new(2));
        // Each output = top-left + bottom-right of the 2x2 window.
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[1.0 + 5.0, 2.0 + 6.0, 4.0 + 8.0, 5.0 + 9.0]);
    }

    #[test]
    fn conv2d_bias_adds_per_channel() {
        let input = Tensor::ones([1, 1, 2, 2]);
        let weight = Tensor::ones([2, 1, 1, 1]);
        let bias = Tensor::from_vec(vec![10.0, -10.0], [2]);
        let out = conv2d(&input, &weight, Some(&bias), Conv2dSpec::new(1));
        assert_eq!(out.dims(), &[1, 2, 2, 2]);
        assert_eq!(&out.data()[..4], &[11.0; 4]);
        assert_eq!(&out.data()[4..], &[-9.0; 4]);
    }

    #[test]
    fn padding_behaves_like_zero_border() {
        let input = Tensor::ones([1, 1, 2, 2]);
        let weight = Tensor::ones([1, 1, 3, 3]);
        let out = conv2d(&input, &weight, None, Conv2dSpec::new(3).with_padding(1));
        // Centre of each output = count of in-bounds ones in the 3x3 window.
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let spec = Conv2dSpec::new(2).with_stride(1).with_padding(1);
        let x = Tensor::from_fn([2, 3, 3], |i| {
            ((i[0] + 1) * (i[1] + 2) * (i[2] + 3)) as f32 * 0.1
        });
        let cols = im2col(&x, spec);
        let y = Tensor::from_fn(cols.dims(), |i| ((i[0] * 7 + i[1] * 3) % 5) as f32 - 2.0);
        let lhs = cols.dot(&y);
        let folded = col2im(&y, 2, 3, 3, spec);
        let rhs = x.dot(&folded);
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn conv_backward_matches_finite_differences() {
        let spec = Conv2dSpec::new(3).with_stride(2).with_padding(1);
        let input = Tensor::from_fn([2, 2, 5, 5], |i| {
            ((i[0] * 31 + i[1] * 17 + i[2] * 7 + i[3] * 3) % 11) as f32 * 0.1 - 0.5
        });
        let weight = Tensor::from_fn([3, 2, 3, 3], |i| {
            ((i[0] * 13 + i[1] * 5 + i[2] * 3 + i[3]) % 7) as f32 * 0.1 - 0.3
        });
        let bias = Tensor::from_vec(vec![0.1, -0.2, 0.3], [3]);

        // Loss = sum(conv output); then dL/dout = ones.
        let out = conv2d(&input, &weight, Some(&bias), spec);
        let grad_out = Tensor::ones(out.dims());
        let (gi, gw, gb) = conv2d_backward(&input, &weight, &grad_out, spec);

        let eps = 1e-2f32;
        let loss = |inp: &Tensor, wt: &Tensor, b: &Tensor| conv2d(inp, wt, Some(b), spec).sum();

        // Check a scattering of coordinates in each gradient.
        for &idx in &[0usize, 7, 23, 49] {
            let mut ip = input.clone();
            ip.data_mut()[idx] += eps;
            let mut im = input.clone();
            im.data_mut()[idx] -= eps;
            let fd = (loss(&ip, &weight, &bias) - loss(&im, &weight, &bias)) / (2.0 * eps);
            assert!(
                (fd - gi.data()[idx]).abs() < 2e-2,
                "grad_input[{idx}]: fd={fd}, analytic={}",
                gi.data()[idx]
            );
        }
        for &idx in &[0usize, 5, 17, 53] {
            let mut wp = weight.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[idx] -= eps;
            let fd = (loss(&input, &wp, &bias) - loss(&input, &wm, &bias)) / (2.0 * eps);
            assert!(
                (fd - gw.data()[idx]).abs() < 2e-1,
                "grad_weight[{idx}]: fd={fd}, analytic={}",
                gw.data()[idx]
            );
        }
        for idx in 0..3 {
            let mut bp = bias.clone();
            bp.data_mut()[idx] += eps;
            let mut bm = bias.clone();
            bm.data_mut()[idx] -= eps;
            let fd = (loss(&input, &weight, &bp) - loss(&input, &weight, &bm)) / (2.0 * eps);
            assert!(
                (fd - gb.data()[idx]).abs() < 2e-1,
                "grad_bias[{idx}]: fd={fd}, analytic={}",
                gb.data()[idx]
            );
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn kernel_too_large_panics() {
        Conv2dSpec::new(5).output_hw(3, 3);
    }
}
