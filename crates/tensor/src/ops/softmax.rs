//! Numerically stable softmax and log-softmax over matrix rows.
//!
//! The network output layer in both evaluated models (paper Fig. 1 ① and the
//! ResNet-18 head) is a softmax; classification error — the statistic BDLFI
//! infers a distribution over — is computed from these rows.

use crate::tensor::Tensor;

impl Tensor {
    /// Row-wise softmax of a rank-2 tensor, stabilised by subtracting the
    /// per-row maximum before exponentiation.
    ///
    /// Rows containing non-finite values (which bit-flip fault injection
    /// readily produces: `NaN`, `±inf` from exponent-bit flips) are mapped to
    /// a uniform distribution so that downstream error statistics stay
    /// well-defined; an injected `NaN` is certainly a misprediction signal,
    /// and uniform output encodes "no information survived".
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "softmax_rows requires a rank-2 tensor");
        let (m, n) = (self.dim(0), self.dim(1));
        let mut out = self.clone();
        for i in 0..m {
            let row = &mut out.data_mut()[i * n..(i + 1) * n];
            if row.iter().any(|x| !x.is_finite()) {
                // Fault-corrupted logits: treat +inf as the dominant class if
                // exactly one is +inf, else fall back to uniform.
                let inf_count = row.iter().filter(|x| **x == f32::INFINITY).count();
                if inf_count == 1 && row.iter().all(|x| !x.is_nan()) {
                    for x in row.iter_mut() {
                        *x = if *x == f32::INFINITY { 1.0 } else { 0.0 };
                    }
                } else {
                    for x in row.iter_mut() {
                        *x = 1.0 / n as f32;
                    }
                }
                continue;
            }
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        out
    }

    /// Row-wise log-softmax of a rank-2 tensor (stable log-sum-exp form).
    ///
    /// Unlike [`Tensor::softmax_rows`] this does **not** sanitise non-finite
    /// rows: it is used for training on clean data, where a non-finite logit
    /// is a bug worth surfacing.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn log_softmax_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "log_softmax_rows requires a rank-2 tensor");
        let (m, n) = (self.dim(0), self.dim(1));
        let mut out = self.clone();
        for i in 0..m {
            let row = &mut out.data_mut()[i * n..(i + 1) * n];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = max
                + row
                    .iter()
                    .map(|&x| ((x - max) as f64).exp())
                    .sum::<f64>()
                    .ln() as f32;
            for x in row.iter_mut() {
                *x -= lse;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], [2, 3]);
        let s = t.softmax_rows();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone: larger logits get larger probabilities.
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
        assert!(s.at(&[0, 1]) > s.at(&[0, 0]));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], [1, 3]);
        let b = a.add_scalar(100.0);
        assert!(a.softmax_rows().approx_eq(&b.softmax_rows(), 1e-6));
    }

    #[test]
    fn nan_rows_become_uniform() {
        let t = Tensor::from_vec(vec![f32::NAN, 1.0, 2.0], [1, 3]);
        let s = t.softmax_rows();
        for &x in s.data() {
            assert!((x - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn single_positive_infinity_dominates() {
        let t = Tensor::from_vec(vec![0.0, f32::INFINITY, 5.0], [1, 3]);
        let s = t.softmax_rows();
        assert_eq!(s.data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn two_infinities_fall_back_to_uniform() {
        let t = Tensor::from_vec(vec![f32::INFINITY, f32::INFINITY, 5.0], [1, 3]);
        let s = t.softmax_rows();
        for &x in s.data() {
            assert!((x - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::from_vec(vec![0.5, -1.5, 2.0, 0.1, 0.2, 0.3], [2, 3]);
        let ls = t.log_softmax_rows();
        let s = t.softmax_rows().map(f32::ln);
        assert!(ls.approx_eq(&s, 1e-5));
    }

    proptest! {
        #[test]
        fn softmax_rows_are_distributions(
            v in proptest::collection::vec(-30.0f32..30.0, 12),
        ) {
            let s = Tensor::from_vec(v, [3, 4]).softmax_rows();
            for i in 0..3 {
                let row = s.row(i);
                prop_assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
                prop_assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            }
        }
    }
}
