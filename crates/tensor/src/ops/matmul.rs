//! Matrix multiplication kernels.
//!
//! Three variants cover everything the training and inference paths need
//! without materialising transposes:
//!
//! * [`Tensor::matmul`] — `C = A · B`
//! * [`Tensor::matmul_tn`] — `C = Aᵀ · B` (used for weight gradients)
//! * [`Tensor::matmul_nt`] — `C = A · Bᵀ` (used for input gradients)
//!
//! All three are thin shims over one cache-blocked, register-tiled kernel
//! ([`super::gemm`]): a transpose is expressed as a swapped stride pair, so
//! the packed micro-panels and the `MR × NR` register tile are shared. That
//! keeps fault-injection campaigns (thousands of full network inferences)
//! tractable on CPU — the paper's point that BDLFI needs only fast
//! *inference*, not debugger hooks.
//!
//! The original naive loops are kept behind `cfg(test)` / the
//! `reference-kernels` feature as independent oracles for equivalence tests
//! and benchmarks.

use crate::ops::gemm::gemm_strided;
use crate::tensor::Tensor;

impl Tensor {
    /// Matrix product `self · rhs` for rank-2 tensors `(m, k) · (k, n)`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions differ.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul: lhs must be rank 2");
        assert_eq!(rhs.rank(), 2, "matmul: rhs must be rank 2");
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(k, k2, "matmul: inner dimensions differ ({k} vs {k2})");

        let mut out = vec![0.0f32; m * n];
        gemm_strided(m, n, k, self.data(), (k, 1), rhs.data(), (n, 1), &mut out);
        Tensor::from_vec(out, [m, n])
    }

    /// Matrix product `selfᵀ · rhs` for rank-2 tensors `(k, m)ᵀ · (k, n)`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the leading dimensions
    /// differ.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_tn: lhs must be rank 2");
        assert_eq!(rhs.rank(), 2, "matmul_tn: rhs must be rank 2");
        let (k, m) = (self.dim(0), self.dim(1));
        let (k2, n) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(k, k2, "matmul_tn: leading dimensions differ ({k} vs {k2})");

        let mut out = vec![0.0f32; m * n];
        // Aᵀ: walking a row of the product walks a column of the stored
        // (k, m) operand, hence the (1, m) stride pair.
        gemm_strided(m, n, k, self.data(), (1, m), rhs.data(), (n, 1), &mut out);
        Tensor::from_vec(out, [m, n])
    }

    /// Matrix product `self · rhsᵀ` for rank-2 tensors `(m, k) · (n, k)ᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the trailing dimensions
    /// differ.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_nt: lhs must be rank 2");
        assert_eq!(rhs.rank(), 2, "matmul_nt: rhs must be rank 2");
        let (m, k) = (self.dim(0), self.dim(1));
        let (n, k2) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(k, k2, "matmul_nt: trailing dimensions differ ({k} vs {k2})");

        let mut out = vec![0.0f32; m * n];
        // Bᵀ: element (l, j) of the logical operand lives at b[j * k + l].
        gemm_strided(m, n, k, self.data(), (k, 1), rhs.data(), (1, k), &mut out);
        Tensor::from_vec(out, [m, n])
    }

    /// Matrix-vector product `self · v` for a rank-2 `(m, k)` tensor and a
    /// rank-1 length-`k` vector, returning a length-`m` vector.
    ///
    /// Stays a plain row-dot loop: with a single output column there is
    /// nothing for the blocked kernel's packing to amortise.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec: lhs must be rank 2");
        assert_eq!(v.rank(), 1, "matvec: rhs must be rank 1");
        let (m, k) = (self.dim(0), self.dim(1));
        assert_eq!(k, v.dim(0), "matvec: dimensions differ");
        let a = self.data();
        let x = v.data();
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            out.push(row.iter().zip(x.iter()).map(|(&p, &q)| p * q).sum());
        }
        Tensor::from_vec(out, [m])
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2d(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose2d requires a rank-2 tensor");
        let (m, n) = (self.dim(0), self.dim(1));
        let a = self.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(out, [n, m])
    }

    /// Reference `self · rhs` using the original naive `i-k-j` loop.
    ///
    /// Kept only as an oracle for equivalence tests and for the
    /// blocked-vs-naive benchmark comparison (`reference-kernels` feature);
    /// production code always takes the blocked path.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions differ.
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn matmul_naive(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul: lhs must be rank 2");
        assert_eq!(rhs.rank(), 2, "matmul: rhs must be rank 2");
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(k, k2, "matmul: inner dimensions differ ({k} vs {k2})");

        let a = self.data();
        let b = rhs.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut out[i * n..(i + 1) * n];
            for (l, &a_il) in a_row.iter().enumerate() {
                if a_il == 0.0 {
                    continue;
                }
                let b_row = &b[l * n..(l + 1) * n];
                for (c, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                    *c += a_il * bv;
                }
            }
        }
        Tensor::from_vec(out, [m, n])
    }

    /// Reference `selfᵀ · rhs` (naive loop); see [`Tensor::matmul_naive`].
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the leading dimensions
    /// differ.
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn matmul_tn_naive(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_tn: lhs must be rank 2");
        assert_eq!(rhs.rank(), 2, "matmul_tn: rhs must be rank 2");
        let (k, m) = (self.dim(0), self.dim(1));
        let (k2, n) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(k, k2, "matmul_tn: leading dimensions differ ({k} vs {k2})");

        let a = self.data();
        let b = rhs.data();
        let mut out = vec![0.0f32; m * n];
        for l in 0..k {
            let a_row = &a[l * m..(l + 1) * m];
            let b_row = &b[l * n..(l + 1) * n];
            for (i, &a_li) in a_row.iter().enumerate() {
                if a_li == 0.0 {
                    continue;
                }
                let c_row = &mut out[i * n..(i + 1) * n];
                for (c, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                    *c += a_li * bv;
                }
            }
        }
        Tensor::from_vec(out, [m, n])
    }

    /// Reference `self · rhsᵀ` (naive loop); see [`Tensor::matmul_naive`].
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the trailing dimensions
    /// differ.
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn matmul_nt_naive(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_nt: lhs must be rank 2");
        assert_eq!(rhs.rank(), 2, "matmul_nt: rhs must be rank 2");
        let (m, k) = (self.dim(0), self.dim(1));
        let (n, k2) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(k, k2, "matmul_nt: trailing dimensions differ ({k} vs {k2})");

        let a = self.data();
        let b = rhs.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut out[i * n..(i + 1) * n];
            for (j, c) in c_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                    acc += av * bv;
                }
                *c = acc;
            }
        }
        Tensor::from_vec(out, [m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], [3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_fn([4, 4], |i| (i[0] * 4 + i[1]) as f32);
        assert!(a.matmul(&Tensor::eye(4)).approx_eq(&a, 1e-6));
        assert!(Tensor::eye(4).matmul(&a).approx_eq(&a, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_panics_on_dim_mismatch() {
        Tensor::zeros([2, 3]).matmul(&Tensor::zeros([2, 3]));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_fn([3, 4], |i| (i[0] + 2 * i[1]) as f32);
        let v = Tensor::from_vec(vec![1.0, -1.0, 2.0, 0.5], [4]);
        let via_matmul = a.matmul(&v.reshape([4, 1]));
        let direct = a.matvec(&v);
        assert!(direct.reshape([3, 1]).approx_eq(&via_matmul, 1e-5));
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_fn([3, 5], |i| (i[0] * 5 + i[1]) as f32);
        assert_eq!(a.transpose2d().transpose2d(), a);
        assert_eq!(a.transpose2d().at(&[4, 2]), a.at(&[2, 4]));
    }

    fn pseudo_random(dims: [usize; 2], salt: usize) -> Tensor {
        Tensor::from_fn(dims, |i| {
            let x = (i[0] * 131 + i[1] * 17 + salt * 7919) % 1999;
            x as f32 / 500.0 - 2.0
        })
    }

    #[test]
    fn blocked_matches_naive_across_tile_boundaries() {
        // Shapes chosen to straddle the MR=4 / NR=16 / MC=64 / KC=NC=256
        // tile boundaries, including partial edge tiles everywhere.
        for &(m, k, n) in &[
            (1, 1, 1),
            (2, 3, 4),
            (5, 7, 3),
            (17, 33, 9),
            (64, 64, 64),
            (65, 100, 130),
            (31, 257, 66),
        ] {
            let a = pseudo_random([m, k], 1);
            let b = pseudo_random([k, n], 2);
            let tol = 1e-4 * k as f32;
            assert!(
                a.matmul(&b).approx_eq(&a.matmul_naive(&b), tol),
                "matmul mismatch at ({m},{k},{n})"
            );

            let at = pseudo_random([k, m], 3);
            assert!(
                at.matmul_tn(&b).approx_eq(&at.matmul_tn_naive(&b), tol),
                "matmul_tn mismatch at ({m},{k},{n})"
            );

            let bt = pseudo_random([n, k], 4);
            assert!(
                a.matmul_nt(&bt).approx_eq(&a.matmul_nt_naive(&bt), tol),
                "matmul_nt mismatch at ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn blocked_kernel_is_deterministic() {
        // Same operands → bitwise-identical output on repeated calls; the
        // incremental-inference cache depends on this.
        let a = pseudo_random([37, 53], 5);
        let b = pseudo_random([53, 29], 6);
        let first = a.matmul(&b);
        for _ in 0..3 {
            assert_eq!(a.matmul(&b).data(), first.data());
        }
    }

    fn arb_matrix(m: usize, n: usize) -> impl Strategy<Value = Tensor> {
        proptest::collection::vec(-5.0f32..5.0, m * n)
            .prop_map(move |v| Tensor::from_vec(v, [m, n]))
    }

    proptest! {
        #[test]
        fn tn_matches_explicit_transpose(
            a in arb_matrix(4, 3),
            b in arb_matrix(4, 5),
        ) {
            let expected = a.transpose2d().matmul(&b);
            prop_assert!(a.matmul_tn(&b).approx_eq(&expected, 1e-4));
        }

        #[test]
        fn nt_matches_explicit_transpose(
            a in arb_matrix(4, 3),
            b in arb_matrix(5, 3),
        ) {
            let expected = a.matmul(&b.transpose2d());
            prop_assert!(a.matmul_nt(&b).approx_eq(&expected, 1e-4));
        }

        #[test]
        fn matmul_distributes_over_addition(
            a in arb_matrix(3, 4),
            b in arb_matrix(4, 2),
            c in arb_matrix(4, 2),
        ) {
            let lhs = a.matmul(&b.add_t(&c));
            let rhs = a.matmul(&b).add_t(&a.matmul(&c));
            prop_assert!(lhs.approx_eq(&rhs, 1e-3));
        }

        #[test]
        fn blocked_matches_naive_on_random_operands(
            a in arb_matrix(9, 21),
            b in arb_matrix(21, 13),
        ) {
            prop_assert!(a.matmul(&b).approx_eq(&a.matmul_naive(&b), 1e-3));
        }
    }
}
