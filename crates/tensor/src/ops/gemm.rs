//! Cache-blocked, register-tiled GEMM shared by every matmul variant.
//!
//! One implementation covers `A·B`, `Aᵀ·B` and `A·Bᵀ`: operands are
//! described by `(row_stride, col_stride)` pairs, so a transpose is just a
//! swapped stride pair and never materialised. The kernel follows the
//! classic GEBP decomposition:
//!
//! * the `k` dimension is split into panels of [`KC`] so a packed slice of
//!   `B` stays resident in L2 across the whole row sweep;
//! * `A` is packed into micro-panels of [`MR`] rows, `B` into micro-panels
//!   of [`NR`] columns, both contiguous regardless of the caller's layout;
//! * the micro-kernel keeps an `MR × NR` accumulator block in registers and
//!   streams the packed panels with unit stride, which LLVM auto-vectorises.
//!
//! Determinism matters here: each output element is reduced in a fixed
//! order (`k` blocks ascending, elements ascending within a block) that
//! depends only on `k`, never on the values or on which rows share a call.
//! Row `i` of `C` is a function of row `i` of `A` and of `B` alone, so
//! per-example logits are bit-identical whether a batch is computed whole,
//! split, or resumed from a cached prefix activation — the property the
//! incremental-inference engine in `bdlfi-nn` relies on.

use crate::scratch;

/// Rows per micro-panel of `A` (register-tile height).
const MR: usize = 4;
/// Columns per micro-panel of `B` (register-tile width; two 8-lane vectors).
const NR: usize = 16;
/// `k`-dimension block: one packed `A` micro-panel column fits in L1.
const KC: usize = 256;
/// Row block of `A` packed per inner iteration.
const MC: usize = 64;
/// Column block of `B` packed per L2-resident panel.
const NC: usize = 256;

/// Computes `C += A' · B'` where `A'` is `m × k`, `B'` is `k × n` and `C`
/// is row-major `m × n`.
///
/// `A'(i, l) = a[i * a_rs + l * a_cs]` and `B'(l, j) = b[l * b_rs + j * b_cs]`,
/// so passing `(k, 1)` describes a row-major operand and `(1, rows)` its
/// transpose. The result is **accumulated** into `c`; callers wanting a
/// plain product must pass a zeroed buffer.
///
/// # Panics
///
/// Panics (via slice indexing) if the strides describe reads outside `a`
/// or `b`, or if `c` is shorter than `m * n`.
#[allow(clippy::too_many_arguments)] // BLAS-style interface: dims + strided operands
pub(crate) fn gemm_strided(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    (a_rs, a_cs): (usize, usize),
    b: &[f32],
    (b_rs, b_cs): (usize, usize),
    c: &mut [f32],
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let mut apack = scratch::take(MC * KC);
    let mut bpack = scratch::take(KC * NC);

    for lc in (0..k).step_by(KC) {
        let kc = KC.min(k - lc);
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            pack_b(&mut bpack, b, b_rs, b_cs, lc, kc, jc, nc);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(&mut apack, a, a_rs, a_cs, ic, mc, lc, kc);
                for jr in (0..nc).step_by(NR) {
                    let nr = NR.min(nc - jr);
                    let bp = &bpack[(jr / NR) * kc * NR..][..kc * NR];
                    for ir in (0..mc).step_by(MR) {
                        let mr = MR.min(mc - ir);
                        let ap = &apack[(ir / MR) * kc * MR..][..kc * MR];
                        let c_off = (ic + ir) * n + jc + jr;
                        micro_kernel(kc, ap, bp, &mut c[c_off..], n, mr, nr);
                    }
                }
            }
        }
    }
}

/// Packs an `mc × kc` block of `A'` into `MR`-row micro-panels, k-major
/// within each panel. Rows past `mc` are zero-padded so the micro-kernel
/// never branches on the row count.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    dst: &mut [f32],
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    row0: usize,
    mc: usize,
    col0: usize,
    kc: usize,
) {
    for (p, panel) in dst.chunks_mut(kc * MR).take(mc.div_ceil(MR)).enumerate() {
        for l in 0..kc {
            for r in 0..MR {
                let i = p * MR + r;
                panel[l * MR + r] = if i < mc {
                    a[(row0 + i) * a_rs + (col0 + l) * a_cs]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs a `kc × nc` block of `B'` into `NR`-column micro-panels, k-major
/// within each panel, zero-padding columns past `nc`.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    dst: &mut [f32],
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    row0: usize,
    kc: usize,
    col0: usize,
    nc: usize,
) {
    for (p, panel) in dst.chunks_mut(kc * NR).take(nc.div_ceil(NR)).enumerate() {
        for l in 0..kc {
            for q in 0..NR {
                let j = p * NR + q;
                panel[l * NR + q] = if j < nc {
                    b[(row0 + l) * b_rs + (col0 + j) * b_cs]
                } else {
                    0.0
                };
            }
        }
    }
}

/// `MR × NR` register-tile inner kernel over one packed `kc` panel pair.
///
/// Accumulates into the top-left `mr × nr` corner of `c` (leading dimension
/// `ldc`); the full-size accumulator block lets the hot loop stay
/// branch-free while edge tiles simply discard the padded lanes.
///
/// Dispatches to an AVX2-compiled copy of [`micro_kernel_body`] when the
/// CPU supports it. The two copies run the very same Rust code and SIMD
/// lanes only span *different* output elements — each `acc[r][q]` is still
/// reduced over `l` sequentially — so the dispatch is bit-transparent:
/// scalar, SSE2 and AVX2 builds all produce identical results.
fn micro_kernel(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: calling a `#[target_feature(enable = "avx2")]` function
        // is sound iff the CPU supports AVX2, and the runtime
        // `is_x86_feature_detected!` check on the line above guarantees
        // exactly that. Feature availability is the *only* proof
        // obligation here: `micro_kernel_avx2` takes ordinary slices and
        // its body is safe Rust (bounds-checked indexing, no raw
        // pointers), so no aliasing, alignment or in-bounds reasoning is
        // delegated to the caller.
        return unsafe { micro_kernel_avx2(kc, ap, bp, c, ldc, mr, nr) };
    }
    micro_kernel_body(kc, ap, bp, c, ldc, mr, nr);
}

/// [`micro_kernel_body`] recompiled with 256-bit vectors: one row of the
/// accumulator block is two `ymm` registers, so the whole `MR × NR` tile
/// lives in eight of the sixteen vector registers.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn micro_kernel_avx2(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    micro_kernel_body(kc, ap, bp, c, ldc, mr, nr);
}

#[inline(always)]
fn micro_kernel_body(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    let (a_panels, _) = ap[..kc * MR].as_chunks::<MR>();
    let (b_panels, _) = bp[..kc * NR].as_chunks::<NR>();
    for (av, bv) in a_panels.iter().zip(b_panels) {
        for r in 0..MR {
            let a = av[r];
            for q in 0..NR {
                acc[r][q] += a * bv[q];
            }
        }
    }
    for r in 0..mr {
        let row = &mut c[r * ldc..r * ldc + nr];
        for (dst, &v) in row.iter_mut().zip(&acc[r][..nr]) {
            *dst += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Straight triple-loop reference with the same stride convention.
    #[allow(clippy::too_many_arguments)]
    fn gemm_reference(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        (a_rs, a_cs): (usize, usize),
        b: &[f32],
        (b_rs, b_cs): (usize, usize),
        c: &mut [f32],
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f64;
                for l in 0..k {
                    s += f64::from(a[i * a_rs + l * a_cs]) * f64::from(b[l * b_rs + j * b_cs]);
                }
                c[i * n + j] += s as f32;
            }
        }
    }

    fn fill(len: usize, salt: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (x % 2001) as f32 / 1000.0 - 1.0
            })
            .collect()
    }

    fn check(m: usize, n: usize, k: usize) {
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        gemm_strided(m, n, k, &a, (k, 1), &b, (n, 1), &mut got);
        gemm_reference(m, n, k, &a, (k, 1), &b, (n, 1), &mut want);
        let tol = 1e-4 * k as f32;
        for (i, (&g, &w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() <= tol,
                "({m}x{n}x{k}) element {i}: blocked {g} vs reference {w}"
            );
        }
    }

    #[test]
    fn matches_reference_across_block_boundaries() {
        // Sizes straddling every tile boundary: MR=4, NR=16, MC=64, NC/KC=256.
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 2),
            (4, 16, 8),
            (5, 17, 9),
            (63, 15, 31),
            (64, 16, 64),
            (65, 17, 65),
            (130, 70, 257),
            (7, 300, 300),
        ] {
            check(m, n, k);
        }
    }

    #[test]
    fn transposed_strides_match_reference() {
        let (m, n, k) = (33, 29, 70);
        // A stored (k, m) column-major-for-A'; B stored (n, k).
        let a = fill(k * m, 3);
        let b = fill(n * k, 4);
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        gemm_strided(m, n, k, &a, (1, m), &b, (1, k), &mut got);
        gemm_reference(m, n, k, &a, (1, m), &b, (1, k), &mut want);
        for (&g, &w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-2, "{g} vs {w}");
        }
    }

    #[test]
    fn accumulates_into_existing_output() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![1.0, 0.0, 0.0, 1.0];
        let mut c = vec![10.0, 20.0, 30.0, 40.0];
        gemm_strided(2, 2, 2, &a, (2, 1), &b, (2, 1), &mut c);
        assert_eq!(c, vec![11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn empty_dimensions_are_no_ops() {
        let mut c = vec![7.0f32; 4];
        gemm_strided(0, 2, 3, &[], (3, 1), &[0.0; 6], (2, 1), &mut c);
        gemm_strided(2, 2, 0, &[], (0, 1), &[], (2, 1), &mut c);
        assert_eq!(c, vec![7.0; 4]);
    }

    #[test]
    fn results_do_not_depend_on_batch_composition() {
        // Row i of C must be identical whether computed as part of a large
        // batch or alone — the bitwise guarantee incremental inference needs.
        let (m, n, k) = (37, 45, 53);
        let a = fill(m * k, 5);
        let b = fill(k * n, 6);
        let mut whole = vec![0.0f32; m * n];
        gemm_strided(m, n, k, &a, (k, 1), &b, (n, 1), &mut whole);
        for i in [0usize, 1, 17, 36] {
            let mut row = vec![0.0f32; n];
            gemm_strided(1, n, k, &a[i * k..], (k, 1), &b, (n, 1), &mut row);
            assert_eq!(&whole[i * n..(i + 1) * n], &row[..], "row {i} differs");
        }
    }
}
