//! Strided f32 GEMM entry point, routed through the kernel selector.
//!
//! One interface covers `A·B`, `Aᵀ·B` and `A·Bᵀ`: operands are described
//! by `(row_stride, col_stride)` pairs, so a transpose is just a swapped
//! stride pair and never materialised. The actual kernel — scalar,
//! autovectorized or AVX2 intrinsics, with shape-tuned cache blocking —
//! is chosen per call by [`crate::kernels::select_f32`] and can be forced
//! process-wide with `BDLFI_KERNEL=scalar|autovec|avx2`.
//!
//! Determinism matters here: all variants reduce each output element in
//! one fixed order (`k` blocks of `kernels::KC` ascending, elements
//! ascending within a block) that depends only on `k`, never on the
//! values, the chosen variant, or which rows share a call. Row `i` of `C`
//! is a function of row `i` of `A` and of `B` alone, so per-example
//! logits are bit-identical whether a batch is computed whole, split,
//! resumed from a cached prefix activation, or run under a different
//! `BDLFI_KERNEL` — the property the incremental-inference engine in
//! `bdlfi-nn` and the sparse-delta path rely on.

use crate::kernels::{self, gemm_f32};

/// Computes `C += A' · B'` where `A'` is `m × k`, `B'` is `k × n` and `C`
/// is row-major `m × n`.
///
/// `A'(i, l) = a[i * a_rs + l * a_cs]` and `B'(l, j) = b[l * b_rs + j * b_cs]`,
/// so passing `(k, 1)` describes a row-major operand and `(1, rows)` its
/// transpose. The result is **accumulated** into `c`; callers wanting a
/// plain product must pass a zeroed buffer.
///
/// # Panics
///
/// Panics (via slice indexing) if the strides describe reads outside `a`
/// or `b`, or if `c` is shorter than `m * n`.
#[allow(clippy::too_many_arguments)] // BLAS-style interface: dims + strided operands
pub(crate) fn gemm_strided(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_str: (usize, usize),
    b: &[f32],
    b_str: (usize, usize),
    c: &mut [f32],
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    gemm_f32::run(kernels::select_f32(m, n, k), m, n, k, a, a_str, b, b_str, c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::gemm_f32::gemm_f32_reference;

    fn fill(len: usize, salt: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (x % 2001) as f32 / 1000.0 - 1.0
            })
            .collect()
    }

    fn check(m: usize, n: usize, k: usize) {
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        gemm_strided(m, n, k, &a, (k, 1), &b, (n, 1), &mut got);
        gemm_f32_reference(m, n, k, &a, (k, 1), &b, (n, 1), &mut want);
        let tol = 1e-4 * k as f32;
        for (i, (&g, &w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() <= tol,
                "({m}x{n}x{k}) element {i}: selected {g} vs reference {w}"
            );
        }
    }

    #[test]
    fn matches_reference_across_block_boundaries() {
        // Sizes straddling every tile boundary (MR=4, NR=16, MC=64,
        // NC/KC=256) and every selector shape class.
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 2),
            (4, 16, 8),
            (5, 17, 9),
            (63, 15, 31),
            (64, 16, 64),
            (65, 17, 65),
            (130, 70, 257),
            (7, 300, 300),
        ] {
            check(m, n, k);
        }
    }

    #[test]
    fn transposed_strides_match_reference() {
        let (m, n, k) = (33, 29, 70);
        // A stored (k, m) column-major-for-A'; B stored (n, k).
        let a = fill(k * m, 3);
        let b = fill(n * k, 4);
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        gemm_strided(m, n, k, &a, (1, m), &b, (1, k), &mut got);
        gemm_f32_reference(m, n, k, &a, (1, m), &b, (1, k), &mut want);
        for (&g, &w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-2, "{g} vs {w}");
        }
    }

    #[test]
    fn accumulates_into_existing_output() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![1.0, 0.0, 0.0, 1.0];
        let mut c = vec![10.0, 20.0, 30.0, 40.0];
        gemm_strided(2, 2, 2, &a, (2, 1), &b, (2, 1), &mut c);
        assert_eq!(c, vec![11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn empty_dimensions_are_no_ops() {
        let mut c = vec![7.0f32; 4];
        gemm_strided(0, 2, 3, &[], (3, 1), &[0.0; 6], (2, 1), &mut c);
        gemm_strided(2, 2, 0, &[], (0, 1), &[], (2, 1), &mut c);
        assert_eq!(c, vec![7.0; 4]);
    }

    #[test]
    fn results_do_not_depend_on_batch_composition() {
        // Row i of C must be identical whether computed as part of a large
        // batch or alone — the bitwise guarantee incremental inference
        // needs. This is stronger than it looks under the selector: the
        // m=1 sub-call classifies as Gemv (scalar kernel) while the whole
        // batch runs the packed kernel, so this test also pins the
        // cross-variant bit-identity contract at the public boundary.
        let (m, n, k) = (37, 45, 53);
        let a = fill(m * k, 5);
        let b = fill(k * n, 6);
        let mut whole = vec![0.0f32; m * n];
        gemm_strided(m, n, k, &a, (k, 1), &b, (n, 1), &mut whole);
        for i in [0usize, 1, 17, 36] {
            let mut row = vec![0.0f32; n];
            gemm_strided(1, n, k, &a[i * k..], (k, 1), &b, (n, 1), &mut row);
            assert_eq!(&whole[i * n..(i + 1) * n], &row[..], "row {i} differs");
        }
    }
}
