//! Pooling kernels for NCHW tensors: max pooling (with argmax tracking for
//! the backward pass) and global average pooling (the ResNet-18 head).

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Geometry of a 2-D pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pool2dSpec {
    /// Window height and width.
    pub kernel: (usize, usize),
    /// Vertical and horizontal stride.
    pub stride: (usize, usize),
    /// Zero padding applied on both sides (max pooling treats padded cells
    /// as `-inf`, i.e. they never win).
    pub padding: (usize, usize),
}

impl Pool2dSpec {
    /// Square window with stride equal to the window size (non-overlapping).
    pub fn new(kernel: usize) -> Self {
        Pool2dSpec {
            kernel: (kernel, kernel),
            stride: (kernel, kernel),
            padding: (0, 0),
        }
    }

    /// Sets a uniform stride, returning the modified spec.
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.stride = (stride, stride);
        self
    }

    /// Sets a uniform padding, returning the modified spec.
    pub fn with_padding(mut self, padding: usize) -> Self {
        self.padding = (padding, padding);
        self
    }

    /// Output spatial size for an input of size `(h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit in the padded input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let (kh, kw) = self.kernel;
        let (sh, sw) = self.stride;
        let (ph, pw) = self.padding;
        assert!(
            h + 2 * ph >= kh && w + 2 * pw >= kw,
            "pool window {kh}x{kw} does not fit input {h}x{w} with padding {ph}x{pw}"
        );
        ((h + 2 * ph - kh) / sh + 1, (w + 2 * pw - kw) / sw + 1)
    }
}

/// Max-pooling forward pass over an NCHW tensor.
///
/// Returns the pooled tensor and, for each output element, the flat index of
/// the winning input element (used by [`maxpool2d_backward`]).
///
/// # Panics
///
/// Panics if `input` is not rank 4 or the window does not fit.
pub fn maxpool2d(input: &Tensor, spec: Pool2dSpec) -> (Tensor, Vec<usize>) {
    assert_eq!(input.rank(), 4, "maxpool2d expects an NCHW tensor");
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let (oh, ow) = spec.output_hw(h, w);
    let src = input.data();
    let mut out = Vec::with_capacity(n * c * oh * ow);
    let mut argmax = Vec::with_capacity(n * c * oh * ow);

    for img in 0..n {
        for ch in 0..c {
            let base = (img * c + ch) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = usize::MAX;
                    for ki in 0..kh {
                        let si = (oi * sh + ki) as isize - ph as isize;
                        if si < 0 || si >= h as isize {
                            continue;
                        }
                        for kj in 0..kw {
                            let sj = (oj * sw + kj) as isize - pw as isize;
                            if sj < 0 || sj >= w as isize {
                                continue;
                            }
                            let idx = base + si as usize * w + sj as usize;
                            let v = src[idx];
                            // NaNs (possible under fault injection) lose ties
                            // deterministically: only strictly greater wins.
                            if best_idx == usize::MAX || v > best {
                                best = v;
                                best_idx = idx;
                            }
                        }
                    }
                    debug_assert_ne!(best_idx, usize::MAX, "empty pooling window");
                    out.push(best);
                    argmax.push(best_idx);
                }
            }
        }
    }
    (Tensor::from_vec(out, [n, c, oh, ow]), argmax)
}

/// Max-pooling backward pass: routes each output gradient to the input
/// element that won the forward max.
///
/// # Panics
///
/// Panics if `grad_out.len() != argmax.len()`.
pub fn maxpool2d_backward(grad_out: &Tensor, argmax: &[usize], input_dims: &[usize]) -> Tensor {
    assert_eq!(
        grad_out.len(),
        argmax.len(),
        "maxpool2d_backward: grad/argmax length mismatch"
    );
    let mut grad_in = Tensor::zeros(input_dims.to_vec());
    let gi = grad_in.data_mut();
    for (&g, &idx) in grad_out.data().iter().zip(argmax.iter()) {
        gi[idx] += g;
    }
    grad_in
}

/// Global average pooling: `(n, c, h, w) -> (n, c)`.
///
/// # Panics
///
/// Panics if `input` is not rank 4.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    assert_eq!(input.rank(), 4, "global_avg_pool expects an NCHW tensor");
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let plane = h * w;
    let mut out = Vec::with_capacity(n * c);
    for img in 0..n {
        for ch in 0..c {
            let base = (img * c + ch) * plane;
            let s: f32 = input.data()[base..base + plane].iter().sum();
            out.push(s / plane as f32);
        }
    }
    Tensor::from_vec(out, [n, c])
}

/// Backward pass of [`global_avg_pool`]: spreads each `(n, c)` gradient
/// uniformly over the corresponding `h × w` plane.
///
/// # Panics
///
/// Panics if `grad_out` is not `(n, c)` for the given input dims.
pub fn global_avg_pool_backward(grad_out: &Tensor, input_dims: &[usize]) -> Tensor {
    assert_eq!(
        input_dims.len(),
        4,
        "global_avg_pool_backward expects NCHW dims"
    );
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    assert_eq!(
        grad_out.dims(),
        &[n, c],
        "global_avg_pool_backward: grad shape mismatch"
    );
    let plane = (h * w) as f32;
    let mut out = vec![0.0f32; n * c * h * w];
    for img in 0..n {
        for ch in 0..c {
            let g = grad_out.data()[img * c + ch] / plane;
            let base = (img * c + ch) * h * w;
            for x in &mut out[base..base + h * w] {
                *x = g;
            }
        }
    }
    Tensor::from_vec(out, [n, c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_known_values() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 1.0, 2.0, 3.0, //
                0.0, 0.0, 4.0, 4.0,
            ],
            [1, 1, 4, 4],
        );
        let (out, argmax) = maxpool2d(&input, Pool2dSpec::new(2));
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[4.0, 8.0, 9.0, 4.0]);
        assert_eq!(argmax, vec![5, 7, 8, 14]);
    }

    #[test]
    fn maxpool_backward_routes_to_winners() {
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 2, 2]);
        let (_, argmax) = maxpool2d(&input, Pool2dSpec::new(2));
        let grad_out = Tensor::from_vec(vec![10.0], [1, 1, 1, 1]);
        let gi = maxpool2d_backward(&grad_out, &argmax, &[1, 1, 2, 2]);
        assert_eq!(gi.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn maxpool_with_padding_ignores_border() {
        let input = Tensor::from_vec(vec![-1.0, -2.0, -3.0, -4.0], [1, 1, 2, 2]);
        let spec = Pool2dSpec {
            kernel: (2, 2),
            stride: (2, 2),
            padding: (1, 1),
        };
        let (out, _) = maxpool2d(&input, spec);
        // Every window contains exactly one real (negative) element; padding
        // must not contribute zeros that would beat them.
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn overlapping_stride_pool() {
        let input = Tensor::from_vec((1..=9).map(|x| x as f32).collect(), [1, 1, 3, 3]);
        let spec = Pool2dSpec::new(2).with_stride(1);
        let (out, _) = maxpool2d(&input, spec);
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn global_avg_pool_means_planes() {
        let input = Tensor::from_vec(
            vec![1.0, 3.0, 5.0, 7.0, 10.0, 20.0, 30.0, 40.0],
            [1, 2, 2, 2],
        );
        let out = global_avg_pool(&input);
        assert_eq!(out.dims(), &[1, 2]);
        assert_eq!(out.data(), &[4.0, 25.0]);
    }

    #[test]
    fn gap_backward_is_uniform_spread() {
        let grad = Tensor::from_vec(vec![8.0, 4.0], [1, 2]);
        let gi = global_avg_pool_backward(&grad, &[1, 2, 2, 2]);
        assert_eq!(&gi.data()[..4], &[2.0; 4]);
        assert_eq!(&gi.data()[4..], &[1.0; 4]);
    }

    #[test]
    fn gap_roundtrip_adjoint() {
        // <gap(x), y> == <x, gap_backward(y)>
        let x = Tensor::from_fn([2, 3, 2, 2], |i| (i[0] + i[1] * 2 + i[2] * 3 + i[3]) as f32);
        let gx = global_avg_pool(&x);
        let y = Tensor::from_fn([2, 3], |i| (i[0] * 3 + i[1]) as f32 - 2.0);
        let lhs = gx.dot(&y);
        let rhs = x.dot(&global_avg_pool_backward(&y, x.dims()));
        assert!((lhs - rhs).abs() < 1e-3);
    }
}
