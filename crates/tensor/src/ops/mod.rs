//! Numeric kernels: element-wise arithmetic, matrix multiplication,
//! convolution, pooling, reductions, padding and softmax.

pub mod concat;
pub mod conv;
pub mod elementwise;
pub(crate) mod gemm;
pub mod matmul;
pub mod pool;
pub mod qgemm;
pub mod reduce;
pub mod softmax;
