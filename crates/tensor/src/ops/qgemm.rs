//! Cache-blocked integer GEMM for the quantized inference path:
//! `i8 × i8 → i32` accumulation.
//!
//! The blocking mirrors [`super::gemm`] (GEBP decomposition, packed
//! `MR`-row / `NR`-column micro-panels, a register-resident `MR × NR`
//! accumulator tile) so the two kernels share cache behaviour, but the
//! arithmetic is exact: integer accumulation is associative, so the result
//! is bit-identical at every block size, batch composition and worker
//! count by construction — the determinism the fault-evaluation engine
//! requires comes for free on the int8 path.
//!
//! Operands are row-major (`a` is `m × k`, `b` is `k × n`); quantized
//! weights are packed row-major by the calibrator, so the strided-operand
//! generality of the f32 kernel is not needed here.

/// Rows per micro-panel of `a` (register-tile height).
const MR: usize = 4;
/// Columns per micro-panel of `b` (register-tile width).
const NR: usize = 16;
/// `k`-dimension block.
const KC: usize = 256;
/// Row block of `a` packed per inner iteration.
const MC: usize = 64;
/// Column block of `b` packed per L2-resident panel.
const NC: usize = 256;

/// Largest `k` for which `k · 127 · 127` fits an `i32` accumulator with
/// headroom; callers are asserted below this bound.
const K_MAX: usize = 100_000;

/// Computes `C += A · B` where `A` is row-major `m × k` int8, `B` is
/// row-major `k × n` int8 and `C` is row-major `m × n` int32.
///
/// The result is **accumulated** into `c`; callers wanting a plain product
/// must pass a zeroed buffer.
///
/// # Panics
///
/// Panics if a slice is shorter than its dimensions require, or if
/// `k > 100_000` (i32 accumulator overflow headroom).
pub fn qgemm(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    assert!(
        k <= K_MAX,
        "qgemm: k = {k} exceeds i32 accumulation headroom"
    );
    assert!(a.len() >= m * k, "qgemm: a shorter than m*k");
    assert!(b.len() >= k * n, "qgemm: b shorter than k*n");
    assert!(c.len() >= m * n, "qgemm: c shorter than m*n");

    let mut apack = vec![0i8; MC * KC];
    let mut bpack = vec![0i8; KC * NC];

    for lc in (0..k).step_by(KC) {
        let kc = KC.min(k - lc);
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            pack_b(&mut bpack, b, n, lc, kc, jc, nc);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(&mut apack, a, k, ic, mc, lc, kc);
                for jr in (0..nc).step_by(NR) {
                    let nr = NR.min(nc - jr);
                    let bp = &bpack[(jr / NR) * kc * NR..][..kc * NR];
                    for ir in (0..mc).step_by(MR) {
                        let mr = MR.min(mc - ir);
                        let ap = &apack[(ir / MR) * kc * MR..][..kc * MR];
                        let c_off = (ic + ir) * n + jc + jr;
                        micro_kernel(kc, ap, bp, &mut c[c_off..], n, mr, nr);
                    }
                }
            }
        }
    }
}

/// Packs an `mc × kc` block of `a` into `MR`-row micro-panels, zero-padding
/// rows past `mc` (zero contributes nothing to an integer dot product).
fn pack_a(dst: &mut [i8], a: &[i8], lda: usize, row0: usize, mc: usize, col0: usize, kc: usize) {
    for (p, panel) in dst.chunks_mut(kc * MR).take(mc.div_ceil(MR)).enumerate() {
        for l in 0..kc {
            for r in 0..MR {
                let i = p * MR + r;
                panel[l * MR + r] = if i < mc {
                    a[(row0 + i) * lda + col0 + l]
                } else {
                    0
                };
            }
        }
    }
}

/// Packs a `kc × nc` block of `b` into `NR`-column micro-panels,
/// zero-padding columns past `nc`.
fn pack_b(dst: &mut [i8], b: &[i8], ldb: usize, row0: usize, kc: usize, col0: usize, nc: usize) {
    for (p, panel) in dst.chunks_mut(kc * NR).take(nc.div_ceil(NR)).enumerate() {
        for l in 0..kc {
            for q in 0..NR {
                let j = p * NR + q;
                panel[l * NR + q] = if j < nc {
                    b[(row0 + l) * ldb + col0 + j]
                } else {
                    0
                };
            }
        }
    }
}

/// `MR × NR` integer register-tile kernel over one packed `kc` panel pair,
/// accumulating into the top-left `mr × nr` corner of `c`.
///
/// Dispatches to an AVX2-compiled copy of the same body when available;
/// integer arithmetic is exact, so the dispatch cannot change results.
fn micro_kernel(kc: usize, ap: &[i8], bp: &[i8], c: &mut [i32], ldc: usize, mr: usize, nr: usize) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: calling a `#[target_feature(enable = "avx2")]` function
        // is sound iff the CPU supports AVX2, which the runtime
        // `is_x86_feature_detected!` check on the line above guarantees.
        // That is the only proof obligation: `micro_kernel_avx2` takes
        // ordinary slices and its body is safe Rust (bounds-checked i8/i32
        // indexing, no raw pointers), so no aliasing, alignment or
        // in-bounds reasoning leaks to this call site.
        return unsafe { micro_kernel_avx2(kc, ap, bp, c, ldc, mr, nr) };
    }
    micro_kernel_body(kc, ap, bp, c, ldc, mr, nr);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn micro_kernel_avx2(
    kc: usize,
    ap: &[i8],
    bp: &[i8],
    c: &mut [i32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    micro_kernel_body(kc, ap, bp, c, ldc, mr, nr);
}

#[inline(always)]
fn micro_kernel_body(
    kc: usize,
    ap: &[i8],
    bp: &[i8],
    c: &mut [i32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0i32; NR]; MR];
    let (a_panels, _) = ap[..kc * MR].as_chunks::<MR>();
    let (b_panels, _) = bp[..kc * NR].as_chunks::<NR>();
    for (av, bv) in a_panels.iter().zip(b_panels) {
        for r in 0..MR {
            let a = i32::from(av[r]);
            for q in 0..NR {
                acc[r][q] += a * i32::from(bv[q]);
            }
        }
    }
    for r in 0..mr {
        let row = &mut c[r * ldc..r * ldc + nr];
        for (dst, &v) in row.iter_mut().zip(&acc[r][..nr]) {
            *dst += v;
        }
    }
}

/// Scalar triple-loop oracle for [`qgemm`] — the reference kernel the
/// property tests (and `reference-kernels` benchmark builds) compare the
/// blocked kernel against. Integer arithmetic makes the comparison exact,
/// not approximate.
#[cfg(any(test, feature = "reference-kernels"))]
pub fn qgemm_reference(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    for i in 0..m {
        for j in 0..n {
            let mut s = 0i32;
            for l in 0..k {
                s += i32::from(a[i * k + l]) * i32::from(b[l * n + j]);
            }
            c[i * n + j] += s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, salt: u32) -> Vec<i8> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (x % 255) as i64 as i8
            })
            .collect()
    }

    fn check(m: usize, n: usize, k: usize) {
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let mut got = vec![0i32; m * n];
        let mut want = vec![0i32; m * n];
        qgemm(m, n, k, &a, &b, &mut got);
        qgemm_reference(m, n, k, &a, &b, &mut want);
        assert_eq!(got, want, "({m}x{n}x{k}) blocked != reference");
    }

    #[test]
    fn matches_reference_exactly_across_block_boundaries() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 2),
            (4, 16, 8),
            (5, 17, 9),
            (63, 15, 31),
            (64, 16, 64),
            (65, 17, 65),
            (130, 70, 257),
            (7, 300, 300),
        ] {
            check(m, n, k);
        }
    }

    #[test]
    fn accumulates_into_existing_output() {
        let a: Vec<i8> = vec![1, 2, 3, 4];
        let b: Vec<i8> = vec![1, 0, 0, 1];
        let mut c = vec![10, 20, 30, 40];
        qgemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![11, 22, 33, 44]);
    }

    #[test]
    fn empty_dimensions_are_no_ops() {
        let mut c = vec![7i32; 4];
        qgemm(0, 2, 3, &[], &[0; 6], &mut c);
        qgemm(2, 2, 0, &[], &[], &mut c);
        assert_eq!(c, vec![7; 4]);
    }

    #[test]
    fn extreme_values_do_not_overflow_per_product() {
        // (-128) * (-128) * k at k = 256 stays well inside i32.
        let a = vec![i8::MIN; 4 * 256];
        let b = vec![i8::MIN; 256 * 4];
        let mut c = vec![0i32; 16];
        qgemm(4, 4, 256, &a, &b, &mut c);
        assert!(c.iter().all(|&v| v == 128 * 128 * 256));
    }

    #[test]
    fn rows_do_not_depend_on_batch_composition() {
        let (m, n, k) = (37, 45, 53);
        let a = fill(m * k, 5);
        let b = fill(k * n, 6);
        let mut whole = vec![0i32; m * n];
        qgemm(m, n, k, &a, &b, &mut whole);
        for i in [0usize, 1, 17, 36] {
            let mut row = vec![0i32; n];
            qgemm(1, n, k, &a[i * k..], &b, &mut row);
            assert_eq!(&whole[i * n..(i + 1) * n], &row[..], "row {i} differs");
        }
    }
}
