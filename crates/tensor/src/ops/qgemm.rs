//! Integer GEMM entry point for the quantized inference path:
//! `i8 × i8 → i32` accumulation, routed through the kernel selector.
//!
//! The actual kernel — scalar triple loop, packed autovectorized body, or
//! the hand-written AVX2 `maddubs` kernel — is chosen per call by
//! [`crate::kernels::select_i8`] and can be forced process-wide with
//! `BDLFI_KERNEL=scalar|autovec|avx2`. Integer accumulation is exact, so
//! every variant is bit-identical at every block size, batch composition
//! and worker count by construction — the determinism the
//! fault-evaluation engine requires comes for free on the int8 path (see
//! `crate::kernels::qgemm_i8` for the saturation-safety argument).
//!
//! Operands are row-major (`a` is `m × k`, `b` is `k × n`); quantized
//! weights are packed row-major by the calibrator, so the strided-operand
//! generality of the f32 kernel is not needed here.

use crate::kernels::{self, qgemm_i8};

pub use crate::kernels::qgemm_i8::K_MAX;

/// Computes `C += A · B` where `A` is row-major `m × k` int8, `B` is
/// row-major `k × n` int8 and `C` is row-major `m × n` int32.
///
/// The result is **accumulated** into `c`; callers wanting a plain product
/// must pass a zeroed buffer.
///
/// # Panics
///
/// Panics if a slice is shorter than its dimensions require, or if
/// `k > `[`K_MAX`] (the i32 accumulator headroom bound shared by every
/// kernel variant).
pub fn qgemm(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    assert!(
        k <= K_MAX,
        "qgemm: k = {k} exceeds i32 accumulation headroom (K_MAX = {K_MAX})"
    );
    assert!(a.len() >= m * k, "qgemm: a shorter than m*k");
    assert!(b.len() >= k * n, "qgemm: b shorter than k*n");
    assert!(c.len() >= m * n, "qgemm: c shorter than m*n");
    qgemm_i8::run(kernels::select_i8(m, n, k), m, n, k, a, b, c);
}

/// Scalar triple-loop oracle for [`qgemm`] — the reference kernel the
/// property tests (and `reference-kernels` benchmark builds) compare every
/// selected variant against. Integer arithmetic makes the comparison
/// exact, not approximate.
#[cfg(any(test, feature = "reference-kernels"))]
pub fn qgemm_reference(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    for i in 0..m {
        for j in 0..n {
            let mut s = 0i32;
            for l in 0..k {
                s += i32::from(a[i * k + l]) * i32::from(b[l * n + j]);
            }
            c[i * n + j] += s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, salt: u32) -> Vec<i8> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (x % 255) as i64 as i8
            })
            .collect()
    }

    fn check(m: usize, n: usize, k: usize) {
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let mut got = vec![0i32; m * n];
        let mut want = vec![0i32; m * n];
        qgemm(m, n, k, &a, &b, &mut got);
        qgemm_reference(m, n, k, &a, &b, &mut want);
        assert_eq!(got, want, "({m}x{n}x{k}) selected != reference");
    }

    #[test]
    fn matches_reference_exactly_across_block_boundaries() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 2),
            (4, 16, 8),
            (5, 17, 9),
            (63, 15, 31),
            (64, 16, 64),
            (65, 17, 65),
            (130, 70, 257),
            (7, 300, 300),
        ] {
            check(m, n, k);
        }
    }

    #[test]
    fn accumulates_into_existing_output() {
        let a: Vec<i8> = vec![1, 2, 3, 4];
        let b: Vec<i8> = vec![1, 0, 0, 1];
        let mut c = vec![10, 20, 30, 40];
        qgemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![11, 22, 33, 44]);
    }

    #[test]
    fn empty_dimensions_are_no_ops() {
        let mut c = vec![7i32; 4];
        qgemm(0, 2, 3, &[], &[0; 6], &mut c);
        qgemm(2, 2, 0, &[], &[], &mut c);
        assert_eq!(c, vec![7; 4]);
    }

    #[test]
    fn extreme_values_do_not_overflow_per_product() {
        // (-128) * (-128) * k at k = 256 stays well inside i32 — and, on
        // the maddubs path, inside every i16 lane (one product per lane).
        let a = vec![i8::MIN; 4 * 256];
        let b = vec![i8::MIN; 256 * 4];
        let mut c = vec![0i32; 16];
        qgemm(4, 4, 256, &a, &b, &mut c);
        assert!(c.iter().all(|&v| v == 128 * 128 * 256));
    }

    #[test]
    fn rows_do_not_depend_on_batch_composition() {
        // The m=1 sub-call classifies as Gemv (scalar kernel) while the
        // whole batch runs a packed kernel — exactness makes them agree.
        let (m, n, k) = (37, 45, 53);
        let a = fill(m * k, 5);
        let b = fill(k * n, 6);
        let mut whole = vec![0i32; m * n];
        qgemm(m, n, k, &a, &b, &mut whole);
        for i in [0usize, 1, 17, 36] {
            let mut row = vec![0i32; n];
            qgemm(1, n, k, &a[i * k..], &b, &mut row);
            assert_eq!(&whole[i * n..(i + 1) * n], &row[..], "row {i} differs");
        }
    }
}
