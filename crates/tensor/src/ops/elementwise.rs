//! Element-wise arithmetic, scalar operations and simple broadcasts.
//!
//! Binary operators are provided both as methods returning new tensors and as
//! in-place `*_assign` variants used by hot paths (optimizers, gradient
//! accumulation). All same-shape operations panic on mismatch: a shape error
//! here is a programming error, not a recoverable condition.

use crate::tensor::Tensor;
use std::ops::{Add, Div, Mul, Neg, Sub};

impl Tensor {
    /// Element-wise sum with a same-shaped tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_t(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference with a same-shaped tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub_t(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product with a same-shaped tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul_t(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Element-wise quotient with a same-shaped tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn div_t(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a / b)
    }

    /// In-place element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign_t(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_assign_t requires identical shapes"
        );
        for (a, &b) in self.data_mut().iter_mut().zip(other.data().iter()) {
            *a += b;
        }
    }

    /// In-place element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub_assign_t(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "sub_assign_t requires identical shapes"
        );
        for (a, &b) in self.data_mut().iter_mut().zip(other.data().iter()) {
            *a -= b;
        }
    }

    /// In-place `self += alpha * other` (BLAS `axpy`).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "axpy requires identical shapes"
        );
        for (a, &b) in self.data_mut().iter_mut().zip(other.data().iter()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha`, returning a new tensor.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|x| x * alpha)
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale_inplace(&mut self, alpha: f32) {
        self.map_inplace(|x| x * alpha);
    }

    /// Adds `value` to every element, returning a new tensor.
    pub fn add_scalar(&self, value: f32) -> Tensor {
        self.map(|x| x + value)
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill(&mut self, value: f32) {
        for x in self.data_mut() {
            *x = value;
        }
    }

    /// Adds a length-`n` row vector to every row of an `(m, n)` matrix
    /// (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank 2 or `bias` is not rank 1 of matching
    /// width.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "add_row_broadcast requires a rank-2 tensor");
        assert_eq!(bias.rank(), 1, "bias must be rank 1");
        assert_eq!(
            self.dim(1),
            bias.dim(0),
            "bias width must match matrix width"
        );
        let mut out = self.clone();
        let cols = self.dim(1);
        let b = bias.data();
        for row in out.data_mut().chunks_mut(cols) {
            for (x, &bv) in row.iter_mut().zip(b.iter()) {
                *x += bv;
            }
        }
        out
    }

    /// Rectified linear unit, `max(0, x)`, element-wise.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Sum of squares of all elements.
    pub fn squared_norm(&self) -> f32 {
        self.data()
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>() as f32
    }

    /// Dot product with a same-shaped tensor (sum of element products).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "dot requires identical shapes");
        self.data()
            .iter()
            .zip(other.data().iter())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum::<f64>() as f32
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $tensor_method:ident) => {
        impl $trait<&Tensor> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.$tensor_method(rhs)
            }
        }
        impl $trait<Tensor> for Tensor {
            type Output = Tensor;
            fn $method(self, rhs: Tensor) -> Tensor {
                self.$tensor_method(&rhs)
            }
        }
    };
}

impl_binop!(Add, add, add_t);
impl_binop!(Sub, sub, sub_t);
impl_binop!(Mul, mul, mul_t);
impl_binop!(Div, div, div_t);

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: f32) -> Tensor {
        self.scale(rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(v, [n])
    }

    #[test]
    fn basic_arithmetic() {
        let a = t(vec![1.0, 2.0, 3.0]);
        let b = t(vec![4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!((&a * &b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!((&b / &a).data(), &[4.0, 2.5, 2.0]);
        assert_eq!((-&a).data(), &[-1.0, -2.0, -3.0]);
        assert_eq!((&a * 2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn assign_variants_match_pure_variants() {
        let a = t(vec![1.0, 2.0]);
        let b = t(vec![10.0, 20.0]);
        let mut c = a.clone();
        c.add_assign_t(&b);
        assert_eq!(c, a.add_t(&b));
        let mut d = a.clone();
        d.sub_assign_t(&b);
        assert_eq!(d, a.sub_t(&b));
    }

    #[test]
    fn axpy_accumulates() {
        let mut acc = t(vec![1.0, 1.0]);
        acc.axpy(0.5, &t(vec![2.0, 4.0]));
        assert_eq!(acc.data(), &[2.0, 3.0]);
    }

    #[test]
    fn add_row_broadcast_adds_bias_to_each_row() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = t(vec![10.0, 20.0]);
        let out = m.add_row_broadcast(&b);
        assert_eq!(out.data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    #[should_panic(expected = "bias width")]
    fn add_row_broadcast_panics_on_width_mismatch() {
        Tensor::zeros([2, 3]).add_row_broadcast(&Tensor::zeros([2]));
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(t(vec![-1.0, 0.0, 2.0]).relu().data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn dot_and_squared_norm() {
        let a = t(vec![3.0, 4.0]);
        assert_eq!(a.squared_norm(), 25.0);
        assert_eq!(a.dot(&t(vec![1.0, 2.0])), 11.0);
    }

    #[test]
    fn fill_resets_all_elements() {
        let mut a = t(vec![1.0, 2.0, 3.0]);
        a.fill(0.0);
        assert_eq!(a.data(), &[0.0, 0.0, 0.0]);
    }

    proptest! {
        #[test]
        fn add_is_commutative(
            v in proptest::collection::vec(-100.0f32..100.0, 1..20),
            w in proptest::collection::vec(-100.0f32..100.0, 1..20),
        ) {
            let n = v.len().min(w.len());
            let a = t(v[..n].to_vec());
            let b = t(w[..n].to_vec());
            prop_assert_eq!(a.add_t(&b), b.add_t(&a));
        }

        #[test]
        fn scale_by_zero_gives_zeros(v in proptest::collection::vec(-100.0f32..100.0, 1..20)) {
            let n = v.len();
            let a = t(v);
            prop_assert_eq!(a.scale(0.0), Tensor::zeros([n]));
        }

        #[test]
        fn neg_is_involution(v in proptest::collection::vec(-100.0f32..100.0, 1..20)) {
            let a = t(v);
            prop_assert_eq!(-&(-&a), a);
        }
    }
}
