//! Shape arithmetic: dimension bookkeeping, row-major strides and index math.

use crate::error::TensorError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape (extent of every dimension) of a [`crate::Tensor`].
///
/// Shapes are stored row-major: the last dimension is contiguous in memory.
/// A rank-0 shape (no dimensions) denotes a scalar with one element.
///
/// # Examples
///
/// ```
/// use bdlfi_tensor::Shape;
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.num_elements(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// Creates a rank-0 (scalar) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extents of all dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Total number of elements (product of all extents; 1 for scalars).
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `index.len() != self.rank()` or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.rank(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.rank()
        );
        let mut off = 0;
        let mut stride = 1;
        for axis in (0..self.rank()).rev() {
            let i = index[axis];
            assert!(
                i < self.0[axis],
                "index {i} out of bounds for axis {axis} of length {}",
                self.0[axis]
            );
            off += i * stride;
            stride *= self.0[axis];
        }
        off
    }

    /// Converts a flat row-major offset back to a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= self.num_elements()`.
    pub fn unravel(&self, offset: usize) -> Vec<usize> {
        assert!(
            offset < self.num_elements().max(1),
            "offset {offset} out of bounds for shape with {} elements",
            self.num_elements()
        );
        let mut rem = offset;
        let mut index = vec![0; self.rank()];
        for axis in (0..self.rank()).rev() {
            index[axis] = rem % self.0[axis];
            rem /= self.0[axis];
        }
        index
    }

    /// Checks that two shapes are identical, reporting a [`TensorError`]
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn ensure_same(&self, other: &Shape) -> Result<(), TensorError> {
        if self == other {
            Ok(())
        } else {
            Err(TensorError::ShapeMismatch {
                left: self.0.clone(),
                right: other.0.clone(),
            })
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s = Shape::new(vec![5]);
        assert_eq!(s.strides(), vec![1]);
    }

    #[test]
    fn offset_matches_manual_computation() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 2 * 4 + 3);
        assert_eq!(s.offset(&[0, 1, 2]), 6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_panics_out_of_bounds() {
        Shape::new(vec![2, 2]).offset(&[0, 2]);
    }

    #[test]
    #[should_panic(expected = "does not match shape rank")]
    fn offset_panics_on_rank_mismatch() {
        Shape::new(vec![2, 2]).offset(&[0]);
    }

    #[test]
    fn ensure_same_detects_mismatch() {
        let a = Shape::new(vec![2, 3]);
        let b = Shape::new(vec![3, 2]);
        assert!(a.ensure_same(&a.clone()).is_ok());
        assert_eq!(
            a.ensure_same(&b),
            Err(TensorError::ShapeMismatch {
                left: vec![2, 3],
                right: vec![3, 2]
            })
        );
    }

    #[test]
    fn display_formats_like_a_list() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn conversions_from_arrays_and_slices() {
        let a: Shape = [2usize, 3].into();
        let b: Shape = vec![2usize, 3].into();
        let c: Shape = (&[2usize, 3][..]).into();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    proptest! {
        #[test]
        fn unravel_roundtrips_offset(dims in proptest::collection::vec(1usize..6, 1..4)) {
            let s = Shape::new(dims);
            for off in 0..s.num_elements() {
                let idx = s.unravel(off);
                prop_assert_eq!(s.offset(&idx), off);
            }
        }

        #[test]
        fn strides_product_rule(dims in proptest::collection::vec(1usize..6, 1..5)) {
            let s = Shape::new(dims.clone());
            let strides = s.strides();
            // stride[i] * dim[i] == stride[i-1]
            for i in 1..dims.len() {
                prop_assert_eq!(strides[i] * dims[i], strides[i - 1]);
            }
            prop_assert_eq!(strides[0] * dims[0], s.num_elements());
        }
    }
}
