//! Kernel-selector layer: named micro-kernel variants behind a per-shape
//! selection table.
//!
//! The GEMM drivers in [`crate::ops`] no longer hardcode one blocked
//! kernel; they ask this module for a [`Selection`] — a kernel [`Variant`]
//! plus cache-blocking [`Tile`] parameters — keyed on the `(m, n, k)`
//! shape class of the call. Three variants exist per element type:
//!
//! * **scalar** — a direct strided triple loop, no packing. The reference
//!   point, and the fastest choice for shapes where packing overhead
//!   dominates (single-row products, tiny layers).
//! * **autovec** — the packed GEBP kernel with a generic Rust body the
//!   compiler auto-vectorises, recompiled under
//!   `#[target_feature(enable = "avx2")]` when the CPU supports it.
//! * **avx2** — hand-written AVX2 intrinsics over the same packed-panel
//!   layout: `mul`/`add` register tiles for f32
//!   ([`gemm_f32`]), and a `maddubs`-style u8×i8 pairwise dot-product
//!   kernel for int8 ([`qgemm_i8`]).
//!
//! Selection is overridable process-wide with `BDLFI_KERNEL=scalar|
//! autovec|avx2` (read once, first use wins) so CI can force every suite
//! through every variant. Forcing `avx2` on a host without AVX2 downgrades
//! to `autovec` — the override must never make a binary crash or a suite
//! vacuously skip.
//!
//! # Determinism across variants
//!
//! Campaign results must not depend on which variant ran:
//!
//! * int8 kernels accumulate exactly, so any blocking and any instruction
//!   set produce bit-identical `i32` results by associativity;
//! * f32 kernels all reduce each output element in the same fixed order —
//!   `k` split into [`KC`]-sized blocks ascending, elements ascending
//!   within a block, one partial sum per block accumulated into `C` — and
//!   none uses FMA (fused rounding would differ from the scalar body), so
//!   every variant produces bit-identical `f32` results too. [`KC`] is
//!   therefore *not* a per-shape tunable for f32: every table row pins it.
//!
//! The per-shape table only varies the outer cache blocks (`MC`/`NC`),
//! which partition independent output elements and cannot affect results.

pub mod gemm_f32;
pub mod qgemm_i8;

use std::sync::OnceLock;

/// Rows per packed micro-panel of `A` (register-tile height).
pub const MR: usize = 4;
/// Columns per packed micro-panel of `B` (register-tile width).
pub const NR: usize = 16;
/// `k`-dimension block. Fixed for every f32 variant and shape class: the
/// cross-variant bit-identity contract pins the reduction split (see the
/// module docs). Int8 kernels share the value for cache symmetry even
/// though exact integer accumulation would allow varying it.
pub const KC: usize = 256;

/// A named micro-kernel implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Direct strided triple loop; no packing, no explicit SIMD.
    Scalar,
    /// Packed GEBP panels with a compiler-vectorised generic body.
    Autovec,
    /// Packed GEBP panels with hand-written AVX2 intrinsics.
    Avx2,
}

impl Variant {
    /// Stable lowercase name, as accepted by `BDLFI_KERNEL` and recorded
    /// in benchmark reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Variant::Scalar => "scalar",
            Variant::Autovec => "autovec",
            Variant::Avx2 => "avx2",
        }
    }

    /// Parses a `BDLFI_KERNEL` value.
    pub fn parse(s: &str) -> Option<Variant> {
        match s {
            "scalar" => Some(Variant::Scalar),
            "autovec" => Some(Variant::Autovec),
            "avx2" => Some(Variant::Avx2),
            _ => None,
        }
    }
}

/// Cache-blocking parameters attached to a [`Selection`].
///
/// `mr`/`nr`/`kc` describe the packed micro-panel geometry and are pinned
/// to [`MR`]/[`NR`]/[`KC`] (the packed kernels are compiled around them;
/// f32 additionally pins `kc` for bit-identity). `mc`/`nc` are the
/// per-shape tunables: the `A`-row and `B`-column cache blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Micro-panel rows (register-tile height).
    pub mr: usize,
    /// Micro-panel columns (register-tile width).
    pub nr: usize,
    /// `k`-dimension block.
    pub kc: usize,
    /// Rows of `A` packed per inner iteration.
    pub mc: usize,
    /// Columns of `B` packed per L2-resident panel.
    pub nc: usize,
}

impl Tile {
    const fn packed(mc: usize, nc: usize) -> Tile {
        Tile {
            mr: MR,
            nr: NR,
            kc: KC,
            mc,
            nc,
        }
    }
}

/// A resolved kernel choice for one GEMM call: which variant runs and with
/// which blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// The micro-kernel that will run.
    pub variant: Variant,
    /// Cache-blocking parameters for the packed drivers (the scalar
    /// variant uses only `kc`).
    pub tile: Tile,
}

/// Shape classes the benched selection tables are keyed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeClass {
    /// Single-row product (`m == 1`): the sparse-delta and
    /// one-example paths. Packing `B` costs as much as the product.
    Gemv,
    /// `m·n·k` below the packing break-even point.
    Tiny,
    /// Wide output (`n ≥ 256`): conv im2col and large batch layers; a
    /// larger `B` panel amortises each `A` pack.
    Wide,
    /// Everything else: the blocked default.
    Blocked,
}

/// Classifies a GEMM shape for table lookup.
pub fn classify(m: usize, n: usize, k: usize) -> ShapeClass {
    if m == 1 {
        ShapeClass::Gemv
    } else if m * n * k <= 4096 {
        ShapeClass::Tiny
    } else if n >= 256 {
        ShapeClass::Wide
    } else {
        ShapeClass::Blocked
    }
}

// Benched per-class rows (preferred variant + tile), measured with
// `perf_smoke` scenarios on a 1-core AVX2 host (see DESIGN.md §15 for the
// numbers). Gemv/Tiny rows prefer the scalar kernel because packing both
// operands costs more than the whole product at those sizes; the packed
// rows differ only in how much of `B` stays L2-resident per `A` pack.
const F32_TABLE: [(ShapeClass, Variant, Tile); 4] = [
    (ShapeClass::Gemv, Variant::Scalar, Tile::packed(64, 256)),
    (ShapeClass::Tiny, Variant::Scalar, Tile::packed(64, 256)),
    (ShapeClass::Wide, Variant::Avx2, Tile::packed(64, 512)),
    (ShapeClass::Blocked, Variant::Avx2, Tile::packed(64, 256)),
];

const I8_TABLE: [(ShapeClass, Variant, Tile); 4] = [
    (ShapeClass::Gemv, Variant::Scalar, Tile::packed(64, 256)),
    (ShapeClass::Tiny, Variant::Scalar, Tile::packed(64, 256)),
    (ShapeClass::Wide, Variant::Avx2, Tile::packed(64, 512)),
    (ShapeClass::Blocked, Variant::Avx2, Tile::packed(64, 256)),
];

static FORCED: OnceLock<Option<Variant>> = OnceLock::new();

/// The process-wide `BDLFI_KERNEL` override, if set. Read once on first
/// use; an unrecognised value panics immediately rather than silently
/// running a different kernel than the operator asked for.
///
/// # Panics
///
/// Panics if `BDLFI_KERNEL` is set to anything other than `scalar`,
/// `autovec` or `avx2`.
pub fn forced_variant() -> Option<Variant> {
    *FORCED.get_or_init(|| match std::env::var("BDLFI_KERNEL") {
        Ok(s) => Some(
            Variant::parse(&s)
                // bdlfi-lint: allow(BD010) -- operator-override diagnostic: an invalid BDLFI_KERNEL must fail fast at startup, not be silently ignored
                .unwrap_or_else(|| panic!("BDLFI_KERNEL={s:?} is not one of scalar|autovec|avx2")),
        ),
        Err(_) => None,
    })
}

/// Whether the running CPU supports AVX2 (always `false` off x86-64).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Applies the override and the hardware downgrade to a table-preferred
/// variant: `BDLFI_KERNEL` wins over the table (so CI can force every
/// shape through one kernel), and `Avx2` degrades to `Autovec` when the
/// CPU lacks AVX2.
fn resolve(preferred: Variant) -> Variant {
    let v = forced_variant().unwrap_or(preferred);
    if v == Variant::Avx2 && !avx2_available() {
        Variant::Autovec
    } else {
        v
    }
}

fn lookup(table: &[(ShapeClass, Variant, Tile)], m: usize, n: usize, k: usize) -> Selection {
    let class = classify(m, n, k);
    let (_, variant, tile) = table
        .iter()
        .find(|(c, _, _)| *c == class)
        // bdlfi-lint: allow(BD010) -- the static selection tables enumerate every ShapeClass; pinned by selector unit tests
        .expect("selection table covers every shape class");
    Selection {
        variant: resolve(*variant),
        tile: *tile,
    }
}

/// Selects the f32 kernel for an `m × n × k` product.
pub fn select_f32(m: usize, n: usize, k: usize) -> Selection {
    lookup(&F32_TABLE, m, n, k)
}

/// Selects the int8 kernel for an `m × n × k` product.
pub fn select_i8(m: usize, n: usize, k: usize) -> Selection {
    lookup(&I8_TABLE, m, n, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_exactly_the_documented_names() {
        assert_eq!(Variant::parse("scalar"), Some(Variant::Scalar));
        assert_eq!(Variant::parse("autovec"), Some(Variant::Autovec));
        assert_eq!(Variant::parse("avx2"), Some(Variant::Avx2));
        assert_eq!(Variant::parse("AVX2"), None);
        assert_eq!(Variant::parse(""), None);
        assert_eq!(Variant::parse("sse2"), None);
    }

    #[test]
    fn names_round_trip() {
        for v in [Variant::Scalar, Variant::Autovec, Variant::Avx2] {
            assert_eq!(Variant::parse(v.as_str()), Some(v));
        }
    }

    #[test]
    fn classes_partition_shapes() {
        assert_eq!(classify(1, 512, 512), ShapeClass::Gemv);
        assert_eq!(classify(4, 8, 8), ShapeClass::Tiny);
        assert_eq!(classify(64, 300, 64), ShapeClass::Wide);
        assert_eq!(classify(64, 64, 64), ShapeClass::Blocked);
    }

    #[test]
    fn every_class_has_a_row_in_both_tables() {
        for (m, n, k) in [(1, 512, 512), (4, 8, 8), (64, 300, 64), (64, 64, 64)] {
            let f = select_f32(m, n, k);
            let q = select_i8(m, n, k);
            // f32 rows must pin KC: the cross-variant bit-identity
            // contract depends on the reduction split.
            assert_eq!(f.tile.kc, KC);
            assert_eq!(f.tile.mr, MR);
            assert_eq!(f.tile.nr, NR);
            assert_eq!(q.tile.kc, KC);
        }
    }

    #[test]
    fn forced_variant_env_is_either_unset_or_valid() {
        // The OnceLock caches the first read, so this test only checks the
        // call is total under the ambient environment (the CI kernel
        // matrix sets BDLFI_KERNEL before the process starts).
        let forced = forced_variant();
        if let Ok(want) = std::env::var("BDLFI_KERNEL") {
            assert_eq!(forced.map(Variant::as_str), Some(want.as_str()));
        } else {
            assert_eq!(forced, None);
        }
    }

    #[test]
    fn avx2_downgrade_never_yields_unsupported_selection() {
        let sel = select_f32(128, 128, 128);
        if sel.variant == Variant::Avx2 {
            assert!(avx2_available());
        }
    }
}
