//! Int8 GEMM micro-kernel variants: scalar, autovectorized, and a
//! hand-written AVX2 `maddubs` kernel.
//!
//! All variants compute `C += A · B` exactly in `i32` over row-major
//! `i8` operands. Integer accumulation is associative, so — unlike the
//! f32 side — *any* blocking, padding, and instruction choice produces
//! bit-identical results; the only obligation is that no intermediate
//! step can overflow or saturate. That obligation is discharged by
//! construction (see [`K_MAX`] and the maddubs layout below), never by
//! assuming benign weights: fault injection makes `-128` weights and
//! extreme activations routine inputs here.
//!
//! # The maddubs kernel and the signed-offset trick
//!
//! AVX2 has no i8×i8 multiply; `_mm256_maddubs_epi16` multiplies
//! **unsigned** bytes by signed bytes, summing adjacent byte pairs into
//! saturating `i16` lanes. The kernel therefore:
//!
//! 1. offsets activations to unsigned: `a' = a + 128` (a byte XOR with
//!    `0x80`), so `a' ∈ [0, 255]`;
//! 2. packs each operand as **zero-interleaved pairs** — the 4-byte group
//!    for k-pair `(2g, 2g+1)` is `(x(2g), 0, x(2g+1), 0)` — so each
//!    `i16` lane of the maddubs result holds exactly **one** product plus
//!    a zero: `|a'·b| ≤ 255·128 = 32640 < 32767`. Saturation is
//!    impossible *by construction*, for every input including faulted
//!    `b = -128`, without any assumption on `k`;
//! 3. widens pairs to `i32` with `_mm256_madd_epi16(p, 1)` and
//!    accumulates: each `i32` lane is the k-pair sum for one output
//!    column;
//! 4. removes the offset at write-back. The raw accumulator holds
//!    `Σ (a+128)·b = Σ a·b + 128·Σ b`, so subtracting
//!    `corr[j] = 128·Σ_block b[l][j]` — an exact per-column integer
//!    computed while packing `B` — recovers the true block contribution.
//!
//! Every step is exact integer arithmetic, so the maddubs kernel is
//! bit-identical to the scalar triple loop at every block size.

use super::{Selection, Tile, Variant, MR, NR};
use crate::scratch;

/// Maximum contraction depth accepted by every int8 GEMM variant.
///
/// The binding constraint is the `i32` output accumulator: with faulted
/// weights both operands reach magnitude 128, so `|Σ_k a·b| ≤ k·2¹⁴` and
/// `k = 2¹⁶` still leaves 2× headroom below `i32::MAX`. The maddubs
/// stages impose **no** k-dependent bound: each `i16` lane holds a single
/// product (≤ 32640, see the module docs), and the per-block raw
/// accumulator is bounded by `KC·32640 ≈ 8.4M` independent of `k`.
/// (The previous bound of 100 000 was derived from `k·127·127` — unfaulted
/// weights — and left under 1.4× margin once a flip makes a weight
/// `-128`.)
pub const K_MAX: usize = 65_536;

/// Runs the selected int8 variant over row-major operands.
pub(crate) fn run(sel: Selection, m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    match sel.variant {
        Variant::Scalar => scalar(m, n, k, a, b, c),
        Variant::Autovec => blocked_autovec(sel.tile, m, n, k, a, b, c),
        Variant::Avx2 => {
            // The maddubs path has its own pack format, so the
            // no-AVX2 downgrade happens here, before packing; the
            // per-tile dispatch below re-checks the feature bit because
            // soundness must not depend on this branch.
            if super::avx2_available() {
                blocked_maddubs(sel.tile, m, n, k, a, b, c)
            } else {
                blocked_autovec(sel.tile, m, n, k, a, b, c)
            }
        }
    }
}

/// Runs the int8 GEMM through one specific variant with the default
/// packed tile — the hook equivalence and property tests drive each
/// variant through directly. Requesting [`Variant::Avx2`] on a host
/// without AVX2 runs the autovectorized kernel instead (bit-identical,
/// since int8 accumulation is exact).
pub fn qgemm_i8_with(
    variant: Variant,
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    c: &mut [i32],
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    run(
        Selection {
            variant,
            tile: Tile::packed(64, 256),
        },
        m,
        n,
        k,
        a,
        b,
        c,
    )
}

/// Direct triple loop, `i32` accumulation. The bound asserted here is the
/// same one the SIMD variants assert: see [`K_MAX`].
fn scalar(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    assert!(k <= K_MAX, "qgemm scalar: k={k} exceeds K_MAX={K_MAX}");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for (j, cj) in c[i * n..(i + 1) * n].iter_mut().enumerate() {
            let mut acc = 0i32;
            for (l, &av) in arow.iter().enumerate() {
                acc += i32::from(av) * i32::from(b[l * n + j]);
            }
            *cj += acc;
        }
    }
}

// ---------------------------------------------------------------------------
// Autovectorized variant: plain i8 GEBP panels, generic i32 body, AVX2
// recompile via runtime dispatch.
// ---------------------------------------------------------------------------

fn blocked_autovec(tile: Tile, m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    assert!(k <= K_MAX, "qgemm autovec: k={k} exceeds K_MAX={K_MAX}");
    // Pack buffers are sized by the *effective* block (the tile caps
    // clamped to the actual shape) and borrowed from the thread-local
    // scratch pool: campaigns run thousands of small GEMMs per second, and
    // a fresh zeroed allocation per call costs more than packing itself.
    let (kc_blk, mc_blk, nc_blk) = (tile.kc.min(k), tile.mc.min(m), tile.nc.min(n));
    let mut apack = scratch::take::<i8>(mc_blk.div_ceil(MR) * MR * kc_blk);
    let mut bpack = scratch::take::<i8>(nc_blk.div_ceil(NR) * NR * kc_blk);

    for lc in (0..k).step_by(kc_blk) {
        let kc = kc_blk.min(k - lc);
        for jc in (0..n).step_by(nc_blk) {
            let nc = nc_blk.min(n - jc);
            pack_b_i8(&mut bpack, b, n, lc, kc, jc, nc);
            for ic in (0..m).step_by(mc_blk) {
                let mc = mc_blk.min(m - ic);
                pack_a_i8(&mut apack, a, k, ic, mc, lc, kc);
                for jr in (0..nc).step_by(NR) {
                    let nr = NR.min(nc - jr);
                    let bp = &bpack[(jr / NR) * kc * NR..][..kc * NR];
                    for ir in (0..mc).step_by(MR) {
                        let mr = MR.min(mc - ir);
                        let ap = &apack[(ir / MR) * kc * MR..][..kc * MR];
                        let c_off = (ic + ir) * n + jc + jr;
                        micro_autovec(kc, ap, bp, &mut c[c_off..], n, mr, nr);
                    }
                }
            }
        }
    }
}

/// Packs an `mc × kc` block of `A` into `MR`-row micro-panels, k-major,
/// zero-padding rows past `mc`. Each source row is walked once,
/// interleaving into its `MR`-strided panel lane.
fn pack_a_i8(dst: &mut [i8], a: &[i8], lda: usize, row0: usize, mc: usize, col0: usize, kc: usize) {
    for (p, panel) in dst.chunks_mut(kc * MR).take(mc.div_ceil(MR)).enumerate() {
        for r in 0..MR {
            let i = p * MR + r;
            let lane = panel.iter_mut().skip(r).step_by(MR).take(kc);
            if i < mc {
                let src = &a[(row0 + i) * lda + col0..][..kc];
                for (d, &v) in lane.zip(src) {
                    *d = v;
                }
            } else {
                for d in lane {
                    *d = 0;
                }
            }
        }
    }
}

/// Packs a `kc × nc` block of `B` into `NR`-column micro-panels, k-major,
/// zero-padding columns past `nc`. Full-width panels reduce to one
/// `memcpy` per packed row.
fn pack_b_i8(dst: &mut [i8], b: &[i8], ldb: usize, row0: usize, kc: usize, col0: usize, nc: usize) {
    for (p, panel) in dst.chunks_mut(kc * NR).take(nc.div_ceil(NR)).enumerate() {
        let j0 = p * NR;
        let cols = NR.min(nc - j0);
        for (l, row) in panel.chunks_exact_mut(NR).take(kc).enumerate() {
            let src = &b[(row0 + l) * ldb + col0 + j0..][..cols];
            row[..cols].copy_from_slice(src);
            row[cols..].fill(0);
        }
    }
}

/// Autovectorized `MR × NR` tile: dispatches to an AVX2-compiled copy of
/// [`micro_body_i8`] when the CPU supports it (exact i32 arithmetic, so
/// the dispatch cannot change results).
fn micro_autovec(kc: usize, ap: &[i8], bp: &[i8], c: &mut [i32], ldc: usize, mr: usize, nr: usize) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: calling a `#[target_feature(enable = "avx2")]` function
        // is sound iff the CPU supports AVX2, and the runtime
        // `is_x86_feature_detected!` check on the line above guarantees
        // exactly that. `micro_body_i8_avx2` takes ordinary slices and its
        // body is safe Rust (bounds-checked indexing, no raw pointers), so
        // feature availability is the only proof obligation here.
        return unsafe { micro_body_i8_avx2(kc, ap, bp, c, ldc, mr, nr) };
    }
    micro_body_i8(kc, ap, bp, c, ldc, mr, nr);
}

/// [`micro_body_i8`] recompiled with AVX2 codegen.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn micro_body_i8_avx2(
    kc: usize,
    ap: &[i8],
    bp: &[i8],
    c: &mut [i32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    micro_body_i8(kc, ap, bp, c, ldc, mr, nr);
}

#[inline(always)]
fn micro_body_i8(kc: usize, ap: &[i8], bp: &[i8], c: &mut [i32], ldc: usize, mr: usize, nr: usize) {
    let mut acc = [[0i32; NR]; MR];
    let (a_panels, _) = ap[..kc * MR].as_chunks::<MR>();
    let (b_panels, _) = bp[..kc * NR].as_chunks::<NR>();
    for (av, bv) in a_panels.iter().zip(b_panels) {
        for r in 0..MR {
            let a = i32::from(av[r]);
            for q in 0..NR {
                acc[r][q] += a * i32::from(bv[q]);
            }
        }
    }
    for r in 0..mr {
        let row = &mut c[r * ldc..r * ldc + nr];
        for (dst, &v) in row.iter_mut().zip(&acc[r][..nr]) {
            *dst += v;
        }
    }
}

// ---------------------------------------------------------------------------
// maddubs variant: zero-interleaved unsigned-offset packing + intrinsics.
// ---------------------------------------------------------------------------

fn blocked_maddubs(tile: Tile, m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    assert!(k <= K_MAX, "qgemm maddubs: k={k} exceeds K_MAX={K_MAX}");
    // Effective blocks + pooled buffers, as in `blocked_autovec`: the pack
    // buffers must not cost an allocation (or a 160 KiB zeroing memset for
    // a 4 KiB problem) on every call.
    let (kc_blk, mc_blk, nc_blk) = (tile.kc.min(k), tile.mc.min(m), tile.nc.min(n));
    let groups_cap = kc_blk.div_ceil(2);
    let mut apack = scratch::take::<u8>(mc_blk.div_ceil(MR) * MR * groups_cap * 4);
    let mut bpack = scratch::take::<u8>(nc_blk.div_ceil(NR) * groups_cap * 64);
    let mut corr = scratch::take::<i32>(nc_blk.div_ceil(NR) * NR);

    for lc in (0..k).step_by(kc_blk) {
        let kc = kc_blk.min(k - lc);
        let groups = kc.div_ceil(2);
        for jc in (0..n).step_by(nc_blk) {
            let nc = nc_blk.min(n - jc);
            pack_b_maddubs(&mut bpack, &mut corr, b, n, lc, kc, jc, nc);
            for ic in (0..m).step_by(mc_blk) {
                let mc = mc_blk.min(m - ic);
                pack_a_maddubs(&mut apack, a, k, ic, mc, lc, kc);
                for jr in (0..nc).step_by(NR) {
                    let nr = NR.min(nc - jr);
                    let bp = &bpack[(jr / NR) * groups * 64..][..groups * 64];
                    let cr = &corr[(jr / NR) * NR..][..NR];
                    for ir in (0..mc).step_by(MR) {
                        let mr = MR.min(mc - ir);
                        let ap = &apack[(ir / MR) * groups * MR * 4..][..groups * MR * 4];
                        let c_off = (ic + ir) * n + jc + jr;
                        micro_maddubs(groups, ap, bp, cr, &mut c[c_off..], n, mr, nr);
                    }
                }
            }
        }
    }
}

/// Packs an `mc × kc` block of `A` into the maddubs layout: per
/// `MR`-panel, per k-pair group `g`, per row, the 4 bytes
/// `(a'(2g), 0, a'(2g+1), 0)` with `a' = a XOR 0x80` (the +128 unsigned
/// offset). Rows past `mc` and the odd-`kc` tail pack as zero, which
/// contributes zero to both the raw accumulator and the correction.
///
/// Packing is byte shuffling, and at campaign shapes it costs as much as
/// the multiply loop itself, so on AVX2 hosts full panels go through a
/// shuffle kernel; partial panels and k tails share the scalar helper
/// with the portable path, so every byte of the layout has exactly one
/// scalar definition.
fn pack_a_maddubs(
    dst: &mut [u8],
    a: &[i8],
    lda: usize,
    row0: usize,
    mc: usize,
    col0: usize,
    kc: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: calling a `#[target_feature(enable = "avx2")]` function
        // is sound iff the CPU supports AVX2, which the runtime
        // `is_x86_feature_detected!` check on the line above guarantees;
        // the intrinsics inside stay within asserted slice bounds.
        return unsafe { pack_a_maddubs_avx2(dst, a, lda, row0, mc, col0, kc) };
    }
    pack_a_maddubs_scalar(dst, a, lda, row0, mc, col0, kc);
}

fn pack_a_maddubs_scalar(
    dst: &mut [u8],
    a: &[i8],
    lda: usize,
    row0: usize,
    mc: usize,
    col0: usize,
    kc: usize,
) {
    let groups = kc.div_ceil(2);
    for p in 0..mc.div_ceil(MR) {
        let panel = &mut dst[p * groups * MR * 4..][..groups * MR * 4];
        let rows_valid = MR.min(mc - p * MR);
        pack_a_panel_scalar(panel, a, lda, row0 + p * MR, rows_valid, col0, kc, 0);
    }
}

/// Packs groups `g0..` of one `MR`-row panel (the single scalar definition
/// of the A layout; the AVX2 kernel defers its edges here).
#[allow(clippy::too_many_arguments)]
fn pack_a_panel_scalar(
    panel: &mut [u8],
    a: &[i8],
    lda: usize,
    prow0: usize,
    rows_valid: usize,
    col0: usize,
    kc: usize,
    g0: usize,
) {
    let groups = kc.div_ceil(2);
    for (g, grp) in panel
        .chunks_exact_mut(MR * 4)
        .take(groups)
        .enumerate()
        .skip(g0)
    {
        for (r, quad) in grp.chunks_exact_mut(4).enumerate() {
            let (lo, hi) = if r < rows_valid {
                let row = (prow0 + r) * lda + col0 + 2 * g;
                let lo = (a[row] as u8) ^ 0x80;
                let hi = if 2 * g + 1 < kc {
                    (a[row + 1] as u8) ^ 0x80
                } else {
                    0
                };
                (lo, hi)
            } else {
                (0, 0)
            };
            quad[0] = lo;
            quad[1] = 0;
            quad[2] = hi;
            quad[3] = 0;
        }
    }
}

/// Shuffle-kernel packing of full `MR`-row panels, 8 k-pair groups per
/// iteration. `vpmovzxbw` of an offset row is *exactly* the
/// zero-interleaved layout — each 32-bit lane of the widened register is
/// one group's `(a', 0, a', 0)` quad — so packing reduces to a 4×8
/// 32-bit transpose (`vpunpck{l,h}dq` → `vpunpck{l,h}qdq` →
/// `vperm2i128`) that reorders whole quads and never touches a byte
/// value; byte-for-byte identity with [`pack_a_panel_scalar`] follows.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn pack_a_maddubs_avx2(
    dst: &mut [u8],
    a: &[i8],
    lda: usize,
    row0: usize,
    mc: usize,
    col0: usize,
    kc: usize,
) {
    use std::arch::x86_64::*;
    let groups = kc.div_ceil(2);
    let kblocks = kc / 16;
    let off = _mm_set1_epi8(0x80u8 as i8);
    for p in 0..mc / MR {
        let panel = &mut dst[p * groups * MR * 4..][..groups * MR * 4];
        let base = (row0 + p * MR) * lda + col0;
        assert!(
            base + 3 * lda + 16 * kblocks <= a.len(),
            "A block out of bounds"
        );
        for gb in 0..kblocks {
            // SAFETY: asserted above — rows `p*MR..p*MR+4` are all valid
            // (full panel) and each 16-byte load ends at
            // `col0 + 16·(gb+1) ≤ col0 + kc` within its row.
            let (x0, x1, x2, x3) = unsafe {
                (
                    _mm_loadu_si128(a.as_ptr().add(base + 16 * gb).cast()),
                    _mm_loadu_si128(a.as_ptr().add(base + lda + 16 * gb).cast()),
                    _mm_loadu_si128(a.as_ptr().add(base + 2 * lda + 16 * gb).cast()),
                    _mm_loadu_si128(a.as_ptr().add(base + 3 * lda + 16 * gb).cast()),
                )
            };
            let r0 = _mm256_cvtepu8_epi16(_mm_xor_si128(x0, off));
            let r1 = _mm256_cvtepu8_epi16(_mm_xor_si128(x1, off));
            let r2 = _mm256_cvtepu8_epi16(_mm_xor_si128(x2, off));
            let r3 = _mm256_cvtepu8_epi16(_mm_xor_si128(x3, off));
            let t0 = _mm256_unpacklo_epi32(r0, r1);
            let t1 = _mm256_unpacklo_epi32(r2, r3);
            let t2 = _mm256_unpackhi_epi32(r0, r1);
            let t3 = _mm256_unpackhi_epi32(r2, r3);
            let u0 = _mm256_unpacklo_epi64(t0, t1);
            let u1 = _mm256_unpackhi_epi64(t0, t1);
            let u2 = _mm256_unpacklo_epi64(t2, t3);
            let u3 = _mm256_unpackhi_epi64(t2, t3);
            let o = gb * 8 * MR * 4;
            // SAFETY: `o + 128 ≤ kblocks·128 ≤ groups·MR·4 = panel.len()`.
            unsafe {
                let pp = panel.as_mut_ptr().add(o);
                _mm256_storeu_si256(pp.cast(), _mm256_permute2x128_si256(u0, u1, 0x20));
                _mm256_storeu_si256(pp.add(32).cast(), _mm256_permute2x128_si256(u2, u3, 0x20));
                _mm256_storeu_si256(pp.add(64).cast(), _mm256_permute2x128_si256(u0, u1, 0x31));
                _mm256_storeu_si256(pp.add(96).cast(), _mm256_permute2x128_si256(u2, u3, 0x31));
            }
        }
        pack_a_panel_scalar(panel, a, lda, row0 + p * MR, MR, col0, kc, kblocks * 8);
    }
    if !mc.is_multiple_of(MR) {
        let p = mc / MR;
        let panel = &mut dst[p * groups * MR * 4..][..groups * MR * 4];
        pack_a_panel_scalar(panel, a, lda, row0 + p * MR, mc % MR, col0, kc, 0);
    }
}

/// Packs a `kc × nc` block of `B` into the maddubs layout — per
/// `NR`-panel, per k-pair group `g`, 64 bytes with column `q`'s pair at
/// `g*64 + (q/8)*32 + (q%8)*4` as `(b(2g), 0, b(2g+1), 0)` — and computes
/// the per-column offset correction `corr[q] = 128 · Σ_block b[l][q]` in
/// the same sweep (bounded by `128·KC·128 ≈ 4.2M`, exact in `i32`).
#[allow(clippy::too_many_arguments)]
fn pack_b_maddubs(
    dst: &mut [u8],
    corr: &mut [i32],
    b: &[i8],
    ldb: usize,
    row0: usize,
    kc: usize,
    col0: usize,
    nc: usize,
) {
    let panels = nc.div_ceil(NR);
    for x in corr[..panels * NR].iter_mut() {
        *x = 0;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: calling a `#[target_feature(enable = "avx2")]` function
        // is sound iff the CPU supports AVX2, which the runtime
        // `is_x86_feature_detected!` check on the line above guarantees;
        // the intrinsics inside stay within asserted slice bounds.
        return unsafe { pack_b_maddubs_avx2(dst, corr, b, ldb, row0, kc, col0, nc) };
    }
    pack_b_maddubs_scalar(dst, corr, b, ldb, row0, kc, col0, nc);
}

#[allow(clippy::too_many_arguments)]
fn pack_b_maddubs_scalar(
    dst: &mut [u8],
    corr: &mut [i32],
    b: &[i8],
    ldb: usize,
    row0: usize,
    kc: usize,
    col0: usize,
    nc: usize,
) {
    let groups = kc.div_ceil(2);
    for (p, panel) in dst
        .chunks_mut(groups * 64)
        .take(nc.div_ceil(NR))
        .enumerate()
    {
        let j0 = p * NR;
        let cols = NR.min(nc - j0);
        let crow = &mut corr[j0..j0 + NR];
        pack_b_panel_scalar(panel, crow, b, ldb, row0, kc, col0 + j0, cols, 0);
    }
}

/// Packs groups `g0..` of one `NR`-column panel, accumulating the offset
/// correction into `crow` (the single scalar definition of the B layout;
/// the AVX2 kernel defers its edges here).
#[allow(clippy::too_many_arguments)]
fn pack_b_panel_scalar(
    panel: &mut [u8],
    crow: &mut [i32],
    b: &[i8],
    ldb: usize,
    row0: usize,
    kc: usize,
    colbase: usize,
    cols: usize,
    g0: usize,
) {
    let groups = kc.div_ceil(2);
    for (g, grp) in panel.chunks_exact_mut(64).take(groups).enumerate().skip(g0) {
        let lo_row = &b[(row0 + 2 * g) * ldb + colbase..][..cols];
        let hi_row = if 2 * g + 1 < kc {
            Some(&b[(row0 + 2 * g + 1) * ldb + colbase..][..cols])
        } else {
            None
        };
        for (q, quad) in grp.chunks_exact_mut(4).enumerate() {
            let (lo, hi) = if q < cols {
                let lo = lo_row[q];
                let hi = hi_row.map_or(0, |r| r[q]);
                crow[q] += 128 * (i32::from(lo) + i32::from(hi));
                (lo as u8, hi as u8)
            } else {
                (0, 0)
            };
            quad[0] = lo;
            quad[1] = 0;
            quad[2] = hi;
            quad[3] = 0;
        }
    }
}

/// Shuffle-kernel packing of full `NR`-column panels, one k-pair group per
/// iteration. Interleaving the two 16-byte rows with zero
/// (`vpunpck{l,h}bw` against zero, then `vpunpck{l,h}wd` of the widened
/// rows) produces exactly the `(b(2g), 0, b(2g+1), 0)` quads in column
/// order — byte moves only, so identity with [`pack_b_panel_scalar`] is
/// structural. Corrections accumulate as `i32` lanes (`|lo+hi| ≤ 256` per
/// group fits `i16` but the running sum does not) and the final `≪ 7` is
/// the exact `×128` because `128·Σ` is bounded by `128·KC·128 ≈ 4.2M`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
fn pack_b_maddubs_avx2(
    dst: &mut [u8],
    corr: &mut [i32],
    b: &[i8],
    ldb: usize,
    row0: usize,
    kc: usize,
    col0: usize,
    nc: usize,
) {
    use std::arch::x86_64::*;
    let groups = kc.div_ceil(2);
    let pairs = kc / 2;
    let zero = _mm_setzero_si128();
    for (p, panel) in dst
        .chunks_mut(groups * 64)
        .take(nc.div_ceil(NR))
        .enumerate()
    {
        let j0 = p * NR;
        let cols = NR.min(nc - j0);
        let crow = &mut corr[j0..j0 + NR];
        if cols < NR {
            pack_b_panel_scalar(panel, crow, b, ldb, row0, kc, col0 + j0, cols, 0);
            continue;
        }
        let base = row0 * ldb + col0 + j0;
        assert!(
            pairs == 0 || base + (2 * pairs - 1) * ldb + 16 <= b.len(),
            "B block out of bounds"
        );
        let mut sum0 = _mm256_setzero_si256();
        let mut sum1 = _mm256_setzero_si256();
        for g in 0..pairs {
            // SAFETY: asserted above — the deepest read this loop makes is
            // row `row0 + 2·pairs − 1`, bytes `..base + 16` within it.
            let (lo, hi) = unsafe {
                (
                    _mm_loadu_si128(b.as_ptr().add(base + 2 * g * ldb).cast()),
                    _mm_loadu_si128(b.as_ptr().add(base + (2 * g + 1) * ldb).cast()),
                )
            };
            let lo_a = _mm_unpacklo_epi8(lo, zero);
            let hi_a = _mm_unpacklo_epi8(hi, zero);
            let lo_b = _mm_unpackhi_epi8(lo, zero);
            let hi_b = _mm_unpackhi_epi8(hi, zero);
            // SAFETY: `g·64 + 64 ≤ pairs·64 ≤ groups·64 = panel.len()`.
            unsafe {
                let pp = panel.as_mut_ptr().add(g * 64);
                _mm_storeu_si128(pp.cast(), _mm_unpacklo_epi16(lo_a, hi_a));
                _mm_storeu_si128(pp.add(16).cast(), _mm_unpackhi_epi16(lo_a, hi_a));
                _mm_storeu_si128(pp.add(32).cast(), _mm_unpacklo_epi16(lo_b, hi_b));
                _mm_storeu_si128(pp.add(48).cast(), _mm_unpackhi_epi16(lo_b, hi_b));
            }
            let s16 = _mm256_add_epi16(_mm256_cvtepi8_epi16(lo), _mm256_cvtepi8_epi16(hi));
            sum0 = _mm256_add_epi32(sum0, _mm256_cvtepi16_epi32(_mm256_castsi256_si128(s16)));
            sum1 = _mm256_add_epi32(
                sum1,
                _mm256_cvtepi16_epi32(_mm256_extracti128_si256::<1>(s16)),
            );
        }
        // SAFETY: `crow` spans exactly `NR = 16` i32s — two ymm stores.
        unsafe {
            let cp = crow.as_mut_ptr();
            _mm256_storeu_si256(cp.cast(), _mm256_slli_epi32::<7>(sum0));
            _mm256_storeu_si256(cp.add(8).cast(), _mm256_slli_epi32::<7>(sum1));
        }
        // The odd-`kc` tail group (if any) adds onto the stored corrections.
        pack_b_panel_scalar(panel, crow, b, ldb, row0, kc, col0 + j0, cols, pairs);
    }
}

/// maddubs `MR × NR` tile dispatcher. The feature check is repeated here
/// (not just in [`run`]) because the soundness of calling the intrinsics
/// kernel must not depend on a distant branch.
#[allow(clippy::too_many_arguments)]
fn micro_maddubs(
    groups: usize,
    ap: &[u8],
    bp: &[u8],
    corr: &[i32],
    c: &mut [i32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: calling a `#[target_feature(enable = "avx2")]` function
        // is sound iff the CPU supports AVX2, which the runtime
        // `is_x86_feature_detected!` check on the line above guarantees.
        // The intrinsics inside assert their slice bounds before any raw
        // pointer arithmetic, so feature availability is the only proof
        // obligation delegated to this call site.
        return unsafe { micro_maddubs_avx2(groups, ap, bp, corr, c, ldc, mr, nr) };
    }
    micro_maddubs_fallback(groups, ap, bp, corr, c, ldc, mr, nr);
}

/// The intrinsics tile: per k-pair group, one broadcast of the packed `A`
/// quad per row, `maddubs` (unsigned `a'` × signed `b` → one product per
/// `i16` lane) then `madd` against ones to widen pairs into the eight
/// `i32` column sums, accumulated over the block; offset correction is
/// subtracted at write-back.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
fn micro_maddubs_avx2(
    groups: usize,
    ap: &[u8],
    bp: &[u8],
    corr: &[i32],
    c: &mut [i32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_loadu_si256, _mm256_madd_epi16, _mm256_maddubs_epi16,
        _mm256_set1_epi16, _mm256_set1_epi32, _mm256_setzero_si256, _mm256_storeu_si256,
        _mm256_sub_epi32,
    };
    assert!(ap.len() >= groups * MR * 4, "packed A panel too short");
    assert!(bp.len() >= groups * 64, "packed B panel too short");
    assert!(corr.len() >= NR, "correction slice too short");
    let ones = _mm256_set1_epi16(1);
    let mut acc0 = [_mm256_setzero_si256(); MR];
    let mut acc1 = [_mm256_setzero_si256(); MR];
    for g in 0..groups {
        // SAFETY: `bp` holds at least `groups * 64` bytes (asserted
        // above), so both unaligned 32-byte loads at `g * 64` and
        // `g * 64 + 32` stay in bounds; `loadu` has no alignment
        // requirement.
        let (b0, b1) = unsafe {
            (
                _mm256_loadu_si256(bp.as_ptr().add(g * 64) as *const __m256i),
                _mm256_loadu_si256(bp.as_ptr().add(g * 64 + 32) as *const __m256i),
            )
        };
        let abase = g * MR * 4;
        for r in 0..MR {
            let o = abase + r * 4;
            // bdlfi-lint: allow(BD010) -- infallible: the slice is exactly 4 bytes by the window arithmetic above
            let quad = u32::from_le_bytes(ap[o..o + 4].try_into().unwrap());
            let a = _mm256_set1_epi32(quad as i32);
            let p0 = _mm256_maddubs_epi16(a, b0);
            let p1 = _mm256_maddubs_epi16(a, b1);
            acc0[r] = _mm256_add_epi32(acc0[r], _mm256_madd_epi16(p0, ones));
            acc1[r] = _mm256_add_epi32(acc1[r], _mm256_madd_epi16(p1, ones));
        }
    }
    if mr == MR && nr == NR {
        // Full tile (the overwhelmingly common case): apply the offset
        // correction and accumulate into `C` without spilling through a
        // scalar staging array. Wrapping i32 vector add/sub matches the
        // scalar `+`/`-` below exactly.
        // SAFETY: `corr` holds at least NR = 16 i32 (asserted above) and
        // each `row` is exactly NR contiguous i32 — 64 bytes, the room
        // the two unaligned 32-byte loads/stores need.
        unsafe {
            let corr0 = _mm256_loadu_si256(corr.as_ptr() as *const __m256i);
            let corr1 = _mm256_loadu_si256(corr.as_ptr().add(8) as *const __m256i);
            for r in 0..MR {
                let row = &mut c[r * ldc..r * ldc + NR];
                let p0 = row.as_mut_ptr() as *mut __m256i;
                let p1 = row.as_mut_ptr().add(8) as *mut __m256i;
                let c0 = _mm256_loadu_si256(p0);
                let c1 = _mm256_loadu_si256(p1);
                _mm256_storeu_si256(p0, _mm256_add_epi32(c0, _mm256_sub_epi32(acc0[r], corr0)));
                _mm256_storeu_si256(p1, _mm256_add_epi32(c1, _mm256_sub_epi32(acc1[r], corr1)));
            }
        }
        return;
    }
    let mut tile = [[0i32; NR]; MR];
    for r in 0..MR {
        // SAFETY: `tile[r]` is NR = 16 contiguous i32 (64 bytes), exactly
        // the room the two unaligned 32-byte stores need.
        unsafe {
            _mm256_storeu_si256(tile[r].as_mut_ptr() as *mut __m256i, acc0[r]);
            _mm256_storeu_si256(tile[r].as_mut_ptr().add(8) as *mut __m256i, acc1[r]);
        }
    }
    for r in 0..mr {
        let row = &mut c[r * ldc..r * ldc + nr];
        for (q, dst) in row.iter_mut().enumerate() {
            *dst += tile[r][q] - corr[q];
        }
    }
}

/// Scalar emulation of the maddubs tile over the *same packed layout* —
/// the portable fallback off x86-64 and the layout's executable
/// specification (the unit tests drive it against the intrinsics).
#[allow(clippy::too_many_arguments)]
fn micro_maddubs_fallback(
    groups: usize,
    ap: &[u8],
    bp: &[u8],
    corr: &[i32],
    c: &mut [i32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let mut tile = [[0i32; NR]; MR];
    for g in 0..groups {
        for (r, trow) in tile.iter_mut().enumerate() {
            let o = (g * MR + r) * 4;
            let a0 = i32::from(ap[o]);
            let a1 = i32::from(ap[o + 2]);
            for (q, row) in trow.iter_mut().enumerate().take(NR) {
                let bo = g * 64 + (q / 8) * 32 + (q % 8) * 4;
                let b0 = i32::from(bp[bo] as i8);
                let b1 = i32::from(bp[bo + 2] as i8);
                *row += a0 * b0 + a1 * b1;
            }
        }
    }
    for r in 0..mr {
        let row = &mut c[r * ldc..r * ldc + nr];
        for (q, dst) in row.iter_mut().enumerate() {
            *dst += tile[r][q] - corr[q];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::qgemm::qgemm_reference;

    const VARIANTS: [Variant; 3] = [Variant::Scalar, Variant::Autovec, Variant::Avx2];

    fn fill_i8(len: usize, salt: u32) -> Vec<i8> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (x >> 13) as u8 as i8
            })
            .collect()
    }

    #[test]
    fn variants_match_the_reference_exactly() {
        // Shapes straddling MR/NR remainder tiles, odd k (maddubs pair
        // padding), k = 1, and multi-block k.
        for &(m, n, k) in &[
            (1, 1, 1),
            (1, 16, 1),
            (3, 5, 2),
            (4, 16, 7),
            (5, 17, 9),
            (64, 16, 64),
            (65, 17, 65),
            (2, 300, 257),
            (9, 33, 600),
        ] {
            let a = fill_i8(m * k, 1);
            let b = fill_i8(k * n, 2);
            let mut want = vec![0i32; m * n];
            qgemm_reference(m, n, k, &a, &b, &mut want);
            for v in VARIANTS {
                let mut got = vec![7i32; m * n];
                let mut base = vec![7i32; m * n];
                qgemm_i8_with(v, m, n, k, &a, &b, &mut got);
                for (g, w) in base.iter_mut().zip(&want) {
                    *g += w;
                }
                assert_eq!(got, base, "({m}x{n}x{k}) variant {v:?}");
            }
        }
    }

    #[test]
    fn extreme_operands_stay_exact_in_every_variant() {
        // ±127/-128 everywhere — the saturation stress the zero-interleave
        // exists for. k spans two KC blocks to exercise the per-block
        // offset correction at its maximum magnitude.
        let (m, n, k) = (5, 19, 300);
        let a: Vec<i8> = (0..m * k)
            .map(|i| [-128i8, 127, -128, 127][i % 4])
            .collect();
        let b: Vec<i8> = (0..k * n).map(|i| [127i8, -128][i % 2]).collect();
        let mut want = vec![0i32; m * n];
        qgemm_reference(m, n, k, &a, &b, &mut want);
        for v in VARIANTS {
            let mut got = vec![0i32; m * n];
            qgemm_i8_with(v, m, n, k, &a, &b, &mut got);
            assert_eq!(got, want, "variant {v:?}");
        }
    }

    #[test]
    fn maddubs_fallback_matches_reference_layout() {
        // The scalar emulation is the layout's executable spec: run one
        // whole packed block through it and compare against the plain
        // reference product.
        let (m, n, k) = (6, 20, 33);
        let a = fill_i8(m * k, 3);
        let b = fill_i8(k * n, 4);
        let groups = k.div_ceil(2);
        let mut apack = vec![0u8; m.div_ceil(MR) * MR * groups * 4];
        let mut bpack = vec![0u8; n.div_ceil(NR) * groups * 64];
        let mut corr = vec![0i32; n.div_ceil(NR) * NR];
        pack_a_maddubs(&mut apack, &a, k, 0, m, 0, k);
        pack_b_maddubs(&mut bpack, &mut corr, &b, n, 0, k, 0, n);
        let mut got = vec![0i32; m * n];
        for jr in (0..n).step_by(NR) {
            let nr = NR.min(n - jr);
            let bp = &bpack[(jr / NR) * groups * 64..][..groups * 64];
            let cr = &corr[(jr / NR) * NR..][..NR];
            for ir in (0..m).step_by(MR) {
                let mr = MR.min(m - ir);
                let ap = &apack[(ir / MR) * groups * MR * 4..][..groups * MR * 4];
                micro_maddubs_fallback(groups, ap, bp, cr, &mut got[ir * n + jr..], n, mr, nr);
            }
        }
        let mut want = vec![0i32; m * n];
        qgemm_reference(m, n, k, &a, &b, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn nonstandard_tiles_do_not_change_results() {
        let (m, n, k) = (70, 50, 301);
        let a = fill_i8(m * k, 5);
        let b = fill_i8(k * n, 6);
        let mut want = vec![0i32; m * n];
        qgemm_reference(m, n, k, &a, &b, &mut want);
        for variant in [Variant::Autovec, Variant::Avx2] {
            for (mc, nc) in [(8, 32), (64, 256), (128, 48)] {
                let mut got = vec![0i32; m * n];
                run(
                    Selection {
                        variant,
                        tile: Tile {
                            mr: MR,
                            nr: NR,
                            kc: super::super::KC,
                            mc,
                            nc,
                        },
                    },
                    m,
                    n,
                    k,
                    &a,
                    &b,
                    &mut got,
                );
                assert_eq!(got, want, "{variant:?} tile ({mc},{nc})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "K_MAX")]
    fn scalar_variant_rejects_overdeep_contractions() {
        let a = vec![0i8; K_MAX + 1];
        let b = vec![0i8; K_MAX + 1];
        let mut c = vec![0i32; 1];
        qgemm_i8_with(Variant::Scalar, 1, 1, K_MAX + 1, &a, &b, &mut c);
    }

    #[test]
    #[should_panic(expected = "K_MAX")]
    fn simd_variants_reject_overdeep_contractions() {
        let a = vec![0i8; K_MAX + 1];
        let b = vec![0i8; K_MAX + 1];
        let mut c = vec![0i32; 1];
        qgemm_i8_with(Variant::Avx2, 1, 1, K_MAX + 1, &a, &b, &mut c);
    }
}
