//! f32 GEMM micro-kernel variants: scalar, autovectorized, and hand-written
//! AVX2 intrinsics.
//!
//! All three compute `C += A' · B'` over strided operands and are
//! **bit-identical** to each other: every variant reduces each output
//! element in the same fixed order — `k` split into [`KC`]-sized blocks
//! ascending, one partial sum per block started at `0.0` and accumulated
//! sequentially over the block's elements, then added into `C` — and none
//! uses FMA (a fused multiply-add rounds once where `mul` + `add` round
//! twice, which would break identity with the scalar body). The selector
//! in [`super`] may therefore pick any variant per shape without changing
//! a single output bit; `tests::variants_are_bit_identical` proves it.
//!
//! The packed variants share the GEBP decomposition of the original
//! blocked kernel: `A` packed into [`MR`]-row micro-panels, `B` into
//! [`NR`]-column micro-panels, an `MR × NR` register-resident accumulator
//! tile. The oracle for approximate correctness is
//! [`gemm_f32_reference`], a straight f64-accumulating triple loop.

use super::{Selection, Tile, Variant, KC, MR, NR};
use crate::scratch;

/// Runs the selected variant. Dimensions must be non-zero (the public
/// entry point in `ops::gemm` early-outs empty products).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    sel: Selection,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_str: (usize, usize),
    b: &[f32],
    b_str: (usize, usize),
    c: &mut [f32],
) {
    // f32 bit-identity pins the reduction split; a table row that varied
    // `kc` would silently change results between shape classes.
    assert_eq!(sel.tile.kc, KC, "f32 kernels require the pinned KC block");
    match sel.variant {
        Variant::Scalar => scalar(m, n, k, a, a_str, b, b_str, c),
        Variant::Autovec => blocked(Micro::Autovec, sel.tile, m, n, k, a, a_str, b, b_str, c),
        Variant::Avx2 => blocked(Micro::Avx2, sel.tile, m, n, k, a, a_str, b, b_str, c),
    }
}

/// Runs the strided f32 GEMM through one specific variant with the default
/// packed tile — the hook equivalence tests and benchmarks drive each
/// variant through directly. Requesting [`Variant::Avx2`] on a host
/// without AVX2 runs the autovectorized kernel instead (bit-identical by
/// the module contract, so the downgrade is observationally transparent).
#[allow(clippy::too_many_arguments)]
pub fn gemm_f32_with(
    variant: Variant,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_str: (usize, usize),
    b: &[f32],
    b_str: (usize, usize),
    c: &mut [f32],
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let variant = if variant == Variant::Avx2 && !super::avx2_available() {
        Variant::Autovec
    } else {
        variant
    };
    run(
        Selection {
            variant,
            tile: Tile::packed(64, 256),
        },
        m,
        n,
        k,
        a,
        a_str,
        b,
        b_str,
        c,
    )
}

/// Direct strided kernel: no packing, same reduction order as the packed
/// variants (per `KC` block: a fresh partial sum over the block's
/// elements ascending, then one add into `C`).
#[allow(clippy::too_many_arguments)]
fn scalar(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    (a_rs, a_cs): (usize, usize),
    b: &[f32],
    (b_rs, b_cs): (usize, usize),
    c: &mut [f32],
) {
    for lc in (0..k).step_by(KC) {
        let kend = (lc + KC).min(k);
        for i in 0..m {
            let arow = i * a_rs;
            let crow = &mut c[i * n..(i + 1) * n];
            for (j, cj) in crow.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for l in lc..kend {
                    acc += a[arow + l * a_cs] * b[l * b_rs + j * b_cs];
                }
                *cj += acc;
            }
        }
    }
}

/// Which micro-kernel the packed driver runs per register tile.
#[derive(Clone, Copy)]
enum Micro {
    Autovec,
    Avx2,
}

/// Packed GEBP driver shared by the autovec and AVX2 variants; only the
/// inner register-tile kernel differs.
#[allow(clippy::too_many_arguments)]
fn blocked(
    micro: Micro,
    tile: Tile,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    (a_rs, a_cs): (usize, usize),
    b: &[f32],
    (b_rs, b_cs): (usize, usize),
    c: &mut [f32],
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Blocks are clamped to the actual shape before sizing the pooled pack
    // buffers: `take` zero-fills what it hands out, and a full-tile buffer
    // for a small GEMM costs more in memset than the product itself. The
    // clamp cannot change results — it only shrinks the scratch area, never
    // the KC reduction split the bit-identity contract pins.
    let (kc_blk, mc_blk, nc_blk) = (tile.kc.min(k), tile.mc.min(m), tile.nc.min(n));
    let mut apack = scratch::take(mc_blk.div_ceil(MR) * MR * kc_blk);
    let mut bpack = scratch::take(nc_blk.div_ceil(NR) * NR * kc_blk);

    for lc in (0..k).step_by(kc_blk) {
        let kc = kc_blk.min(k - lc);
        for jc in (0..n).step_by(nc_blk) {
            let nc = nc_blk.min(n - jc);
            pack_b(&mut bpack, b, b_rs, b_cs, lc, kc, jc, nc);
            for ic in (0..m).step_by(mc_blk) {
                let mc = mc_blk.min(m - ic);
                pack_a(&mut apack, a, a_rs, a_cs, ic, mc, lc, kc);
                for jr in (0..nc).step_by(NR) {
                    let nr = NR.min(nc - jr);
                    let bp = &bpack[(jr / NR) * kc * NR..][..kc * NR];
                    for ir in (0..mc).step_by(MR) {
                        let mr = MR.min(mc - ir);
                        let ap = &apack[(ir / MR) * kc * MR..][..kc * MR];
                        let c_off = (ic + ir) * n + jc + jr;
                        let ctile = &mut c[c_off..];
                        match micro {
                            Micro::Autovec => micro_autovec(kc, ap, bp, ctile, n, mr, nr),
                            Micro::Avx2 => micro_avx2(kc, ap, bp, ctile, n, mr, nr),
                        }
                    }
                }
            }
        }
    }
}

/// Packs an `mc × kc` block of `A'` into `MR`-row micro-panels, k-major
/// within each panel. Rows past `mc` are zero-padded so the micro-kernel
/// never branches on the row count.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    dst: &mut [f32],
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    row0: usize,
    mc: usize,
    col0: usize,
    kc: usize,
) {
    for (p, panel) in dst.chunks_mut(kc * MR).take(mc.div_ceil(MR)).enumerate() {
        for l in 0..kc {
            for r in 0..MR {
                let i = p * MR + r;
                panel[l * MR + r] = if i < mc {
                    a[(row0 + i) * a_rs + (col0 + l) * a_cs]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs a `kc × nc` block of `B'` into `NR`-column micro-panels, k-major
/// within each panel, zero-padding columns past `nc`.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    dst: &mut [f32],
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    row0: usize,
    kc: usize,
    col0: usize,
    nc: usize,
) {
    for (p, panel) in dst.chunks_mut(kc * NR).take(nc.div_ceil(NR)).enumerate() {
        for l in 0..kc {
            for q in 0..NR {
                let j = p * NR + q;
                panel[l * NR + q] = if j < nc {
                    b[(row0 + l) * b_rs + (col0 + j) * b_cs]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Autovectorized `MR × NR` register-tile kernel: dispatches to an
/// AVX2-compiled copy of [`micro_body`] when the CPU supports it. The two
/// copies run the very same Rust code and SIMD lanes only span *different*
/// output elements — each accumulator is still reduced over `l`
/// sequentially — so the dispatch is bit-transparent.
fn micro_autovec(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: calling a `#[target_feature(enable = "avx2")]` function
        // is sound iff the CPU supports AVX2, and the runtime
        // `is_x86_feature_detected!` check on the line above guarantees
        // exactly that. Feature availability is the *only* proof
        // obligation here: `micro_body_avx2` takes ordinary slices and its
        // body is safe Rust (bounds-checked indexing, no raw pointers), so
        // no aliasing, alignment or in-bounds reasoning is delegated to
        // the caller.
        return unsafe { micro_body_avx2(kc, ap, bp, c, ldc, mr, nr) };
    }
    micro_body(kc, ap, bp, c, ldc, mr, nr);
}

/// [`micro_body`] recompiled with 256-bit vectors: one row of the
/// accumulator block is two `ymm` registers, so the whole `MR × NR` tile
/// lives in eight of the sixteen vector registers.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn micro_body_avx2(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    micro_body(kc, ap, bp, c, ldc, mr, nr);
}

#[inline(always)]
fn micro_body(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize, mr: usize, nr: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    let (a_panels, _) = ap[..kc * MR].as_chunks::<MR>();
    let (b_panels, _) = bp[..kc * NR].as_chunks::<NR>();
    for (av, bv) in a_panels.iter().zip(b_panels) {
        for r in 0..MR {
            let a = av[r];
            for q in 0..NR {
                acc[r][q] += a * bv[q];
            }
        }
    }
    for r in 0..mr {
        let row = &mut c[r * ldc..r * ldc + nr];
        for (dst, &v) in row.iter_mut().zip(&acc[r][..nr]) {
            *dst += v;
        }
    }
}

/// Hand-written AVX2 `MR × NR` register-tile kernel over the same packed
/// panels. Falls back to the generic body off x86-64 or when AVX2 is
/// absent (the selector never picks this variant there, but the function
/// stays total).
fn micro_avx2(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize, mr: usize, nr: usize) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: calling a `#[target_feature(enable = "avx2")]` function
        // is sound iff the CPU supports AVX2, which the runtime
        // `is_x86_feature_detected!` check on the line above guarantees.
        // The intrinsics inside assert their slice bounds before any raw
        // pointer arithmetic, so feature availability is the only proof
        // obligation delegated to this call site.
        return unsafe { micro_intrinsics_avx2(kc, ap, bp, c, ldc, mr, nr) };
    }
    micro_body(kc, ap, bp, c, ldc, mr, nr);
}

/// The intrinsics tile: two 8-lane `mul`/`add` chains per row. **No FMA** —
/// `_mm256_fmadd_ps` rounds once per lane where the scalar body rounds
/// twice, which would break cross-variant bit-identity.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn micro_intrinsics_avx2(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };
    assert!(ap.len() >= kc * MR, "packed A panel too short");
    assert!(bp.len() >= kc * NR, "packed B panel too short");
    let mut acc0 = [_mm256_setzero_ps(); MR];
    let mut acc1 = [_mm256_setzero_ps(); MR];
    for l in 0..kc {
        // SAFETY: `bp` holds at least `kc * NR` floats (asserted above), so
        // both unaligned 8-lane loads at `l * NR` and `l * NR + 8` stay in
        // bounds; `loadu` has no alignment requirement.
        let (b0, b1) = unsafe {
            (
                _mm256_loadu_ps(bp.as_ptr().add(l * NR)),
                _mm256_loadu_ps(bp.as_ptr().add(l * NR + 8)),
            )
        };
        let av = &ap[l * MR..l * MR + MR];
        for r in 0..MR {
            let a = _mm256_set1_ps(av[r]);
            acc0[r] = _mm256_add_ps(acc0[r], _mm256_mul_ps(a, b0));
            acc1[r] = _mm256_add_ps(acc1[r], _mm256_mul_ps(a, b1));
        }
    }
    let mut tile = [[0.0f32; NR]; MR];
    for r in 0..MR {
        // SAFETY: `tile[r]` is NR = 16 contiguous floats, exactly the room
        // the two unaligned 8-lane stores need.
        unsafe {
            _mm256_storeu_ps(tile[r].as_mut_ptr(), acc0[r]);
            _mm256_storeu_ps(tile[r].as_mut_ptr().add(8), acc1[r]);
        }
    }
    for r in 0..mr {
        let row = &mut c[r * ldc..r * ldc + nr];
        for (dst, &v) in row.iter_mut().zip(&tile[r][..nr]) {
            *dst += v;
        }
    }
}

/// Straight f64-accumulating triple loop with the same stride convention —
/// the approximate-correctness oracle every f32 variant is tested against.
#[cfg(any(test, feature = "reference-kernels"))]
#[allow(clippy::too_many_arguments)]
pub fn gemm_f32_reference(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    (a_rs, a_cs): (usize, usize),
    b: &[f32],
    (b_rs, b_cs): (usize, usize),
    c: &mut [f32],
) {
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f64;
            for l in 0..k {
                s += f64::from(a[i * a_rs + l * a_cs]) * f64::from(b[l * b_rs + j * b_cs]);
            }
            c[i * n + j] += s as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VARIANTS: [Variant; 3] = [Variant::Scalar, Variant::Autovec, Variant::Avx2];

    fn fill(len: usize, salt: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (x % 2001) as f32 / 1000.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn variants_are_bit_identical() {
        // Shapes straddling MR/NR remainder tiles, the MC/NC cache blocks
        // and — crucially for the scalar block split — the KC boundary.
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 2),
            (5, 17, 9),
            (64, 16, 64),
            (65, 17, 65),
            (7, 300, 300),
            (9, 33, 600),
            (2, 5, 257),
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut outs = Vec::new();
            for v in VARIANTS {
                let mut c = vec![0.0f32; m * n];
                gemm_f32_with(v, m, n, k, &a, (k, 1), &b, (n, 1), &mut c);
                outs.push(c.iter().map(|x| x.to_bits()).collect::<Vec<_>>());
            }
            assert_eq!(outs[0], outs[1], "({m}x{n}x{k}) scalar != autovec");
            assert_eq!(outs[1], outs[2], "({m}x{n}x{k}) autovec != avx2");
        }
    }

    #[test]
    fn variants_are_bit_identical_on_transposed_strides() {
        let (m, n, k) = (33, 29, 300);
        let a = fill(k * m, 3);
        let b = fill(n * k, 4);
        let mut outs = Vec::new();
        for v in VARIANTS {
            let mut c = vec![0.0f32; m * n];
            gemm_f32_with(v, m, n, k, &a, (1, m), &b, (1, k), &mut c);
            outs.push(c.iter().map(|x| x.to_bits()).collect::<Vec<_>>());
        }
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[1], outs[2]);
    }

    #[test]
    fn every_variant_matches_the_reference() {
        let (m, n, k) = (31, 45, 70);
        let a = fill(m * k, 5);
        let b = fill(k * n, 6);
        let mut want = vec![0.0f32; m * n];
        gemm_f32_reference(m, n, k, &a, (k, 1), &b, (n, 1), &mut want);
        let tol = 1e-4 * k as f32;
        for v in VARIANTS {
            let mut got = vec![0.0f32; m * n];
            gemm_f32_with(v, m, n, k, &a, (k, 1), &b, (n, 1), &mut got);
            for (i, (&g, &w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g - w).abs() <= tol,
                    "{v:?} element {i}: {g} vs reference {w}"
                );
            }
        }
    }

    #[test]
    fn nonstandard_tiles_do_not_change_bits() {
        // MC/NC partition independent outputs; any packed tile must agree
        // with the scalar kernel bit-for-bit.
        let (m, n, k) = (70, 50, 300);
        let a = fill(m * k, 7);
        let b = fill(k * n, 8);
        let mut want = vec![0.0f32; m * n];
        scalar(m, n, k, &a, (k, 1), &b, (n, 1), &mut want);
        for (mc, nc) in [(8, 32), (64, 256), (128, 48)] {
            let mut got = vec![0.0f32; m * n];
            run(
                Selection {
                    variant: Variant::Autovec,
                    tile: Tile {
                        mr: MR,
                        nr: NR,
                        kc: KC,
                        mc,
                        nc,
                    },
                },
                m,
                n,
                k,
                &a,
                (k, 1),
                &b,
                (n, 1),
                &mut got,
            );
            let wb: Vec<u32> = want.iter().map(|x| x.to_bits()).collect();
            let gb: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
            assert_eq!(wb, gb, "tile ({mc},{nc}) changed bits");
        }
    }
}
