//! Thread-local scratch-buffer arena for kernel temporaries.
//!
//! Fault-injection campaigns run thousands of forward passes over the same
//! network, and every conv layer used to allocate (and fault-in pages for)
//! fresh im2col matrices, per-image copies and matmul outputs on each pass.
//! This module recycles those buffers: [`take`] hands out a zeroed `Vec`
//! from a per-thread pool, and dropping the returned [`ScratchBuf`] returns
//! the allocation to the pool instead of freeing it.
//!
//! One pool exists per element type (`f32` for the float kernels, `i8`/
//! `u8`/`i32` for the quantized GEMM pack buffers and accumulators), so a
//! buffer is always recycled into a pool of its own layout. The pools are
//! thread-local, so parallel MCMC chains each keep their own warm buffers
//! without any synchronisation.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::thread::LocalKey;

/// Maximum number of idle buffers kept per thread and type; beyond this,
/// dropped buffers are simply freed. A forward pass needs at most a
/// handful of live buffers at once, so a small cap bounds memory without
/// ever hitting the allocator on the steady-state inference path.
const POOL_CAP: usize = 8;

/// An element type with a thread-local buffer pool.
pub trait Poolable: Copy + 'static {
    /// The zero value buffers are (re)filled with on [`take`].
    const ZERO: Self;
    /// The per-thread pool for this element type.
    fn pool() -> &'static LocalKey<RefCell<Vec<Vec<Self>>>>;
}

macro_rules! poolable {
    ($ty:ty, $zero:expr, $pool:ident) => {
        thread_local! {
            static $pool: RefCell<Vec<Vec<$ty>>> = const { RefCell::new(Vec::new()) };
        }

        impl Poolable for $ty {
            const ZERO: Self = $zero;

            fn pool() -> &'static LocalKey<RefCell<Vec<Vec<Self>>>> {
                &$pool
            }
        }
    };
}

poolable!(f32, 0.0, POOL_F32);
poolable!(i8, 0, POOL_I8);
poolable!(u8, 0, POOL_U8);
poolable!(i32, 0, POOL_I32);
poolable!(i64, 0, POOL_I64);

/// A pooled buffer; dereferences to a slice of the requested length.
///
/// On drop the underlying allocation is returned to the thread-local pool
/// for reuse by the next [`take`] of the same element type.
#[derive(Debug)]
pub struct ScratchBuf<T: Poolable = f32> {
    buf: Vec<T>,
}

/// Borrows a zero-filled buffer of exactly `len` elements from the
/// thread-local pool of the requested element type, allocating only if the
/// pool is empty.
pub fn take<T: Poolable>(len: usize) -> ScratchBuf<T> {
    let mut buf = T::pool().with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.clear();
    buf.resize(len, T::ZERO);
    ScratchBuf { buf }
}

impl<T: Poolable> Deref for ScratchBuf<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.buf
    }
}

impl<T: Poolable> DerefMut for ScratchBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.buf
    }
}

impl<T: Poolable> Drop for ScratchBuf<T> {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        if buf.capacity() == 0 {
            return;
        }
        T::pool().with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < POOL_CAP {
                pool.push(buf);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_zeroed_even_after_reuse() {
        {
            let mut b = take::<f32>(16);
            b.iter_mut().for_each(|x| *x = 42.0);
        }
        let b = take::<f32>(16);
        assert!(b.iter().all(|&x| x == 0.0));
        assert_eq!(b.len(), 16);
    }

    #[test]
    fn capacity_is_recycled() {
        let ptr = {
            let b = take::<f32>(1024);
            b.as_ptr()
        };
        // The freed allocation should be handed straight back.
        let b = take::<f32>(1024);
        assert_eq!(b.as_ptr(), ptr);
    }

    #[test]
    fn integer_pools_are_distinct_from_the_float_pool() {
        let i8_ptr = {
            let b = take::<i8>(256);
            b.as_ptr() as usize
        };
        // Recycled within the same type...
        let b = take::<i8>(256);
        assert_eq!(b.as_ptr() as usize, i8_ptr);
        drop(b);
        // ...and i32/u8 takes are served from their own pools.
        let w = take::<i32>(64);
        assert!(w.iter().all(|&x| x == 0));
        let u = take::<u8>(64);
        assert!(u.iter().all(|&x| x == 0));
    }

    #[test]
    fn nested_takes_get_distinct_buffers() {
        let mut a = take::<f32>(8);
        let mut b = take::<f32>(8);
        a[0] = 1.0;
        b[0] = 2.0;
        assert_ne!(a.as_ptr(), b.as_ptr());
        assert_eq!((a[0], b[0]), (1.0, 2.0));
    }

    #[test]
    fn zero_length_take_works() {
        let b = take::<f32>(0);
        assert!(b.is_empty());
    }
}
