//! Thread-local scratch-buffer arena for kernel temporaries.
//!
//! Fault-injection campaigns run thousands of forward passes over the same
//! network, and every conv layer used to allocate (and fault-in pages for)
//! fresh im2col matrices, per-image copies and matmul outputs on each pass.
//! This module recycles those buffers: [`take`] hands out a zeroed `Vec<f32>`
//! from a per-thread pool, and dropping the returned [`ScratchBuf`] returns
//! the allocation to the pool instead of freeing it.
//!
//! The pool is thread-local, so parallel MCMC chains each keep their own
//! warm buffers without any synchronisation.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Maximum number of idle buffers kept per thread; beyond this, dropped
/// buffers are simply freed. Conv forward + backward needs at most a handful
/// of live buffers at once, so a small cap bounds memory without ever
/// hitting the allocator on the steady-state inference path.
const POOL_CAP: usize = 8;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// A pooled `f32` buffer; dereferences to a slice of the requested length.
///
/// On drop the underlying allocation is returned to the thread-local pool
/// for reuse by the next [`take`].
#[derive(Debug)]
pub struct ScratchBuf {
    buf: Vec<f32>,
}

/// Borrows a zero-filled buffer of exactly `len` elements from the
/// thread-local pool, allocating only if the pool is empty or too small.
pub fn take(len: usize) -> ScratchBuf {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.clear();
    buf.resize(len, 0.0);
    ScratchBuf { buf }
}

impl Deref for ScratchBuf {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl DerefMut for ScratchBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for ScratchBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        if buf.capacity() == 0 {
            return;
        }
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < POOL_CAP {
                pool.push(buf);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_zeroed_even_after_reuse() {
        {
            let mut b = take(16);
            b.iter_mut().for_each(|x| *x = 42.0);
        }
        let b = take(16);
        assert!(b.iter().all(|&x| x == 0.0));
        assert_eq!(b.len(), 16);
    }

    #[test]
    fn capacity_is_recycled() {
        let ptr = {
            let b = take(1024);
            b.as_ptr()
        };
        // The freed allocation should be handed straight back.
        let b = take(1024);
        assert_eq!(b.as_ptr(), ptr);
    }

    #[test]
    fn nested_takes_get_distinct_buffers() {
        let mut a = take(8);
        let mut b = take(8);
        a[0] = 1.0;
        b[0] = 2.0;
        assert_ne!(a.as_ptr(), b.as_ptr());
        assert_eq!((a[0], b[0]), (1.0, 2.0));
    }

    #[test]
    fn zero_length_take_works() {
        let b = take(0);
        assert!(b.is_empty());
    }
}
