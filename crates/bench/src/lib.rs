//! # bdlfi-bench
//!
//! Benchmark and figure-regeneration harness for the BDLFI reproduction.
//!
//! One binary per paper artifact (see DESIGN.md §2 and EXPERIMENTS.md):
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `fig1_boundary` | Fig. 1 ③ — decision-boundary error-probability map |
//! | `fig2_mlp_sweep` | Fig. 2 — MLP error vs flip probability |
//! | `fig3_resnet_layers` | Fig. 3 — ResNet-18 layer-by-layer injection |
//! | `fig4_resnet_sweep` | Fig. 4 — ResNet-18 error vs flip probability |
//! | `exp5_completeness` | §I claim — completeness via MCMC mixing |
//! | `exp6_acceleration` | §I claim — rare-event algorithmic acceleration |
//! | `exp7_bit_ablation` | fault-model ablation — bit-position / site sensitivity |
//! | `exp8_kernels` | design ablation — MCMC kernel mixing efficiency |
//! | `exp9_adaptive` | adaptive campaigns — run until certified |
//!
//! Criterion micro-benchmarks (`cargo bench`) cover the substrate: tensor
//! kernels, injection throughput, MCMC step cost and end-to-end campaigns.
//!
//! The [`harness`] module trains and caches the two golden networks so
//! every binary reuses them instead of retraining.

#![warn(missing_docs)]

pub mod harness;
