//! Shared experiment harness: golden-network training with on-disk weight
//! caching, experiment scaling knobs and table printing helpers.
//!
//! The two golden networks mirror the paper's setup (§III): the Fig. 1 MLP
//! (2 → 32 ReLU → softmax) trained on a 2-D task with a ~5 % golden error,
//! and a ResNet-18 trained on the synth-CIFAR substitute with a golden
//! error in the paper's ~30 % band (see DESIGN.md §4 for the
//! substitutions).

use bdlfi_data::{gaussian_blobs, synth_cifar, Dataset, SynthCifarConfig};
use bdlfi_nn::{
    evaluate, mlp, optim::Sgd, resnet18, serialize, ResNetConfig, Sequential, TrainConfig, Trainer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

/// Experiment scale, controlled by the `BDLFI_SCALE` environment variable
/// (`quick`, `default` or `full`).
///
/// `quick` exists for smoke-testing the harness end to end; `full` grows
/// sample budgets for tighter intervals. Figure *shapes* are stable across
/// scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// MCMC chains per campaign.
    pub chains: usize,
    /// Recorded samples per chain.
    pub samples: usize,
    /// Burn-in steps per chain.
    pub burn_in: usize,
    /// Points in a flip-probability sweep.
    pub sweep_points: usize,
    /// Grid resolution of the boundary map.
    pub boundary_res: usize,
    /// Fault samples for the boundary map.
    pub boundary_samples: usize,
    /// ResNet evaluation-set size.
    pub resnet_eval: usize,
    /// Injections per traditional-FI campaign.
    pub fi_injections: usize,
}

impl Scale {
    /// Reads the scale from `BDLFI_SCALE` (defaults to `default`).
    pub fn from_env() -> Self {
        match std::env::var("BDLFI_SCALE").as_deref() {
            Ok("quick") => Scale {
                chains: 2,
                samples: 40,
                burn_in: 5,
                sweep_points: 5,
                boundary_res: 24,
                boundary_samples: 80,
                resnet_eval: 48,
                fi_injections: 40,
            },
            Ok("full") => Scale {
                chains: 4,
                samples: 500,
                burn_in: 50,
                sweep_points: 9,
                boundary_res: 60,
                boundary_samples: 600,
                resnet_eval: 200,
                fi_injections: 500,
            },
            _ => Scale {
                chains: 3,
                samples: 150,
                burn_in: 15,
                sweep_points: 7,
                boundary_res: 40,
                boundary_samples: 250,
                resnet_eval: 96,
                fi_injections: 150,
            },
        }
    }
}

/// Directory for cached golden weights and experiment outputs
/// (`BDLFI_ARTIFACTS`, default `target/bdlfi-artifacts`).
pub fn artifacts_dir() -> PathBuf {
    let dir = std::env::var("BDLFI_ARTIFACTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/bdlfi-artifacts"));
    std::fs::create_dir_all(&dir).expect("cannot create artifacts directory");
    dir
}

/// The paper's MLP workload: model (2 → 32 → 3 softmax), train split and
/// held-out evaluation split.
///
/// Weights are cached under the artifacts directory; delete
/// `mlp_weights.json` to force retraining. The blob spread is tuned so the
/// golden error lands in the paper's ≈5 % band (Fig. 2's golden line).
pub fn golden_mlp() -> (Sequential, Arc<Dataset>, Arc<Dataset>) {
    let mut rng = StdRng::seed_from_u64(2019);
    let data = gaussian_blobs(1200, 3, 1.25, &mut rng);
    let (train, test) = data.split(0.75, &mut rng);
    let mut model = mlp(2, &[32], 3, &mut rng);

    let cache = artifacts_dir().join("mlp_weights.json");
    if serialize::load_weights(&mut model, &cache).is_err() {
        eprintln!(
            "[harness] training golden MLP ({} examples)...",
            train.len()
        );
        let mut trainer = Trainer::new(
            Sgd::new(0.1).with_momentum(0.9),
            TrainConfig {
                epochs: 40,
                batch_size: 32,
                lr_decay: 0.1,
                lr_milestones: &[30],
                verbose: false,
            },
        );
        trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
        serialize::save_weights(&model, &cache).expect("cannot cache MLP weights");
    }
    let acc = evaluate(&mut model, test.inputs(), test.labels(), 64);
    eprintln!(
        "[harness] golden MLP test error: {:.2} %",
        (1.0 - acc) * 100.0
    );
    (model, Arc::new(train), Arc::new(test))
}

/// The ResNet-18 workload on synth-CIFAR: model, train split, evaluation
/// split of `eval_size` examples.
///
/// Uses the CPU-tractable base width 8 (identical 18-layer topology; see
/// DESIGN.md §4). The synth-CIFAR noise level is tuned so the golden error
/// lands in the paper's ≈30 % band (Fig. 4's golden line). Weights are
/// cached under the artifacts directory.
pub fn golden_resnet(eval_size: usize) -> (Sequential, Arc<Dataset>, Arc<Dataset>) {
    let mut rng = StdRng::seed_from_u64(18);
    let cfg = SynthCifarConfig {
        classes: 10,
        image_size: 32,
        noise: 1.0,
        phase_jitter: 1.0,
        label_noise: 0.30,
    };
    let data = synth_cifar(1200 + eval_size, cfg, &mut rng);
    let indices: Vec<usize> = (0..data.len()).collect();
    let train = data.subset(&indices[..1200]);
    let eval = data.subset(&indices[1200..]);

    let net_cfg = ResNetConfig {
        in_channels: 3,
        base_width: 8,
        classes: 10,
    };
    let mut model = resnet18(net_cfg, &mut rng);

    let cache = artifacts_dir().join("resnet18_w8_weights.json");
    if serialize::load_weights(&mut model, &cache).is_err() {
        eprintln!(
            "[harness] training golden ResNet-18 (w=8, {} examples) — this takes a few minutes once...",
            train.len()
        );
        let mut trainer = Trainer::new(
            Sgd::new(0.05).with_momentum(0.9).with_weight_decay(5e-4),
            TrainConfig {
                epochs: 8,
                batch_size: 32,
                lr_decay: 0.1,
                lr_milestones: &[6],
                verbose: true,
            },
        );
        trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
        serialize::save_weights(&model, &cache).expect("cannot cache ResNet weights");
    }
    let acc = evaluate(&mut model, eval.inputs(), eval.labels(), 32);
    eprintln!(
        "[harness] golden ResNet-18 eval error: {:.2} %",
        (1.0 - acc) * 100.0
    );
    (model, Arc::new(train), Arc::new(eval))
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env_variants() {
        // from_env reads the process env; exercise the default arm.
        let s = Scale::from_env();
        assert!(s.chains >= 2);
        assert!(s.samples > 0);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(0.1234), "12.34");
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }
}
