//! End-to-end smoke scenario for the `bdlfi-serve` daemon, exercised as a
//! real child *process* (not an in-process handle), so the kill is a real
//! `SIGKILL` and the journal tail can genuinely tear mid-append.
//!
//! Phase 1 — concurrency: spawn a daemon with a two-worker pool, submit
//! two campaigns, stream both event logs to completion concurrently, and
//! check each delivered every per-chain result plus live diagnostics.
//!
//! Phase 2 — crash recovery: on a fresh state directory, submit the same
//! spec as phase 1's first job, `SIGKILL` the daemon after the first
//! journaled result, restart it on the same directory, resume the job
//! over HTTP, and require the resumed report to be byte-identical (after
//! normalizing execution metadata) to phase 1's uninterrupted report.
//!
//! Exits nonzero on any mismatch; CI runs this as the `serve-smoke` job.

use bdlfi::CampaignConfig;
use bdlfi_bayes::ChainConfig;
use bdlfi_faults::SiteSpec;
use bdlfi_serve::client;
use bdlfi_serve::spec::{DatasetSpec, DriverSpec, JobSpec, ModelSpec, ScenarioSpec};
use serde::{Number, Serialize, Value};
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn main() {
    match run() {
        Ok(()) => println!("serve_smoke: OK"),
        Err(e) => {
            eprintln!("serve_smoke: FAILED: {e}");
            std::process::exit(1);
        }
    }
}

fn run() -> Result<(), String> {
    let serve_bin = find_serve_binary()?;
    let scratch = std::env::temp_dir().join(format!("bdlfi-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let result = phases(&serve_bin, &scratch);
    let _ = std::fs::remove_dir_all(&scratch);
    result
}

fn phases(serve_bin: &Path, scratch: &Path) -> Result<(), String> {
    let reference = concurrency_phase(serve_bin, &scratch.join("concurrent"))?;
    crash_recovery_phase(serve_bin, &scratch.join("recovery"), &reference)
}

/// Two concurrent campaigns over one daemon; returns job 1's report as
/// the uninterrupted reference for phase 2.
fn concurrency_phase(serve_bin: &Path, state_dir: &Path) -> Result<Value, String> {
    println!("phase 1: two concurrent campaigns over a shared pool");
    let mut daemon = spawn_daemon(serve_bin, state_dir, 2)?;
    let result = (|| {
        let addr = daemon.addr.clone();
        let a = submit(&addr, &smoke_spec(9101))?;
        let b = submit(&addr, &smoke_spec(9102))?;
        let streams: Vec<_> = [a.clone(), b.clone()]
            .into_iter()
            .map(|id| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    client::request(
                        &addr,
                        "GET",
                        &format!("/jobs/{id}/events"),
                        None,
                        Duration::from_secs(300),
                    )
                })
            })
            .collect();
        for (stream, id) in streams.into_iter().zip([&a, &b]) {
            let resp = stream
                .join()
                .map_err(|_| "event stream thread panicked".to_string())??;
            if resp.status != 200 {
                return Err(format!("event stream for {id} got {}", resp.status));
            }
            let results = resp
                .body
                .lines()
                .filter(|l| l.contains(r#""event":"result""#))
                .count();
            if results != 4 {
                return Err(format!("{id}: expected 4 results, streamed {results}"));
            }
            if !resp.body.contains(r#""event":"diagnostics""#) {
                return Err(format!("{id}: no live diagnostics in stream"));
            }
            if !resp.body.contains(r#""event":"done""#) {
                return Err(format!("{id}: stream ended without done"));
            }
            println!("  {id}: 4 results + diagnostics streamed to completion");
        }
        wait_status(&addr, &a, "done", Duration::from_secs(60))?;
        wait_status(&addr, &b, "done", Duration::from_secs(60))?;
        fetch_report(&addr, &a)
    })();
    daemon.stop();
    result
}

/// Kill the daemon mid-campaign with SIGKILL, restart it on the same
/// state directory, resume over HTTP, and byte-compare against the
/// uninterrupted reference.
fn crash_recovery_phase(
    serve_bin: &Path,
    state_dir: &Path,
    reference: &Value,
) -> Result<(), String> {
    println!("phase 2: SIGKILL mid-campaign, restart, resume");
    let mut daemon = spawn_daemon(serve_bin, state_dir, 1)?;
    let setup: Result<String, String> = (|| {
        let id = submit(&daemon.addr, &smoke_spec(9101))?;
        client::await_in_stream(
            &daemon.addr,
            &format!("/jobs/{id}/events"),
            r#""event":"result""#,
            1,
            Duration::from_secs(120),
        )?;
        Ok(id)
    })();
    let id = match setup {
        Ok(id) => id,
        Err(e) => {
            daemon.stop();
            return Err(e);
        }
    };
    daemon.kill()?;
    println!("  daemon killed after first journaled result");

    let mut daemon = spawn_daemon(serve_bin, state_dir, 1)?;
    let result = (|| {
        let addr = daemon.addr.clone();
        let summary = get_json(&addr, &format!("/jobs/{id}"))?;
        if summary.get("status").and_then(Value::as_str) != Some("interrupted") {
            return Err(format!(
                "restart did not recover interrupted status: {summary:?}"
            ));
        }
        if !matches!(summary.get("resumable"), Some(Value::Bool(true))) {
            return Err("journal did not survive the kill".to_string());
        }
        let resp = client::request(
            &addr,
            "POST",
            &format!("/jobs/{id}/resume"),
            None,
            Duration::from_secs(10),
        )?;
        if resp.status != 202 || !resp.body.contains(r#""resumed_from_journal":true"#) {
            return Err(format!("resume rejected ({}): {}", resp.status, resp.body));
        }
        wait_status(&addr, &id, "done", Duration::from_secs(120))?;
        let resumed = fetch_report(&addr, &id)?;
        if normalized_report_bytes(&resumed)? != normalized_report_bytes(reference)? {
            return Err("resumed report differs from uninterrupted reference".to_string());
        }
        println!("  resumed report is byte-identical to the uninterrupted run");
        Ok(())
    })();
    daemon.stop();
    result
}

/// A campaign big enough that a kill lands mid-job but small enough to
/// finish in well under a minute even on a loaded CI runner.
fn smoke_spec(seed: u64) -> JobSpec {
    JobSpec {
        scenario: ScenarioSpec {
            dataset: DatasetSpec {
                examples: 200,
                classes: 3,
                spread: 0.6,
                seed: 21,
                train_frac: 0.7,
            },
            model: ModelSpec {
                hidden: vec![16],
                epochs: 4,
                batch_size: 32,
                lr: 0.1,
                momentum: 0.9,
                seed: 22,
            },
            quantized: false,
            sites: SiteSpec::AllParams,
            flip_probability: 1e-3,
        },
        driver: DriverSpec::Campaign {
            config: CampaignConfig {
                chains: 4,
                chain: ChainConfig {
                    burn_in: 10,
                    samples: 800,
                    thin: 1,
                },
                seed,
                workers: 1,
                ..CampaignConfig::default()
            },
        },
        shard: None,
    }
}

struct DaemonProcess {
    child: Child,
    addr: String,
}

impl DaemonProcess {
    /// Clean shutdown: ask over HTTP, then wait for exit.
    fn stop(&mut self) {
        let _ = client::request(
            &self.addr,
            "POST",
            "/shutdown",
            None,
            Duration::from_secs(5),
        );
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                _ => {
                    let _ = self.child.kill();
                    let _ = self.child.wait();
                    return;
                }
            }
        }
    }

    /// SIGKILL — no chance to flush or settle anything.
    fn kill(&mut self) -> Result<(), String> {
        self.child
            .kill()
            .map_err(|e| format!("cannot kill daemon: {e}"))?;
        self.child
            .wait()
            .map_err(|e| format!("cannot reap daemon: {e}"))?;
        Ok(())
    }
}

fn spawn_daemon(serve_bin: &Path, state_dir: &Path, pool: usize) -> Result<DaemonProcess, String> {
    let mut child = Command::new(serve_bin)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--state-dir",
            &state_dir.display().to_string(),
            "--pool",
            &pool.to_string(),
            "--sync-every",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", serve_bin.display()))?;
    let stdout = child.stdout.take().ok_or("daemon stdout not captured")?;
    let mut lines = std::io::BufReader::new(stdout).lines();
    let first = lines
        .next()
        .ok_or("daemon exited before announcing its address")?
        .map_err(|e| format!("cannot read daemon stdout: {e}"))?;
    let addr = first
        .rsplit(' ')
        .next()
        .filter(|a| a.contains(':'))
        .ok_or_else(|| format!("unparseable announce line: {first}"))?
        .to_string();
    // Drain any further output so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Ok(DaemonProcess { child, addr })
}

fn find_serve_binary() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("cannot locate self: {e}"))?;
    let dir = me.parent().ok_or("current exe has no parent dir")?;
    let candidates = [dir.join("bdlfi-serve"), dir.join("bdlfi-serve.exe")];
    candidates
        .iter()
        .find(|p| p.exists())
        .cloned()
        .ok_or_else(|| {
            format!(
                "bdlfi-serve binary not found next to {} — build it first \
                 (cargo build --release -p bdlfi-serve)",
                dir.display()
            )
        })
}

fn submit(addr: &str, spec: &JobSpec) -> Result<String, String> {
    let body = serde_json::to_string(&spec.to_json_value())
        .map_err(|e| format!("cannot serialize spec: {e}"))?;
    let resp = client::request(addr, "POST", "/jobs", Some(&body), Duration::from_secs(30))?;
    if resp.status != 202 {
        return Err(format!("submit rejected ({}): {}", resp.status, resp.body));
    }
    let summary: Value =
        serde_json::from_str(&resp.body).map_err(|e| format!("bad submit response: {e}"))?;
    summary
        .get("id")
        .and_then(Value::as_str)
        .map(ToString::to_string)
        .ok_or_else(|| format!("submit response has no id: {}", resp.body))
}

fn get_json(addr: &str, path: &str) -> Result<Value, String> {
    let resp = client::request(addr, "GET", path, None, Duration::from_secs(10))?;
    if resp.status != 200 {
        return Err(format!("GET {path} got {}: {}", resp.status, resp.body));
    }
    serde_json::from_str(&resp.body).map_err(|e| format!("GET {path}: bad JSON: {e}"))
}

fn wait_status(addr: &str, id: &str, want: &str, timeout: Duration) -> Result<(), String> {
    let deadline = Instant::now() + timeout;
    loop {
        let summary = get_json(addr, &format!("/jobs/{id}"))?;
        let got = summary
            .get("status")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        if got == want {
            return Ok(());
        }
        if got.starts_with("failed") || summary.get("error").is_some() {
            return Err(format!("job {id} failed: {summary:?}"));
        }
        if Instant::now() >= deadline {
            return Err(format!("job {id} stuck at {got}, wanted {want}"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn fetch_report(addr: &str, id: &str) -> Result<Value, String> {
    get_json(addr, &format!("/jobs/{id}/report"))
}

/// Reports from different attempts must agree on everything except
/// execution metadata; null out `run_meta` and the granted worker count
/// before comparing serialized bytes.
fn normalized_report_bytes(report: &Value) -> Result<String, String> {
    fn scrub(v: &mut Value) {
        if let Value::Object(entries) = v {
            for (key, val) in entries.iter_mut() {
                if key == "run_meta" {
                    *val = Value::Null;
                } else if key == "workers" {
                    *val = Value::Number(Number::U(0));
                } else {
                    scrub(val);
                }
            }
        } else if let Value::Array(items) = v {
            for item in items.iter_mut() {
                scrub(item);
            }
        }
    }
    let mut scrubbed = report.clone();
    scrub(&mut scrubbed);
    serde_json::to_string(&scrubbed).map_err(|e| format!("cannot serialize report: {e}"))
}
