//! Experiment E9 — the adaptive campaign: "inject until further injections
//! do not change the measured hypothesis", run as a closed loop.
//!
//! [`bdlfi::run_campaign_adaptive`] extends the chains in segments and
//! stops at the first segment boundary where the completeness criteria
//! (split-R̂, ESS, MCSE) certify. This binary shows the consumed budget
//! adapting to problem difficulty: low-variance targets certify in one or
//! two segments, high-variance targets keep drawing.
//!
//! Run with `cargo run --release -p bdlfi-bench --bin exp9_adaptive`.

use bdlfi::{
    run_campaign_adaptive, CampaignConfig, CompletenessCriteria, FaultyModel, KernelChoice,
};
use bdlfi_bayes::ChainConfig;
use bdlfi_bench::harness::{golden_mlp, pct, Scale};
use bdlfi_faults::{BernoulliBitFlip, SiteSpec};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let (model, _train, test) = golden_mlp();

    println!("# E9: adaptive (run-until-certified) campaigns, MLP");
    println!("# segment = 50 samples/chain, 3 chains, cap = 2000 samples/chain");
    println!();
    println!("| p | samples/chain used | total injections | R-hat | ESS | MCSE | certified | error % | wall |");
    println!("|---|---|---|---|---|---|---|---|---|");

    for p in [1e-5, 1e-4, 1e-3, 5e-3, 2e-2] {
        let fm = FaultyModel::new(
            model.clone(),
            Arc::clone(&test),
            &SiteSpec::AllParams,
            Arc::new(BernoulliBitFlip::new(p)),
        );
        let cfg = CampaignConfig {
            chains: scale.chains.max(3),
            chain: ChainConfig {
                burn_in: 0,
                samples: 50,
                thin: 1,
            },
            kernel: KernelChoice::Prior,
            seed: 9,
            criteria: CompletenessCriteria::default(),
            workers: 0,
        };
        let start = Instant::now();
        let rep = run_campaign_adaptive(&fm, &cfg, 2000);
        let wall = start.elapsed();
        println!(
            "| {:.0e} | {} | {} | {:.3} | {:.0} | {:.4} | {} | {} | {:.1?} |",
            p,
            rep.traces[0].len(),
            rep.total_samples(),
            rep.completeness.rhat,
            rep.completeness.ess,
            rep.completeness.mcse,
            if rep.completeness.certified {
                "yes"
            } else {
                "capped"
            },
            pct(rep.mean_error),
            wall
        );
    }
    println!();
    println!(
        "reading: the injection budget is no longer a user guess — easy (low-variance) \
         regimes certify within a segment or two, hard regimes keep sampling until the \
         MCSE criterion is met or the cap is reached"
    );
}
