//! Regenerates paper Fig. 3: ResNet-18 fault injection on a
//! layer-by-layer basis.
//!
//! Paper finding reproduced: *error propagation to the output is NOT
//! related to the depth of the injected layer* (contradicting Li et al.
//! \[1\]); the Spearman correlation between depth and mean error is near
//! zero under BDLFI's mixing-certified campaigns. A small-budget
//! traditional-FI study is run side by side to show how sampling noise can
//! manufacture a spurious depth trend.
//!
//! Run with `cargo run --release -p bdlfi-bench --bin fig3_resnet_layers`.

use bdlfi::{run_layerwise, CampaignConfig, KernelChoice, LayerBudget};
use bdlfi_baseline::{run_layer_fi, RandomFiConfig};
use bdlfi_bayes::ChainConfig;
use bdlfi_bench::harness::{artifacts_dir, golden_resnet, pct, Scale};
use bdlfi_nn::resnet18_layer_positions;

fn main() {
    let scale = Scale::from_env();
    let (model, _train, eval) = golden_resnet(scale.resnet_eval);
    let layers = resnet18_layer_positions();
    let flips = 8.0; // equal expected flipped bits per layer

    let cfg = CampaignConfig {
        chains: scale.chains.min(2),
        chain: ChainConfig {
            burn_in: 0,
            samples: (scale.samples / 2).max(20),
            thin: 1,
        },
        kernel: KernelChoice::Prior,
        seed: 3,
        ..CampaignConfig::default()
    };

    println!("# Fig. 3: ResNet-18 layer-by-layer injection ({flips} expected bit flips/layer)");
    println!(
        "# per-layer p scaled so every layer absorbs the same fault burden; depth 0 = stem conv"
    );
    println!();
    println!(
        "| depth | layer | elements | p (per-bit) | error % (mean) | q95 % | R-hat | certified |"
    );
    println!("|---|---|---|---|---|---|---|---|");

    let res = run_layerwise(
        &model,
        &eval,
        &layers,
        LayerBudget::ExpectedFlips(flips),
        &cfg,
    );
    for l in &res.layers {
        println!(
            "| {} | {} | {} | {:.2e} | {} | {} | {:.3} | {} |",
            l.depth,
            l.layer,
            l.elements,
            l.p,
            pct(l.report.mean_error),
            pct(l.report.summary.q95),
            l.report.completeness.rhat,
            if l.report.completeness.certified {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!();
    println!("golden run error: {} %", pct(res.golden_error));
    println!(
        "Spearman(depth, error) = {:.3}  (paper: no depth relationship -> near zero)",
        res.depth_correlation
    );
    println!();

    // The comparator: a Li-et-al.-style small-budget single-bit study.
    println!("## Traditional FI comparator (single-bit flips, small budget)");
    let budgets = [scale.fi_injections / 10, scale.fi_injections];
    for budget in budgets {
        let study = run_layer_fi(
            &model,
            &eval,
            &layers,
            &RandomFiConfig {
                injections: budget.max(5),
                seed: 17,
                level: 0.95,
                workers: 0,
            },
        );
        let rates: Vec<String> = study
            .layers
            .iter()
            .map(|l| format!("{:.2}", l.result.sdc.rate))
            .collect();
        println!(
            "budget {:>4}/layer: SDC rates by depth = [{}], Spearman(depth, SDC) = {:.3}",
            budget.max(5),
            rates.join(", "),
            study.depth_correlation
        );
    }
    println!();
    println!(
        "paper reading: small-budget traditional FI produces unstable depth trends; \
         the mixing-certified BDLFI estimate shows no depth relationship"
    );

    let out = artifacts_dir().join("fig3_resnet_layers.json");
    std::fs::write(&out, serde_json::to_string_pretty(&res.layers).unwrap()).unwrap();
    eprintln!("[fig3] results saved to {}", out.display());
}
