//! Experiment E6 — the paper's §I claim: BDLFI admits *algorithmic
//! acceleration*. In the rare-error regime (small `p`), plain prior
//! sampling wastes almost every sample on configurations that change
//! nothing. Two accelerations are exercised:
//!
//! * **tilted-prior importance sampling** (`KernelChoice::TiltedPrior`) —
//!   draw iid from the fault model with its rate inflated, re-weight each
//!   sample back to the true prior with exact closed-form weights: hits
//!   appear ~factor× more often at equal budget, and the estimate stays
//!   unbiased;
//! * **indicator-tempered MCMC** (`KernelChoice::Tempered`) — target
//!   `π_β ∝ prior · exp(β·1[error])`, which parks the chain on
//!   error-causing configurations: the tool for *exploring which faults
//!   matter* rather than estimating rates.
//!
//! Run with `cargo run --release -p bdlfi-bench --bin exp6_acceleration`.

use bdlfi::{run_campaign, CampaignConfig, FaultyModel, KernelChoice};
use bdlfi_bayes::ChainConfig;
use bdlfi_bench::harness::{golden_mlp, Scale};
use bdlfi_faults::{BernoulliBitFlip, SiteSpec};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let (model, _train, test) = golden_mlp();
    let p = 2e-5; // rare-error regime: E[flips] ~ 0.08 per configuration
    let seeds = [11u64, 12, 13, 14, 15];

    let fm = FaultyModel::new(
        model,
        Arc::clone(&test),
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(p)),
    );

    println!("# E6: rare-event acceleration (MLP, p = {p})");
    println!("# golden error: {:.2} %", fm.golden_error() * 100.0);
    println!();
    println!("## Estimation: tilted-prior importance sampling");
    println!(
        "| kernel | mean estimate of E[error - golden] | std over seeds | hit fraction | IS-ESS |"
    );
    println!("|---|---|---|---|---|");

    for (name, kernel) in [
        ("prior (iid)", KernelChoice::Prior),
        (
            "tilted prior x10",
            KernelChoice::TiltedPrior { factor: 10.0 },
        ),
        (
            "tilted prior x30",
            KernelChoice::TiltedPrior { factor: 30.0 },
        ),
    ] {
        let mut estimates = Vec::new();
        let mut hit_fracs = Vec::new();
        let mut iess_sum = 0.0;
        for &seed in &seeds {
            let cfg = CampaignConfig {
                chains: 2,
                chain: ChainConfig {
                    burn_in: 0,
                    samples: scale.samples,
                    thin: 1,
                },
                kernel,
                seed,
                ..CampaignConfig::default()
            };
            let rep = run_campaign(&fm, &cfg);
            estimates.push(rep.mean_error - rep.golden_error);
            let hits = rep
                .traces
                .iter()
                .flat_map(|t| t.samples())
                .filter(|&&e| e > rep.golden_error + 1e-12)
                .count();
            hit_fracs.push(hits as f64 / rep.total_samples() as f64);
            iess_sum += rep.importance_ess.unwrap_or(rep.total_samples() as f64);
        }
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        let std = (estimates.iter().map(|e| (e - mean).powi(2)).sum::<f64>()
            / estimates.len() as f64)
            .sqrt();
        let hit = hit_fracs.iter().sum::<f64>() / hit_fracs.len() as f64;
        println!(
            "| {} | {:.3e} | {:.3e} | {:.3} | {:.0} |",
            name,
            mean,
            std,
            hit,
            iess_sum / seeds.len() as f64
        );
    }
    println!();
    println!(
        "reading: the tilted prior sees errors ~10-30x more often at equal budget and \
         its re-weighted estimates agree with the plain prior; pushing the tilt too \
         far collapses the importance ESS (visible in the x30 row)."
    );
    println!();

    // Exploration: the tempered kernel parks the chain on error-causing
    // configurations once beta exceeds the per-bit prior barrier
    // ln((1-p)/p).
    println!("## Exploration: indicator-tempered MCMC");
    let barrier = ((1.0 - p) / p).ln();
    let beta = barrier + 2.0;
    let cfg = CampaignConfig {
        chains: 2,
        chain: ChainConfig {
            burn_in: scale.burn_in * 4,
            samples: scale.samples,
            thin: 1,
        },
        kernel: KernelChoice::Tempered { beta },
        seed: 21,
        ..CampaignConfig::default()
    };
    let rep = run_campaign(&fm, &cfg);
    let hits = rep
        .traces
        .iter()
        .flat_map(|t| t.samples())
        .filter(|&&e| e > rep.golden_error + 1e-12)
        .count();
    println!(
        "beta = {beta:.1} (prior barrier {barrier:.1}): hit fraction {:.2} vs prior ~0.01 — \
         the chain concentrates on the error-causing region of the fault space",
        hits as f64 / rep.total_samples() as f64
    );
    println!("mean flips while exploring: {:.2}", rep.mean_flips);
}
