//! Regenerates paper Fig. 4: classification error (%) of ResNet-18 as a
//! function of the per-bit flip probability, faults in all layers, with
//! the golden-run reference line.
//!
//! Paper finding reproduced: the same *two-regime* shape as the MLP
//! (Fig. 2), starting from the higher ResNet golden error band (~30 % in
//! the paper; the synth-CIFAR substitute is tuned to the same band).
//!
//! Note on the x-range: the knee sits where the *expected number of
//! flipped bits* `p · 32 · #params` reaches order one, so its location in
//! `p` scales inversely with network size. This ResNet-18 exposes ~7e5
//! parameters (2.2e7 bits), so the informative range is `1e-8 … 1e-3`;
//! the table reports the expected flip count alongside `p` to make the
//! correspondence with the paper's axis explicit.
//!
//! Run with `cargo run --release -p bdlfi-bench --bin fig4_resnet_sweep`.

use bdlfi::{log_spaced_probabilities, run_sweep, CampaignConfig, KernelChoice};
use bdlfi_bayes::ChainConfig;
use bdlfi_bench::harness::{artifacts_dir, golden_resnet, pct, Scale};
use bdlfi_faults::SiteSpec;

fn main() {
    let scale = Scale::from_env();
    let (model, _train, eval) = golden_resnet(scale.resnet_eval);

    let cfg = CampaignConfig {
        chains: scale.chains.min(2),
        chain: ChainConfig {
            burn_in: 0,
            samples: (scale.samples / 3).max(20),
            thin: 1,
        },
        kernel: KernelChoice::Prior,
        seed: 4,
        ..CampaignConfig::default()
    };
    let ps = log_spaced_probabilities(1e-8, 1e-3, scale.sweep_points.min(7));

    println!("# Fig. 4: ResNet-18 classification error vs flip probability (all layers)");
    println!(
        "# {} chains x {} samples per p, eval set {}",
        cfg.chains,
        cfg.chain.samples,
        eval.len()
    );
    println!();

    let sweep = run_sweep(&model, &eval, &SiteSpec::AllParams, &ps, &cfg);

    println!("| p | E[flips] | error % (mean) | q05 % | q95 % | R-hat | certified |");
    println!("|---|---|---|---|---|---|---|");
    for pt in &sweep.points {
        let r = &pt.report;
        println!(
            "| {:.1e} | {:.1} | {} | {} | {} | {:.3} | {} |",
            pt.p,
            r.mean_flips,
            pct(r.mean_error),
            pct(r.summary.q05),
            pct(r.summary.q95),
            r.completeness.rhat,
            if r.completeness.certified {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!();
    println!("golden run error: {} %", pct(sweep.golden_error));

    if let Some(knee) = sweep.knee() {
        println!(
            "two-regime fit: knee at p = {:.2e} (left slope {:.4}, right slope {:.4} error/decade)",
            knee.knee_p, knee.fit.left_slope, knee.fit.right_slope
        );
    }

    let out = artifacts_dir().join("fig4_resnet_sweep.json");
    std::fs::write(&out, serde_json::to_string_pretty(&sweep.points).unwrap()).unwrap();
    eprintln!("[fig4] sweep saved to {}", out.display());
}
