//! Regenerates paper Fig. 1 ③: the log(error)-probability map due to
//! faults over the MLP's 2-D input space, against the original
//! classification boundary.
//!
//! Paper finding reproduced: *the effect of faults is most significant at
//! the decision boundary* — the map's high-error ridge follows the golden
//! decision boundary, and error probability anti-correlates with the
//! golden softmax margin.
//!
//! Run with `cargo run --release -p bdlfi-bench --bin fig1_boundary`.

use bdlfi::{boundary_map, BoundaryConfig};
use bdlfi_bench::harness::{artifacts_dir, golden_mlp, pct, Scale};
use bdlfi_faults::{BernoulliBitFlip, SiteSpec};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let (model, _train, _test) = golden_mlp();
    let p = 2e-3;

    println!("# Fig. 1 (3): fault-induced error probability vs decision boundary");
    println!("# MLP 2-32-3, BernoulliBitFlip(p = {p}), all parameter sites");
    println!();

    let map = boundary_map(
        &model,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(p)),
        &BoundaryConfig {
            x_range: (-6.0, 6.0),
            y_range: (-6.0, 6.0),
            resolution: scale.boundary_res,
            fault_samples: scale.boundary_samples,
            seed: 1,
            workers: 0,
        },
    );

    println!("log10(error probability) map ('@' = most error-prone):");
    println!("{}", map.render_ascii());

    // The golden class regions, to see the boundary the errors trace.
    println!("golden class regions (digits = predicted class):");
    for iy in (0..map.resolution).rev() {
        let mut line = String::new();
        for ix in 0..map.resolution {
            let c = map.golden_pred[iy * map.resolution + ix];
            line.push(char::from_digit(c as u32 % 10, 10).unwrap());
        }
        println!("{line}");
    }
    println!();

    let (near, far) = map.near_far_split();
    println!("| statistic | value |");
    println!("|---|---|");
    println!("| grid | {0} x {0} |", map.resolution);
    println!("| fault samples | {} |", scale.boundary_samples);
    println!(
        "| mean err-prob near boundary (low-margin half) | {} % |",
        pct(near)
    );
    println!(
        "| mean err-prob far from boundary (high-margin half) | {} % |",
        pct(far)
    );
    println!("| near/far ratio | {:.2}x |", near / far.max(1e-12));
    println!(
        "| Spearman(margin, err-prob) | {:.3} (negative = errors concentrate at boundary) |",
        map.margin_correlation
    );

    let out = artifacts_dir().join("fig1_boundary.json");
    std::fs::write(&out, serde_json::to_string_pretty(&map).unwrap()).unwrap();
    eprintln!("[fig1] map saved to {}", out.display());
}
