//! Experiment E7 — fault-model ablation: which bit positions of the
//! IEEE-754 representation actually hurt, and which sites (weights vs
//! activations) propagate the damage.
//!
//! The paper's fault model treats all 32 bits uniformly (per-bit AVF);
//! this ablation quantifies how much of the measured error budget comes
//! from the exponent field vs mantissa vs sign, and compares
//! parameter-resident faults with transient activation faults at the same
//! per-bit rate — the kind of design-space question BDLFI makes cheap.
//!
//! Run with `cargo run --release -p bdlfi-bench --bin exp7_bit_ablation`.

use bdlfi::{run_campaign, CampaignConfig, FaultyModel, KernelChoice};
use bdlfi_bayes::ChainConfig;
use bdlfi_bench::harness::{golden_mlp, pct, Scale};
use bdlfi_faults::{BernoulliBitFlip, BitRange, FaultModel, SiteSpec};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let (model, _train, test) = golden_mlp();
    let p = 3e-3;

    let cfg = CampaignConfig {
        chains: scale.chains.min(2),
        chain: ChainConfig {
            burn_in: 0,
            samples: scale.samples,
            thin: 1,
        },
        kernel: KernelChoice::Prior,
        seed: 7,
        ..CampaignConfig::default()
    };

    println!("# E7: bit-position and site ablation (MLP, per-bit p = {p})");
    println!();
    println!("## Bit-field ablation (faults in all parameters)");
    println!("| bit field | bits | error % (mean) | excess over golden (pp) |");
    println!("|---|---|---|---|");

    let fields: [(&str, BitRange); 4] = [
        ("all 32 (paper model)", BitRange::all()),
        ("exponent (23-30)", BitRange::exponent()),
        ("sign (31)", BitRange::sign()),
        ("mantissa (0-22)", BitRange::mantissa()),
    ];
    for (name, bits) in fields {
        let fault_model: Arc<dyn FaultModel> = Arc::new(BernoulliBitFlip::with_bits(p, bits));
        let fm = FaultyModel::new(
            model.clone(),
            Arc::clone(&test),
            &SiteSpec::AllParams,
            fault_model,
        );
        let rep = run_campaign(&fm, &cfg);
        println!(
            "| {} | {} | {} | {:.2} |",
            name,
            bits.len(),
            pct(rep.mean_error),
            rep.error_increase_pct()
        );
    }
    println!();
    println!("expected shape: exponent flips dominate; mantissa flips are nearly harmless.");
    println!();

    println!("## Site ablation (all 32 bits, same per-bit rate)");
    println!("| site | error % (mean) | excess over golden (pp) |");
    println!("|---|---|---|");
    let sites: [(&str, SiteSpec); 4] = [
        ("weights+biases (resident)", SiteSpec::AllParams),
        (
            "hidden activations (transient)",
            SiteSpec::Activations(vec!["fc1".into(), "relu1".into()]),
        ),
        (
            "output logits (transient)",
            SiteSpec::Activations(vec!["fc2".into()]),
        ),
        ("network input (transient)", SiteSpec::Input),
    ];
    for (name, spec) in sites {
        let fm = FaultyModel::new(
            model.clone(),
            Arc::clone(&test),
            &spec,
            Arc::new(BernoulliBitFlip::new(p)),
        );
        let rep = run_campaign(&fm, &cfg);
        println!(
            "| {} | {} | {:.2} |",
            name,
            pct(rep.mean_error),
            rep.error_increase_pct()
        );
    }
    println!();
    println!(
        "paper reading: the Bernoulli-AVF formalism extends unchanged across bit fields \
         and sites — only the prior changes, the inference machinery does not"
    );
}
