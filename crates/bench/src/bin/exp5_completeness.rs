//! Experiment E5 — the paper's §I claim: BDLFI can *quantify completeness*
//! of an injection campaign via MCMC mixing ("when further injections do
//! not change the measured hypothesis"), which traditional FI cannot.
//!
//! Protocol: run a long MLP campaign, then assess growing prefixes of the
//! chains against the certification criteria (R̂, ESS, MCSE) and report
//! the first prefix length that certifies. For the comparator, report how
//! the traditional campaign's confidence-interval width shrinks with its
//! budget — an interval narrows forever but never *says* "done"
//! structurally; certification does.
//!
//! Run with `cargo run --release -p bdlfi-bench --bin exp5_completeness`.

use bdlfi::{
    assess, run_campaign, samples_to_certify, CampaignConfig, CompletenessCriteria, FaultyModel,
    KernelChoice,
};
use bdlfi_baseline::{RandomFi, RandomFiConfig};
use bdlfi_bayes::{ChainConfig, Trace};
use bdlfi_bench::harness::{golden_mlp, pct, Scale};
use bdlfi_faults::{BernoulliBitFlip, SiteSpec};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let (model, _train, test) = golden_mlp();
    let p = 3e-3;

    let fm = FaultyModel::new(
        model.clone(),
        Arc::clone(&test),
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(p)),
    );
    let cfg = CampaignConfig {
        chains: scale.chains.max(3),
        chain: ChainConfig {
            burn_in: 0,
            samples: scale.samples * 4,
            thin: 1,
        },
        kernel: KernelChoice::Prior,
        seed: 5,
        ..CampaignConfig::default()
    };

    println!("# E5: campaign completeness via MCMC mixing (MLP, p = {p})");
    println!();

    let report = run_campaign(&fm, &cfg);
    let criteria = CompletenessCriteria::default();

    println!("| samples/chain | R-hat | ESS | MCSE | certified | running mean error % |");
    println!("|---|---|---|---|---|---|");
    let n = report.traces[0].len();
    let step = (n / 10).max(10);
    let mut k = step;
    while k <= n {
        let prefixes: Vec<Trace> = report
            .traces
            .iter()
            .map(|t| Trace::from_samples(t.samples()[..k].to_vec()))
            .collect();
        let c = assess(&prefixes, &criteria);
        let pooled: Trace = prefixes
            .iter()
            .flat_map(|t| t.samples().iter().copied())
            .collect();
        println!(
            "| {} | {:.4} | {:.0} | {:.5} | {} | {} |",
            k,
            c.rhat,
            c.ess,
            c.mcse,
            if c.certified { "YES" } else { "no" },
            pct(pooled.mean())
        );
        k += step;
    }
    println!();

    match samples_to_certify(&report.traces, &criteria, step) {
        Some(k) => println!(
            "certification reached at {} samples/chain ({} total injections)",
            k,
            k * report.traces.len()
        ),
        None => println!("campaign never certified at this budget — increase samples"),
    }
    println!();

    // Traditional comparator: CI width vs budget, no structural stop rule.
    println!("## Traditional FI comparator: Wilson CI width vs budget");
    println!("| injections | SDC rate | 95% CI width |");
    println!("|---|---|---|");
    for budget in [25usize, 50, 100, 200, 400] {
        let fi = RandomFi::with_fault_model(
            model.clone(),
            Arc::clone(&test),
            &SiteSpec::AllParams,
            Arc::new(BernoulliBitFlip::new(p)),
        );
        let res = fi.run(&RandomFiConfig {
            injections: budget,
            seed: 6,
            level: 0.95,
            workers: 0,
        });
        println!(
            "| {} | {:.3} | {:.3} |",
            budget,
            res.sdc.rate,
            res.sdc.wilson.1 - res.sdc.wilson.0
        );
    }
    println!();
    println!(
        "paper reading: the CI narrows smoothly but gives no principled stopping point; \
         BDLFI's mixing criteria define one"
    );
}
