//! Experiment E8 — kernel ablation: how do the MCMC kernels BDLFI can run
//! (iid prior, exact-conditional Gibbs, local bit toggles, mixtures)
//! compare on mixing efficiency at equal sample budgets?
//!
//! Metric: effective sample size of the error statistic per recorded
//! sample, plus acceptance rates and the resulting estimates. This is the
//! design-choice ablation behind DESIGN.md's kernel menu: local kernels
//! buy reuse (cheap incremental proposals, tempering hooks) at the price
//! of autocorrelation; the prior kernel is iid but cannot be tempered.
//!
//! Run with `cargo run --release -p bdlfi-bench --bin exp8_kernels`.

use bdlfi::{run_campaign, CampaignConfig, FaultyModel, KernelChoice};
use bdlfi_bayes::ChainConfig;
use bdlfi_bench::harness::{golden_mlp, pct, Scale};
use bdlfi_faults::{BernoulliBitFlip, SiteSpec};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let (model, _train, test) = golden_mlp();
    let p = 3e-3;

    let fm = FaultyModel::new(
        model,
        test,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(p)),
    );

    println!("# E8: MCMC kernel ablation (MLP, p = {p}, equal budgets)");
    println!("# golden error {} %", pct(fm.golden_error()));
    println!();
    println!("| kernel | mean error % | R-hat | ESS | ESS/sample | mean acceptance | certified |");
    println!("|---|---|---|---|---|---|---|");

    let kernels: [(&str, KernelChoice, usize); 5] = [
        ("prior (iid)", KernelChoice::Prior, 0),
        (
            "gibbs (exact conditional)",
            KernelChoice::Gibbs { p },
            scale.burn_in * 4,
        ),
        (
            "single-bit toggle",
            KernelChoice::BitToggle { block: 1 },
            scale.burn_in * 4,
        ),
        (
            "8-bit block toggle",
            KernelChoice::BitToggle { block: 8 },
            scale.burn_in * 4,
        ),
        (
            "mixture (10% refresh)",
            KernelChoice::Mixture {
                refresh_weight: 0.1,
            },
            scale.burn_in * 2,
        ),
    ];

    for (name, kernel, burn_in) in kernels {
        let cfg = CampaignConfig {
            chains: scale.chains,
            chain: ChainConfig {
                burn_in,
                samples: scale.samples * 2,
                thin: 1,
            },
            kernel,
            seed: 8,
            ..CampaignConfig::default()
        };
        let rep = run_campaign(&fm, &cfg);
        let total = rep.total_samples() as f64;
        let mean_acc = rep.acceptance_rates.iter().sum::<f64>() / rep.acceptance_rates.len() as f64;
        println!(
            "| {} | {} | {:.3} | {:.0} | {:.3} | {:.3} | {} |",
            name,
            pct(rep.mean_error),
            rep.completeness.rhat,
            rep.completeness.ess,
            rep.completeness.ess / total,
            mean_acc,
            if rep.completeness.certified {
                "yes"
            } else {
                "NO"
            }
        );
    }
    println!();
    println!(
        "reading: the iid prior maximises ESS/sample for plain campaigns; the purely \
         local kernels (Gibbs/single-bit) mix in O(bits/p) steps and at this budget \
         never leave the clean initial state — their mean error is WRONG (= golden), \
         and crucially R-hat alone cannot detect it (all chains are stuck in the same \
         state), but the ESS criterion does: certification correctly fails. This is \
         the completeness machinery protecting against a plausible-looking but \
         unconverged campaign. The mixture's occasional prior refreshes restore \
         mobility at a modest ESS cost."
    );
}
